//! A criterion-shaped benchmark harness implementing the EXPERIMENTS.md
//! methodology: a warmup pass, then *fastest of N* timed runs (the paper:
//! "timings … represent the fastest of 10 runs"), with optional
//! machine-independent work counters riding along.
//!
//! Two front doors:
//!
//! - the [`criterion_group!`]/[`criterion_main!`] macros plus
//!   [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`] and [`Bencher`],
//!   a drop-in subset of the criterion API for the `harness = false`
//!   bench binaries. Each binary prints a summary table and writes
//!   machine-readable `BENCH_<binary>.json` at the workspace root;
//! - [`Report`], a plain recorder for non-bench binaries (the `tables`
//!   experiment driver) that want to emit the same JSON format.
//!
//! The JSON schema is one object `{"harness", "binary", "records": [...]}`
//! where each record carries `group`, `name`, `min_ns`, `median_ns`,
//! `mean_ns`, `samples`, and a `counters` object. Times are integer
//! nanoseconds so downstream tooling needs no float parsing.

use std::fmt::Display;
use std::fs;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One measurement: timing statistics plus work counters.
#[derive(Clone, Debug)]
pub struct Record {
    /// Benchmark group (criterion group name, or experiment id).
    pub group: String,
    /// Benchmark name within the group (function/param, or a label).
    pub name: String,
    /// Fastest observed time, in nanoseconds (`None` for counter-only
    /// records).
    pub min_ns: Option<u128>,
    /// Median observed time, in nanoseconds.
    pub median_ns: Option<u128>,
    /// Mean observed time, in nanoseconds.
    pub mean_ns: Option<u128>,
    /// Number of timed runs the statistics summarize.
    pub samples: u32,
    /// Machine-independent work counters (name, value).
    pub counters: Vec<(String, u64)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn records_to_json(harness: &str, binary: &str, records: &[Record]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"harness\": \"{}\",\n", json_escape(harness)));
    out.push_str(&format!("  \"binary\": \"{}\",\n", json_escape(binary)));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let opt = |v: &Option<u128>| match v {
            Some(n) => n.to_string(),
            None => "null".to_owned(),
        };
        let mut counters = String::new();
        for (j, (k, v)) in r.counters.iter().enumerate() {
            if j > 0 {
                counters.push_str(", ");
            }
            counters.push_str(&format!("\"{}\": {v}", json_escape(k)));
        }
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"min_ns\": {}, \
             \"median_ns\": {}, \"mean_ns\": {}, \"samples\": {}, \
             \"counters\": {{{counters}}}}}{}\n",
            json_escape(&r.group),
            json_escape(&r.name),
            opt(&r.min_ns),
            opt(&r.median_ns),
            opt(&r.mean_ns),
            r.samples,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Walks up from a crate's manifest dir to the workspace root (the first
/// ancestor containing a `Cargo.lock` or `.git`), so every binary writes
/// its `BENCH_*.json` to the same place regardless of invocation cwd.
pub fn workspace_root(manifest_dir: &str) -> PathBuf {
    let start = Path::new(manifest_dir);
    for dir in start.ancestors() {
        if dir.join("Cargo.lock").exists() || dir.join(".git").exists() {
            return dir.to_path_buf();
        }
    }
    start.to_path_buf()
}

fn fmt_ns(ns: u128) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

// ---------------------------------------------------------------------------
// Criterion-compatible surface
// ---------------------------------------------------------------------------

/// Identifies a benchmark within a group as `function/parameter` — the
/// subset of criterion's `BenchmarkId` the workspace uses.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id shown as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Times one closure: warmup, then `samples` timed runs.
pub struct Bencher {
    samples: u32,
    times: Vec<u128>,
}

impl Bencher {
    /// Runs `f` once untimed (warmup), then `samples` timed runs.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f());
        self.times.clear();
        self.times.reserve(self.samples as usize);
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            self.times.push(t.elapsed().as_nanos());
        }
    }
}

/// A named group of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed runs feed each measurement (default 10, the
    /// paper's methodology).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n as u32;
        self
    }

    fn record(&mut self, name: String, times: &[u128]) {
        assert!(!times.is_empty(), "Bencher::iter was never called");
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        let rec = Record {
            group: self.name.clone(),
            name,
            min_ns: Some(sorted[0]),
            median_ns: Some(sorted[sorted.len() / 2]),
            mean_ns: Some(sorted.iter().sum::<u128>() / sorted.len() as u128),
            samples: times.len() as u32,
            counters: Vec::new(),
        };
        println!(
            "{:<40} fastest {:>12}  median {:>12}  ({} runs)",
            format!("{}/{}", rec.group, rec.name),
            fmt_ns(rec.min_ns.unwrap()),
            fmt_ns(rec.median_ns.unwrap()),
            rec.samples,
        );
        self.criterion.records.push(rec);
    }

    /// Benchmarks `f` with access to `input` (criterion's shape; the
    /// reference keeps setup out of the timed closure).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b, input);
        let times = std::mem::take(&mut b.times);
        self.record(id.id, &times);
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b);
        let times = std::mem::take(&mut b.times);
        self.record(name.to_string(), &times);
        self
    }

    /// Attaches a machine-independent work counter to the most recently
    /// recorded measurement (e.g. soak percentiles or request totals that
    /// a wall-clock min/median can't carry).
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Self {
        let rec = self
            .criterion
            .records
            .last_mut()
            .expect("counter() before any measurement was recorded");
        rec.counters.push((name.to_owned(), value));
        self
    }

    /// Ends the group (statistics were recorded as benches ran).
    pub fn finish(self) {}
}

/// Collects measurements for one bench binary and writes the JSON report.
pub struct Criterion {
    binary: String,
    out_path: PathBuf,
    records: Vec<Record>,
}

impl Criterion {
    /// A harness for the named binary; the report lands at
    /// `<workspace root>/BENCH_<binary>.json`. Use via [`criterion_main!`],
    /// which passes the Cargo-provided names.
    pub fn new(binary: &str, manifest_dir: &str) -> Criterion {
        let out_path = workspace_root(manifest_dir).join(format!("BENCH_{binary}.json"));
        Criterion {
            binary: binary.to_owned(),
            out_path,
            records: Vec::new(),
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Writes the JSON report; called by [`criterion_main!`] after all
    /// groups run.
    pub fn finalize(&self) {
        let json = records_to_json("stcfa-devkit", &self.binary, &self.records);
        match fs::write(&self.out_path, json) {
            Ok(()) => println!(
                "\n{} measurement(s) written to {}",
                self.records.len(),
                self.out_path.display()
            ),
            Err(e) => eprintln!("failed to write {}: {e}", self.out_path.display()),
        }
    }
}

/// Bundles benchmark functions into a group runner, criterion-style:
/// `criterion_group!(benches, bench_a, bench_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::bench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a bench binary: runs the groups, prints the
/// summary, writes `BENCH_<binary>.json` at the workspace root.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::new(
                env!("CARGO_CRATE_NAME"),
                env!("CARGO_MANIFEST_DIR"),
            );
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

// ---------------------------------------------------------------------------
// Report: the same JSON from non-bench drivers (the `tables` binary)
// ---------------------------------------------------------------------------

/// A plain recorder producing the harness's JSON format from ordinary
/// code — the `tables` experiment driver uses it to publish per-experiment
/// times and work counters alongside its human-readable tables.
#[derive(Debug, Default)]
pub struct Report {
    records: Vec<Record>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Records a timed measurement (`fastest of N` upstream; pass the
    /// duration actually selected and how many runs produced it).
    pub fn time(
        &mut self,
        group: &str,
        name: impl Display,
        fastest: std::time::Duration,
        samples: u32,
    ) -> &mut Record {
        self.records.push(Record {
            group: group.to_owned(),
            name: name.to_string(),
            min_ns: Some(fastest.as_nanos()),
            median_ns: None,
            mean_ns: None,
            samples,
            counters: Vec::new(),
        });
        self.records.last_mut().expect("just pushed")
    }

    /// Records a counter-only measurement (no wall-clock component).
    pub fn counters(&mut self, group: &str, name: impl Display, counters: &[(&str, u64)]) {
        self.records.push(Record {
            group: group.to_owned(),
            name: name.to_string(),
            min_ns: None,
            median_ns: None,
            mean_ns: None,
            samples: 0,
            counters: counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Number of records accumulated so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes the report (`binary` names the producer).
    pub fn to_json(&self, binary: &str) -> String {
        records_to_json("stcfa-devkit", binary, &self.records)
    }

    /// Writes the report to `path`.
    pub fn write_json(&self, binary: &str, path: &Path) -> std::io::Result<()> {
        fs::write(path, self.to_json(binary))
    }
}

impl Record {
    /// Attaches a work counter to a timed record (builder-style).
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Record {
        self.counters.push((name.to_owned(), value));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bencher_collects_fastest_of_n() {
        let mut c = Criterion::new("selftest", env!("CARGO_MANIFEST_DIR"));
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            let mut runs = 0u32;
            g.bench_function("spin", |b| {
                b.iter(|| {
                    runs += 1;
                    std::thread::sleep(Duration::from_micros(100));
                })
            });
            // warmup + 5 samples
            assert_eq!(runs, 6);
            g.finish();
        }
        assert_eq!(c.records.len(), 1);
        let r = &c.records[0];
        assert_eq!(r.samples, 5);
        assert!(r.min_ns.unwrap() >= 100_000, "sleep under-measured");
        assert!(r.min_ns <= r.median_ns);
    }

    #[test]
    fn group_counters_attach_to_the_last_record() {
        let mut c = Criterion::new("selftest", env!("CARGO_MANIFEST_DIR"));
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(1);
            g.bench_function("first", |b| b.iter(|| 1 + 1));
            g.bench_function("second", |b| b.iter(|| 2 + 2));
            g.counter("p99_ns", 1234).counter("requests", 2048);
            g.finish();
        }
        assert!(c.records[0].counters.is_empty());
        assert_eq!(
            c.records[1].counters,
            vec![("p99_ns".to_owned(), 1234), ("requests".to_owned(), 2048)]
        );
        let json = records_to_json("stcfa-devkit", "selftest", &c.records);
        assert!(json.contains("\"p99_ns\": 1234, \"requests\": 2048"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut rep = Report::new();
        rep.time("E1", "weird \"name\"\n", Duration::from_nanos(1234), 10)
            .counter("work", 42);
        rep.counters("E2", "only-counters", &[("nodes", 7)]);
        let json = rep.to_json("tables");
        assert!(json.contains("\"min_ns\": 1234"));
        assert!(json.contains("\\\"name\\\"\\n"));
        assert!(json.contains("\"work\": 42"));
        assert!(json.contains("\"min_ns\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn benchmark_id_formats_function_slash_param() {
        assert_eq!(BenchmarkId::new("sba_total", 64).id, "sba_total/64");
    }

    #[test]
    fn workspace_root_finds_repo() {
        let root = workspace_root(env!("CARGO_MANIFEST_DIR"));
        assert!(root.join("Cargo.toml").exists());
        assert!(!root.ends_with("devkit"), "should walk above the crate");
    }
}
