//! Zero-dependency development kit for the workspace: the hermetic
//! replacements for the three external crates the original test/bench
//! substrate pulled in.
//!
//! - [`prng`] — a splitmix64-seeded xoshiro256++ generator with the small
//!   `gen_range`/`gen_bool` API the workload generators need (replaces
//!   `rand::SmallRng`);
//! - [`prop`] — a minimal property-testing runner: strategy combinators,
//!   greedy input shrinking, per-test case counts, and a persistent
//!   regression-seed file, with a [`proptest!`] macro adapter so suites
//!   written against proptest port with small diffs;
//! - [`bench`] — a criterion-shaped bench harness implementing the
//!   EXPERIMENTS.md methodology (warmup, fastest-of-N, work counters) and
//!   emitting machine-readable `BENCH_*.json` files;
//! - [`hash`] — deterministic FNV-1a/64 content hashing with a splitmix64
//!   finalizer, the address scheme of the server's snapshot store.
//!
//! Everything here is plain `std`; the workspace builds and tests with
//! `CARGO_NET_OFFLINE=true`. See `docs/DEVKIT.md` for the seed-persistence
//! format and reproduction workflow.

#![warn(missing_docs)]

pub mod bench;
pub mod hash;
pub mod prng;
pub mod prop;

/// One-stop import for property-test files, mirroring
/// `proptest::prelude::*` so ports are line-for-line.
pub mod prelude {
    pub use crate::prng::Rng;
    pub use crate::prop::{
        any, collection, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}
