//! Deterministic, zero-dependency content hashing.
//!
//! The server's snapshot store is *content-addressed*: every cached
//! analysis is keyed by a digest of the exact source bytes plus the build
//! configuration. The digest must be stable across platforms, Rust
//! versions and process runs (clients compare and persist the hex form),
//! so it is built from the same primitive family as [`crate::prng`]:
//! an FNV-1a accumulation pass, finished with a splitmix64-style avalanche
//! so that short inputs still differ in every output bit.
//!
//! This is a fast non-cryptographic digest for cache addressing, not a
//! security boundary — collision resistance is the 64-bit birthday bound.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The splitmix64 finalizer: a full-avalanche bijection on `u64`.
///
/// This is the output-mixing half of the splitmix64 step used by
/// [`crate::prng::Rng::seed_from_u64`]; applying it to an FNV state
/// spreads the last few input bytes across all 64 output bits.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A streaming FNV-1a/64 hasher with a [`mix64`] finish.
///
/// ```
/// use stcfa_devkit::hash::Fnv1a;
///
/// let source = b"fun id x = x;";
/// let mut h = Fnv1a::new();
/// h.write_u64(source.len() as u64); // length prefix, as digest_parts does
/// h.write(source);
/// h.write_u64(1); // configuration discriminant
/// assert_eq!(h.finish(), Fnv1a::digest_parts(source, &[1]));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Absorbs a byte slice.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order (used for
    /// configuration discriminants so `("ab", 1)` and `("a", ...)` cannot
    /// collide by concatenation).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The finalized digest.
    #[inline]
    pub fn finish(&self) -> u64 {
        mix64(self.state)
    }

    /// One-shot digest of `bytes` followed by the `parts` discriminants.
    pub fn digest_parts(bytes: &[u8], parts: &[u64]) -> u64 {
        let mut h = Fnv1a::new();
        // Length prefix: two inputs of different lengths never alias even
        // if the discriminant list absorbs bytes that look like content.
        h.write_u64(bytes.len() as u64);
        h.write(bytes);
        for &p in parts {
            h.write_u64(p);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_pinned() {
        // Pinned: a change to the hashing scheme invalidates every
        // persisted snapshot address and must be a reviewed event.
        assert_eq!(
            Fnv1a::digest_parts(b"fun id x = x;", &[0, 0]),
            0xc4d0_1bd3_b6d3_59b1
        );
    }

    #[test]
    fn content_and_config_both_address() {
        let base = Fnv1a::digest_parts(b"source", &[0, 0]);
        assert_ne!(
            base,
            Fnv1a::digest_parts(b"source ", &[0, 0]),
            "content changes the key"
        );
        assert_ne!(
            base,
            Fnv1a::digest_parts(b"source", &[1, 0]),
            "policy changes the key"
        );
        assert_ne!(
            base,
            Fnv1a::digest_parts(b"source", &[0, 1]),
            "engine changes the key"
        );
    }

    #[test]
    fn length_prefix_prevents_concatenation_aliasing() {
        // Without the length prefix, b"ab" + [] could collide with b"a"
        // followed by a discriminant whose little-endian bytes start 'b'.
        assert_ne!(
            Fnv1a::digest_parts(b"ab", &[]),
            Fnv1a::digest_parts(b"a", &[u64::from_le_bytes(*b"b\0\0\0\0\0\0\0")]),
        );
    }

    #[test]
    fn mix64_is_a_bijection_on_samples() {
        let mut outs: Vec<u64> = (0..1000u64).map(mix64).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 1000, "finalizer collided on small inputs");
    }
}
