//! Monovariant set-based analysis — the paper's benchmark baseline.
//!
//! See [`analysis`] for the constraint solver and [`Sba`] for the public
//! interface. The solver propagates abstract values one element at a time
//! and counts its work, so the cubic growth the paper's Table 1 shows for
//! SBA is directly observable via [`SbaStats`].
//!
//! ```
//! use stcfa_lambda::Program;
//! use stcfa_sba::Sba;
//!
//! let p = Program::parse("(fn x => x x) (fn y => y)").unwrap();
//! let sba = Sba::analyze(&p);
//! assert_eq!(sba.labels(&p, p.root()).len(), 1);
//! assert!(sba.stats().work_units > 0);
//! ```

#![warn(missing_docs)]

pub mod analysis;

pub use analysis::{Sba, SbaStats};
