//! Monovariant set-based analysis (Heintze, LFP 1994) — the baseline the
//! paper benchmarks against in its Section 10 ("an implementation of
//! set-based analysis (SBA), run in monovariant mode (a generalization of
//! the standard CFA algorithm)").
//!
//! The implementation is a classic explicit set-constraint solver:
//!
//! 1. one pass over the program *collects* constraints — memberships
//!    `{site} ⊆ V`, copies `V ⊆ W`, and conditional constraints for
//!    application, projection and `case`;
//! 2. a worklist *solves* them, propagating **one abstract value at a
//!    time** (sets are hash sets, not machine-word bit sets).
//!
//! Per-element propagation is deliberate: it makes the solver's "units of
//! work" counter (`SbaStats::work_units`) reflect the true `O(n³)`
//! element-wise cost that the paper's Table 1 reports for SBA, where the
//! subtransitive algorithm's work stays linear.

use std::collections::HashSet;

use stcfa_lambda::{ExprId, ExprKind, Label, Program, VarId};

/// Work counters, the machine-independent measure used in the paper's
/// Table 1 ("a measure of the units of work involved").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SbaStats {
    /// Constraints collected from the program text.
    pub constraints: u64,
    /// Conditional constraints instantiated during solving.
    pub instantiated: u64,
    /// Attempted element insertions (the headline work-unit count).
    pub work_units: u64,
    /// Insertions that actually grew a set.
    pub insertions: u64,
}

/// The set-based analysis result.
#[derive(Clone, Debug)]
pub struct Sba {
    n_exprs: usize,
    /// Per set variable (exprs then binders): reaching creation sites,
    /// identified by the creating expression.
    sets: Vec<HashSet<u32>>,
    stats: SbaStats,
}

/// A set variable: expression occurrences first, then binders.
type Var = u32;

/// Copy constraint `from ⊆ to`, plus the three conditional forms.
enum Conditional {
    /// `(e₁ e₂)`: for each abstraction in the watched operator set, bind
    /// and return.
    App { arg: Var, result: Var },
    /// `#j e`: for each record in the watched set, copy its field `j`.
    Proj { index: u32, result: Var },
    /// `case e of …`: for each construction in the watched set, bind
    /// matching arms.
    Case { case_expr: ExprId },
}

impl Sba {
    /// Collects and solves the set constraints of `program`.
    pub fn analyze(program: &Program) -> Sba {
        let n = program.size();
        let nv = program.var_count();
        let mut solver = Solver {
            program,
            sets: vec![HashSet::new(); n + nv],
            copies: vec![Vec::new(); n + nv],
            conditionals: Vec::new(),
            watch: vec![Vec::new(); n + nv],
            fired: Vec::new(),
            dirty: Vec::new(),
            on_dirty: vec![false; n + nv],
            stats: SbaStats::default(),
        };
        solver.collect();
        solver.solve();
        Sba {
            n_exprs: n,
            sets: solver.sets,
            stats: solver.stats,
        }
    }

    /// `L(e)`: abstraction labels in the set of expression `e`, sorted.
    pub fn labels(&self, program: &Program, e: ExprId) -> Vec<Label> {
        self.labels_of_set(program, &self.sets[e.index()])
    }

    /// Labels bound to binder `v`, sorted.
    pub fn var_labels(&self, program: &Program, v: VarId) -> Vec<Label> {
        self.labels_of_set(program, &self.sets[self.n_exprs + v.index()])
    }

    fn labels_of_set(&self, program: &Program, set: &HashSet<u32>) -> Vec<Label> {
        let mut out: Vec<Label> = set
            .iter()
            .filter_map(|&s| program.label_of(ExprId::from_index(s as usize)))
            .collect();
        out.sort_unstable();
        out
    }

    /// Work counters.
    pub fn stats(&self) -> SbaStats {
        self.stats
    }

    /// Writes out the control-flow information for all non-trivial
    /// applications — the benchmark task in the paper's Section 10 — and
    /// returns how many (site, label) pairs were listed.
    pub fn report_nontrivial_apps(&self, program: &Program) -> usize {
        let mut pairs = 0;
        for app in program.nontrivial_apps() {
            if let ExprKind::App { func, .. } = program.kind(app) {
                pairs += self.labels(program, *func).len();
            }
        }
        pairs
    }
}

struct Solver<'a> {
    program: &'a Program,
    sets: Vec<HashSet<u32>>,
    /// Static copy edges `v → list of supersets`.
    copies: Vec<Vec<Var>>,
    conditionals: Vec<Conditional>,
    /// Conditional ids watching each variable.
    watch: Vec<Vec<u32>>,
    /// Per conditional: sites already instantiated.
    fired: Vec<HashSet<u32>>,
    dirty: Vec<Var>,
    on_dirty: Vec<bool>,
    stats: SbaStats,
}

impl<'a> Solver<'a> {
    fn expr_var(&self, e: ExprId) -> Var {
        e.index() as Var
    }

    fn binder_var(&self, v: VarId) -> Var {
        (self.program.size() + v.index()) as Var
    }

    fn copy(&mut self, from: Var, to: Var) {
        self.copies[from as usize].push(to);
        self.stats.constraints += 1;
    }

    fn conditional(&mut self, watch: Var, c: Conditional) {
        let id = self.conditionals.len() as u32;
        self.conditionals.push(c);
        self.fired.push(HashSet::new());
        self.watch[watch as usize].push(id);
        self.stats.constraints += 1;
    }

    fn seed(&mut self, v: Var, site: ExprId) {
        self.insert(v, site.index() as u32);
    }

    fn insert(&mut self, v: Var, site: u32) {
        self.stats.work_units += 1;
        if self.sets[v as usize].insert(site) {
            self.stats.insertions += 1;
            self.mark(v);
        }
    }

    fn mark(&mut self, v: Var) {
        if !self.on_dirty[v as usize] {
            self.on_dirty[v as usize] = true;
            self.dirty.push(v);
        }
    }

    fn collect(&mut self) {
        for e in self.program.exprs() {
            let ev = self.expr_var(e);
            match self.program.kind(e) {
                ExprKind::Var(v) => {
                    let bv = self.binder_var(*v);
                    self.copy(bv, ev);
                }
                ExprKind::Lam { .. } | ExprKind::Record(_) | ExprKind::Con { .. } => {
                    self.seed(ev, e);
                    self.stats.constraints += 1;
                }
                ExprKind::App { func, arg } => {
                    let c = Conditional::App {
                        arg: self.expr_var(*arg),
                        result: ev,
                    };
                    self.conditional(self.expr_var(*func), c);
                }
                ExprKind::Let { binder, rhs, body } => {
                    self.copy(self.expr_var(*rhs), self.binder_var(*binder));
                    self.copy(self.expr_var(*body), ev);
                }
                ExprKind::LetRec {
                    binder,
                    lambda,
                    body,
                } => {
                    self.copy(self.expr_var(*lambda), self.binder_var(*binder));
                    self.copy(self.expr_var(*body), ev);
                }
                ExprKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    self.copy(self.expr_var(*then_branch), ev);
                    self.copy(self.expr_var(*else_branch), ev);
                }
                ExprKind::Proj { index, tuple } => {
                    let c = Conditional::Proj {
                        index: *index,
                        result: ev,
                    };
                    self.conditional(self.expr_var(*tuple), c);
                }
                ExprKind::Case {
                    scrutinee,
                    arms,
                    default,
                } => {
                    for arm in arms.iter() {
                        self.copy(self.expr_var(arm.body), ev);
                    }
                    if let Some(d) = default {
                        self.copy(self.expr_var(*d), ev);
                    }
                    if !arms.is_empty() {
                        let c = Conditional::Case { case_expr: e };
                        self.conditional(self.expr_var(*scrutinee), c);
                    }
                }
                ExprKind::Lit(_) | ExprKind::Prim { .. } => {}
            }
        }
    }

    fn solve(&mut self) {
        while let Some(v) = self.dirty.pop() {
            self.on_dirty[v as usize] = false;
            // Element-wise copy propagation.
            let elems: Vec<u32> = self.sets[v as usize].iter().copied().collect();
            let targets = self.copies[v as usize].clone();
            for &t in &targets {
                for &s in &elems {
                    self.insert(t, s);
                }
            }
            // Conditional instantiation.
            let watchers = self.watch[v as usize].clone();
            for cid in watchers {
                let fresh: Vec<u32> = self.sets[v as usize]
                    .iter()
                    .copied()
                    .filter(|s| !self.fired[cid as usize].contains(s))
                    .collect();
                for site in fresh {
                    self.fired[cid as usize].insert(site);
                    self.instantiate(cid, site);
                }
            }
        }
    }

    fn instantiate(&mut self, cid: u32, site: u32) {
        self.stats.instantiated += 1;
        let site_expr = ExprId::from_index(site as usize);
        match self.conditionals[cid as usize] {
            Conditional::App { arg, result } => {
                if let ExprKind::Lam { param, body, .. } = self.program.kind(site_expr) {
                    let pv = self.binder_var(*param);
                    let bv = self.expr_var(*body);
                    self.copy(arg, pv);
                    self.copy(bv, result);
                    self.mark(arg);
                    self.mark(bv);
                }
            }
            Conditional::Proj { index, result } => {
                if let ExprKind::Record(items) = self.program.kind(site_expr) {
                    if let Some(&field) = items.get(index as usize) {
                        let fv = self.expr_var(field);
                        self.copy(fv, result);
                        self.mark(fv);
                    }
                }
            }
            Conditional::Case { case_expr } => {
                if let ExprKind::Con { con, args } = self.program.kind(site_expr) {
                    let con = *con;
                    let args: Vec<ExprId> = args.to_vec();
                    if let ExprKind::Case { arms, .. } = self.program.kind(case_expr) {
                        let new_copies: Vec<(Var, Var)> = arms
                            .iter()
                            .filter(|arm| arm.con == con)
                            .flat_map(|arm| {
                                arm.binders
                                    .iter()
                                    .zip(args.iter())
                                    .map(|(&b, &a)| (self.expr_var(a), self.binder_var(b)))
                                    .collect::<Vec<_>>()
                            })
                            .collect();
                        for (from, to) in new_copies {
                            self.copy(from, to);
                            self.mark(from);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::Program;

    fn root_labels(src: &str) -> usize {
        let p = Program::parse(src).unwrap();
        Sba::analyze(&p).labels(&p, p.root()).len()
    }

    #[test]
    fn basic_flow() {
        assert_eq!(root_labels("(fn x => x x) (fn y => y)"), 1);
        assert_eq!(root_labels("if true then fn a => a else fn b => b"), 2);
        assert_eq!(root_labels("1 + 2"), 0);
    }

    #[test]
    fn records_and_cases() {
        assert_eq!(root_labels("#1 ((fn x => x), (fn y => y))"), 1);
        assert_eq!(
            root_labels("datatype w = W of (int -> int); case W(fn x => x) of W(f) => f"),
            1
        );
    }

    #[test]
    fn work_units_grow_superlinearly_on_the_cubic_benchmark() {
        // Two sizes of the paper's benchmark: work should grow much faster
        // than the size ratio.
        let small = cubic_benchmark(4);
        let large = cubic_benchmark(16);
        let ps = Program::parse(&small).unwrap();
        let pl = Program::parse(&large).unwrap();
        let ws = Sba::analyze(&ps).stats().work_units as f64;
        let wl = Sba::analyze(&pl).stats().work_units as f64;
        let size_ratio = pl.size() as f64 / ps.size() as f64; // ≈ 4
        assert!(
            wl / ws > 2.0 * size_ratio,
            "expected superlinear work growth, got {} vs size ratio {}",
            wl / ws,
            size_ratio
        );
    }

    fn cubic_benchmark(n: usize) -> String {
        let mut s = String::from("fun fs x = x;\nfun bs x = x;\n");
        for i in 1..=n {
            s.push_str(&format!("fun f{i} x = x;\n"));
            s.push_str(&format!("fun b{i} x = x;\n"));
            s.push_str(&format!("val x{i} = b{i} (fs f{i});\n"));
            s.push_str(&format!("val y{i} = (bs b{i}) f{i};\n"));
        }
        s.push('0');
        s
    }

    #[test]
    fn report_counts_pairs() {
        let p = Program::parse("fun id x = x; val a = id (fn u => u); a (fn w => w)").unwrap();
        let sba = Sba::analyze(&p);
        assert!(sba.report_nontrivial_apps(&p) >= 1);
    }
}
