//! Standard (cubic-time) control-flow analysis — the paper's baseline.
//!
//! Two formulations of the same analysis, both from Heintze & McAllester
//! (PLDI 1997):
//!
//! - [`Cfa0`] ([`labelsets`]) — the classic least-fixed-point computation of
//!   per-occurrence label sets (`L(e)`), extended to records and datatype
//!   constructors. This is the ground truth every other analysis in the
//!   workspace is tested against.
//! - [`LiveCfa0`] ([`live`]) — a reachability-aware variant (the
//!   introduction's "treatment of dead-code" dimension): λ bodies and case
//!   arms are analyzed only once something can actually reach them.
//! - [`Dtc`] ([`dtc`]) — the Section 3 deduction system over program nodes
//!   (ABS / APP-1 / APP-2 / TRANS) whose transitive closure *is* standard
//!   CFA; it makes explicit that the standard algorithm intertwines closure
//!   with edge addition, the coupling the subtransitive algorithm breaks.
//!
//! ```
//! use stcfa_lambda::Program;
//! use stcfa_cfa0::Cfa0;
//!
//! let p = Program::parse("(fn x => x x) (fn y => y)").unwrap();
//! let cfa = Cfa0::analyze(&p);
//! assert_eq!(cfa.labels(&p, p.root()).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod dtc;
pub mod labelsets;
pub mod live;
pub mod sites;

pub use dtc::{Dtc, DtcStats, UnsupportedConstruct};
pub use labelsets::{Cfa0, Cfa0Stats};
pub use live::{LiveCfa0, LiveCfa0Stats};
pub use sites::SiteTable;
