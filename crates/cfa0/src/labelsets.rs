//! The standard (cubic-time) inclusion-based monovariant CFA.
//!
//! This is the paper's "Std Alg" baseline: a least-fixed-point computation
//! over per-occurrence label sets, extended (as is standard) from the pure
//! lambda calculus to records and datatype constructors by tracking
//! creation sites through projections and `case` de-construction. The
//! solver is a textbook dynamic-propagation-graph worklist:
//!
//! - every expression occurrence and every binder is a set variable;
//! - static subset edges come from `let`/`if`/`case`-result flow;
//! - dynamic edges are added when an abstraction reaches an application's
//!   operator (the paper's APP-1/APP-2 conditions), a record reaches a
//!   projection, or a construction reaches a `case` scrutinee.
//!
//! Its complexity is `O(n³)` (up to machine-word parallelism in the bit
//! sets); the subtransitive algorithm in `stcfa-core` is checked against
//! it for exact equivalence.

use stcfa_graph::{BitSet, Worklist};
use stcfa_lambda::{ExprId, ExprKind, Label, Program, VarId};

use crate::sites::SiteTable;

/// Counters describing how much work the solver did (a machine-independent
/// "units of work" measure, as the paper uses for its SBA baseline).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cfa0Stats {
    /// Set-variable activations popped from the worklist.
    pub activations: u64,
    /// Word-level union operations between sets.
    pub propagations: u64,
    /// Dynamic subset edges added by application/projection/case firing.
    pub dynamic_edges: u64,
    /// Static subset edges.
    pub static_edges: u64,
}

/// The result of running standard CFA: the full `L(e)` table.
///
/// Set storage is one flat word arena — `wps` words per set variable,
/// expressions `0..n` then binders — rather than a `BitSet` per
/// variable. One allocation instead of `n + v` keeps the solver's setup
/// cost out of the measurement when a demand cone restricts the run to
/// a small slice of a large program (the precision scheduler's Tier 2).
#[derive(Clone, Debug)]
pub struct Cfa0 {
    sites: SiteTable,
    /// Flat per-variable site sets (see the type docs).
    words: Vec<u64>,
    /// Words per set variable.
    wps: usize,
    /// Expression count: binder `v` lives at variable `n_exprs + v`.
    n_exprs: usize,
    stats: Cfa0Stats,
}

impl Cfa0 {
    /// Runs the analysis to fixpoint.
    pub fn analyze(program: &Program) -> Cfa0 {
        Solver::new(program).run(None)
    }

    /// Runs the analysis with constraints installed only for the
    /// expressions in `exprs` (a bit per `ExprId` index).
    ///
    /// The result is the least fixpoint of the restricted constraint
    /// system, so every set is a subset of the whole-program answer. It
    /// *equals* the whole-program answer at a variable `x` exactly when
    /// `exprs` is closed under flow into `x` — every expression whose
    /// constraint can (transitively) write into `x`'s set is present.
    /// Callers (the precision scheduler's demand cones) are responsible
    /// for that closure; sets of variables outside the cone are
    /// meaningless and must not be read.
    pub fn analyze_within(program: &Program, exprs: &BitSet) -> Cfa0 {
        Solver::new(program).run(Some(exprs))
    }

    /// The site numbering used by this result.
    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// The creation sites reaching expression `e`, as backing words
    /// (bit `s` of the slice = site `s` reaches).
    pub fn site_set(&self, e: ExprId) -> &[u64] {
        let base = e.index() * self.wps;
        &self.words[base..base + self.wps]
    }

    /// The creation sites reaching binder `v`, as backing words.
    pub fn var_site_set(&self, v: VarId) -> &[u64] {
        let base = (self.n_exprs + v.index()) * self.wps;
        &self.words[base..base + self.wps]
    }

    /// `L(e)`: the abstraction labels reaching `e`, sorted.
    pub fn labels(&self, program: &Program, e: ExprId) -> Vec<Label> {
        self.labels_of_words(program, self.site_set(e))
    }

    /// Labels reaching binder `v`, sorted.
    pub fn var_labels(&self, program: &Program, v: VarId) -> Vec<Label> {
        self.labels_of_words(program, self.var_site_set(v))
    }

    fn labels_of_words(&self, program: &Program, words: &[u64]) -> Vec<Label> {
        let mut out: Vec<Label> = Vec::new();
        for (wi, &word) in words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                if let Some(l) = self.sites.label_of_site(program, wi * 64 + b) {
                    out.push(l);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The functions callable from application site `app`: `L(e₁)` for
    /// `app = (e₁ e₂)`. Returns `None` if `app` is not an application.
    pub fn call_targets(&self, program: &Program, app: ExprId) -> Option<Vec<Label>> {
        match program.kind(app) {
            ExprKind::App { func, .. } => Some(self.labels(program, *func)),
            _ => None,
        }
    }

    /// Work counters.
    pub fn stats(&self) -> Cfa0Stats {
        self.stats
    }
}

/// A dynamic flow listener: fires once per (listener, new site) pair.
enum Listener {
    /// Application `(e₁ e₂)`: watching `e₁`'s set for abstractions.
    AppFunc { arg_var: u32, app_var: u32 },
    /// Projection `#j e`: watching `e`'s set for records.
    ProjTuple { index: u32, proj_var: u32 },
    /// `case e of …`: watching `e`'s set for constructions.
    CaseScrut { case_expr: ExprId },
}

struct Solver<'a> {
    program: &'a Program,
    sites: SiteTable,
    /// Words per set variable.
    wps: usize,
    /// Flat set storage: exprs `0..n`, then binders `n..n+v`, `wps`
    /// words each — a single allocation however many variables there
    /// are, so a cone-restricted run's setup stays O(n) words written,
    /// not O(n) heap allocations.
    words: Vec<u64>,
    edges: Vec<Vec<u32>>,
    listeners: Vec<Listener>,
    /// Listener ids watching each set variable.
    watchers: Vec<Vec<u32>>,
    /// Per listener: sites already handled.
    handled: Vec<BitSet>,
    worklist: Worklist,
    stats: Cfa0Stats,
}

impl<'a> Solver<'a> {
    fn new(program: &'a Program) -> Self {
        let n = program.size();
        let v = program.var_count();
        let sites = SiteTable::build(program);
        let wps = sites.len().div_ceil(64);
        Solver {
            program,
            sites,
            wps,
            words: vec![0; (n + v) * wps],
            edges: vec![Vec::new(); n + v],
            listeners: Vec::new(),
            watchers: vec![Vec::new(); n + v],
            handled: Vec::new(),
            worklist: Worklist::new(n + v),
            stats: Cfa0Stats::default(),
        }
    }

    fn expr_var(&self, e: ExprId) -> u32 {
        e.index() as u32
    }

    fn binder_var(&self, v: VarId) -> u32 {
        (self.program.size() + v.index()) as u32
    }

    /// Adds the static subset edge `from ⊆ to`.
    fn edge(&mut self, from: u32, to: u32) {
        self.edges[from as usize].push(to);
        self.stats.static_edges += 1;
    }

    /// Adds a dynamic subset edge and propagates immediately.
    fn dynamic_edge(&mut self, from: u32, to: u32) {
        self.edges[from as usize].push(to);
        self.stats.dynamic_edges += 1;
        self.propagate(from, to);
    }

    /// Unions `from`'s set into `to`'s; enqueues `to` on change.
    fn propagate(&mut self, from: u32, to: u32) {
        if from == to {
            return;
        }
        self.stats.propagations += 1;
        let wps = self.wps;
        let (f, t) = (from as usize * wps, to as usize * wps);
        // Split-borrow the two word runs.
        let (dst, src) = if f < t {
            let (a, b) = self.words.split_at_mut(t);
            (&mut b[..wps], &a[f..f + wps])
        } else {
            let (a, b) = self.words.split_at_mut(f);
            (&mut a[t..t + wps], &b[..wps])
        };
        let mut changed = false;
        for (d, &s) in dst.iter_mut().zip(src) {
            let next = *d | s;
            changed |= next != *d;
            *d = next;
        }
        if changed {
            self.worklist.push(to as usize);
        }
    }

    fn seed(&mut self, var: u32, site: usize) {
        let w = var as usize * self.wps + site / 64;
        let mask = 1u64 << (site % 64);
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.worklist.push(var as usize);
        }
    }

    fn listener(&mut self, watch: u32, l: Listener) {
        let id = self.listeners.len() as u32;
        self.listeners.push(l);
        self.handled.push(BitSet::new(self.sites.len()));
        self.watchers[watch as usize].push(id);
    }

    fn install_constraints(&mut self, mask: Option<&BitSet>) {
        for e in self.program.exprs() {
            if let Some(m) = mask {
                if !m.contains(e.index()) {
                    continue;
                }
            }
            let ev = self.expr_var(e);
            match self.program.kind(e) {
                ExprKind::Var(v) => {
                    let bv = self.binder_var(*v);
                    self.edge(bv, ev);
                }
                ExprKind::Lam { .. } | ExprKind::Record(_) | ExprKind::Con { .. } => {
                    let site = self.sites.site_of(e).expect("creation site");
                    self.seed(ev, site);
                }
                ExprKind::App { func, arg } => {
                    let fv = self.expr_var(*func);
                    let av = self.expr_var(*arg);
                    self.listener(
                        fv,
                        Listener::AppFunc {
                            arg_var: av,
                            app_var: ev,
                        },
                    );
                }
                ExprKind::Let { binder, rhs, body } => {
                    let bv = self.binder_var(*binder);
                    self.edge(self.expr_var(*rhs), bv);
                    self.edge(self.expr_var(*body), ev);
                }
                ExprKind::LetRec {
                    binder,
                    lambda,
                    body,
                } => {
                    let bv = self.binder_var(*binder);
                    self.edge(self.expr_var(*lambda), bv);
                    self.edge(self.expr_var(*body), ev);
                }
                ExprKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    self.edge(self.expr_var(*then_branch), ev);
                    self.edge(self.expr_var(*else_branch), ev);
                }
                ExprKind::Proj { index, tuple } => {
                    let tv = self.expr_var(*tuple);
                    self.listener(
                        tv,
                        Listener::ProjTuple {
                            index: *index,
                            proj_var: ev,
                        },
                    );
                }
                ExprKind::Case {
                    scrutinee,
                    arms,
                    default,
                } => {
                    let sv = self.expr_var(*scrutinee);
                    for arm in arms.iter() {
                        self.edge(self.expr_var(arm.body), ev);
                    }
                    if let Some(d) = default {
                        self.edge(self.expr_var(*d), ev);
                    }
                    if !arms.is_empty() {
                        self.listener(sv, Listener::CaseScrut { case_expr: e });
                    }
                }
                ExprKind::Lit(_) | ExprKind::Prim { .. } => {}
            }
        }
    }

    fn run(mut self, mask: Option<&BitSet>) -> Cfa0 {
        self.install_constraints(mask);
        while let Some(u) = self.worklist.pop() {
            self.stats.activations += 1;
            // (a) propagate along subset edges.
            let edges = std::mem::take(&mut self.edges[u]);
            for &w in &edges {
                self.propagate(u as u32, w);
            }
            debug_assert!(self.edges[u].is_empty());
            self.edges[u] = edges;
            // (b) fire listeners on newly arrived sites.
            let watcher_ids = self.watchers[u].clone();
            for lid in watcher_ids {
                // Collect sites not yet handled by this listener.
                let fresh: Vec<usize> = self
                    .set_bits(u)
                    .filter(|&s| !self.handled[lid as usize].contains(s))
                    .collect();
                for s in fresh {
                    self.handled[lid as usize].insert(s);
                    self.fire(lid, s);
                }
            }
        }
        Cfa0 {
            sites: self.sites,
            words: self.words,
            wps: self.wps,
            n_exprs: self.program.size(),
            stats: self.stats,
        }
    }

    /// Iterates the site indices present in variable `u`'s set.
    fn set_bits(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        let base = u * self.wps;
        self.words[base..base + self.wps]
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| {
                std::iter::successors((word != 0).then_some(word), |w| {
                    let w = w & (w - 1);
                    (w != 0).then_some(w)
                })
                .map(move |w| wi * 64 + w.trailing_zeros() as usize)
            })
    }

    fn fire(&mut self, lid: u32, site: usize) {
        let site_expr = self.sites.expr(site);
        match &self.listeners[lid as usize] {
            Listener::AppFunc { arg_var, app_var } => {
                let (arg_var, app_var) = (*arg_var, *app_var);
                if let ExprKind::Lam { param, body, .. } = self.program.kind(site_expr) {
                    let pv = self.binder_var(*param);
                    let bv = self.expr_var(*body);
                    self.dynamic_edge(arg_var, pv);
                    self.dynamic_edge(bv, app_var);
                }
            }
            Listener::ProjTuple { index, proj_var } => {
                let (index, proj_var) = (*index, *proj_var);
                if let ExprKind::Record(items) = self.program.kind(site_expr) {
                    if let Some(&field) = items.get(index as usize) {
                        let fv = self.expr_var(field);
                        self.dynamic_edge(fv, proj_var);
                    }
                }
            }
            Listener::CaseScrut { case_expr } => {
                let case_expr = *case_expr;
                if let ExprKind::Con { con, args } = self.program.kind(site_expr) {
                    let con = *con;
                    let args: Vec<ExprId> = args.to_vec();
                    if let ExprKind::Case { arms, .. } = self.program.kind(case_expr) {
                        let bindings: Vec<(u32, u32)> = arms
                            .iter()
                            .filter(|arm| arm.con == con)
                            .flat_map(|arm| {
                                arm.binders
                                    .iter()
                                    .zip(args.iter())
                                    .map(|(&b, &a)| (self.expr_var(a), self.binder_var(b)))
                                    .collect::<Vec<_>>()
                            })
                            .collect();
                        for (from, to) in bindings {
                            self.dynamic_edge(from, to);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::Program;

    fn labels_at_root(src: &str) -> Vec<usize> {
        let p = Program::parse(src).unwrap();
        let cfa = Cfa0::analyze(&p);
        cfa.labels(&p, p.root())
            .into_iter()
            .map(|l| l.index())
            .collect()
    }

    #[test]
    fn paper_example_self_application() {
        // (λx.(x x)) (λ'y.y) — the root evaluates to λ'y.y (label 1).
        let labels = labels_at_root("(fn x => x x) (fn y => y)");
        assert_eq!(labels, vec![1]);
    }

    #[test]
    fn identity_returns_argument() {
        let labels = labels_at_root("(fn i => i) (fn z => z)");
        assert_eq!(labels, vec![1]);
    }

    #[test]
    fn monovariant_merging_at_shared_function() {
        // id applied to two different abstractions: both flow back out of
        // both call sites (the monovariant join-point effect, paper §2).
        let src = "\
            fun id x = x;\n\
            val a = id (fn u => u);\n\
            val b = id (fn v => v);\n\
            a";
        let labels = labels_at_root(src);
        assert_eq!(labels.len(), 2, "monovariant CFA merges both arguments");
    }

    #[test]
    fn conditional_joins_branches() {
        let labels = labels_at_root("if true then fn x => x else fn y => y");
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn records_track_fields_separately() {
        let p = Program::parse("#1 ((fn x => x), (fn y => y))").unwrap();
        let cfa = Cfa0::analyze(&p);
        let labels = cfa.labels(&p, p.root());
        assert_eq!(labels.len(), 1, "projection selects only field 1");
    }

    #[test]
    fn constructors_track_arguments() {
        let src = "\
            datatype wrap = W of (int -> int);\n\
            case W(fn x => x) of W(f) => f";
        let labels = labels_at_root(src);
        assert_eq!(labels.len(), 1);
    }

    #[test]
    fn letrec_function_flows_to_uses() {
        let p = Program::parse("fun f x = x; f").unwrap();
        let cfa = Cfa0::analyze(&p);
        assert_eq!(cfa.labels(&p, p.root()).len(), 1);
    }

    #[test]
    fn call_targets_at_apps() {
        let p = Program::parse("(fn x => x) 1").unwrap();
        let cfa = Cfa0::analyze(&p);
        let targets = cfa.call_targets(&p, p.root()).unwrap();
        assert_eq!(targets.len(), 1);
        let lam = p.lam_of_label(targets[0]);
        assert_eq!(
            cfa.call_targets(&p, lam),
            None,
            "non-apps have no call targets"
        );
    }

    #[test]
    fn dead_code_still_analyzed() {
        // Standard CFA does not do dead-code pruning: the unused lambda
        // still has itself in its own set.
        let p = Program::parse("let val dead = fn x => x in 1 end").unwrap();
        let cfa = Cfa0::analyze(&p);
        let lam = p
            .exprs()
            .find(|&e| matches!(p.kind(e), ExprKind::Lam { .. }))
            .unwrap();
        assert_eq!(cfa.labels(&p, lam).len(), 1);
    }

    #[test]
    fn prims_produce_no_flow() {
        let labels = labels_at_root("1 + 2");
        assert!(labels.is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let p = Program::parse("(fn x => x x) (fn y => y)").unwrap();
        let cfa = Cfa0::analyze(&p);
        let s = cfa.stats();
        assert!(s.activations > 0);
        assert!(
            s.dynamic_edges >= 2,
            "at least APP-1/APP-2 for the outer app"
        );
    }

    #[test]
    fn restricted_run_brackets_the_full_run() {
        let p = Program::parse("(fn x => x x) (fn y => y)").unwrap();
        let full = Cfa0::analyze(&p);
        // The full mask reproduces the unrestricted answer everywhere.
        let mut all = BitSet::new(p.size());
        for e in p.exprs() {
            all.insert(e.index());
        }
        let same = Cfa0::analyze_within(&p, &all);
        for e in p.exprs() {
            assert_eq!(same.labels(&p, e), full.labels(&p, e));
        }
        // The empty mask installs nothing: every set is empty.
        let none = Cfa0::analyze_within(&p, &BitSet::new(p.size()));
        for e in p.exprs() {
            assert!(none.labels(&p, e).is_empty());
        }
        assert!(none.stats().activations <= full.stats().activations);
    }

    #[test]
    fn flow_through_case_default() {
        let src = "\
            datatype t = A | B;\n\
            case A of B => fn x => x | _ => fn y => y";
        let labels = labels_at_root(src);
        // Flow-insensitive case: both arms flow to the result.
        assert_eq!(labels.len(), 2);
    }
}
