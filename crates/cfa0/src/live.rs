//! Reachability-aware ("dead-code-sensitive") CFA — the second design
//! dimension in the paper's introduction: "does the analysis take into
//! account which pieces of a program can actually be called?"
//!
//! [`crate::Cfa0`] (and the subtransitive graph) analyze every expression,
//! reachable or not. This variant interleaves a *liveness* computation
//! with the flow analysis, under call-by-value may-evaluation:
//!
//! - the root is live; evaluating a construct makes its evaluated children
//!   live (a λ's body is **not** evaluated with the λ);
//! - a λ body becomes live only when the λ flows into the operator of a
//!   *live* application — and only then are the call edges added;
//! - a `case` arm's body becomes live only when a matching construction
//!   flows into a live scrutinee (`if` branches stay conservatively live —
//!   we do not track boolean values).
//!
//! The result is both a liveness verdict per occurrence and flow sets that
//! are never larger than the standard analysis's (dead code cannot
//! pollute).

use stcfa_graph::{BitSet, Worklist};
use stcfa_lambda::{ExprId, ExprKind, Label, Program, VarId};

use crate::sites::SiteTable;

/// Work counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiveCfa0Stats {
    /// Expressions that became live.
    pub live_exprs: usize,
    /// Word-level set unions.
    pub propagations: u64,
    /// Dynamic edges added by application/projection/case firing.
    pub dynamic_edges: u64,
}

/// The reachability-aware analysis result.
#[derive(Clone, Debug)]
pub struct LiveCfa0 {
    sites: SiteTable,
    expr_sets: Vec<BitSet>,
    var_sets: Vec<BitSet>,
    live: Vec<bool>,
    stats: LiveCfa0Stats,
}

impl LiveCfa0 {
    /// Runs the interleaved liveness + flow fixpoint.
    pub fn analyze(program: &Program) -> LiveCfa0 {
        Solver::new(program).run()
    }

    /// Whether occurrence `e` may be evaluated.
    pub fn is_live(&self, e: ExprId) -> bool {
        self.live[e.index()]
    }

    /// All live occurrences, in id order.
    pub fn live_exprs(&self) -> Vec<ExprId> {
        self.live
            .iter()
            .enumerate()
            .filter(|&(_i, &l)| l)
            .map(|(i, &_l)| ExprId::from_index(i))
            .collect()
    }

    /// `L(e)` under the live analysis, sorted. Empty for dead code.
    pub fn labels(&self, program: &Program, e: ExprId) -> Vec<Label> {
        self.labels_of_set(program, &self.expr_sets[e.index()])
    }

    /// Labels reaching binder `v`.
    pub fn var_labels(&self, program: &Program, v: VarId) -> Vec<Label> {
        self.labels_of_set(program, &self.var_sets[v.index()])
    }

    fn labels_of_set(&self, program: &Program, set: &BitSet) -> Vec<Label> {
        let mut out: Vec<Label> = set
            .iter()
            .filter_map(|s| self.sites.label_of_site(program, s))
            .collect();
        out.sort_unstable();
        out
    }

    /// Work counters.
    pub fn stats(&self) -> LiveCfa0Stats {
        self.stats
    }
}

enum Listener {
    App { app: ExprId },
    Proj { index: u32, proj_var: u32 },
    Case { case_expr: ExprId },
}

struct Solver<'a> {
    program: &'a Program,
    sites: SiteTable,
    sets: Vec<BitSet>,
    edges: Vec<Vec<u32>>,
    listeners: Vec<Listener>,
    watchers: Vec<Vec<u32>>,
    handled: Vec<BitSet>,
    live: Vec<bool>,
    live_queue: Vec<ExprId>,
    /// λ bodies already made live by some call.
    body_live: Vec<bool>,
    worklist: Worklist,
    stats: LiveCfa0Stats,
}

impl<'a> Solver<'a> {
    fn new(program: &'a Program) -> Self {
        let n = program.size();
        let v = program.var_count();
        let sites = SiteTable::build(program);
        let nsites = sites.len();
        Solver {
            program,
            sites,
            sets: (0..n + v).map(|_| BitSet::new(nsites)).collect(),
            edges: vec![Vec::new(); n + v],
            listeners: Vec::new(),
            watchers: vec![Vec::new(); n + v],
            handled: Vec::new(),
            live: vec![false; n],
            live_queue: Vec::new(),
            body_live: vec![false; program.label_count()],
            worklist: Worklist::new(n + v),
            stats: LiveCfa0Stats::default(),
        }
    }

    fn expr_var(&self, e: ExprId) -> u32 {
        e.index() as u32
    }

    fn binder_var(&self, v: VarId) -> u32 {
        (self.program.size() + v.index()) as u32
    }

    fn mark_live(&mut self, e: ExprId) {
        if !self.live[e.index()] {
            self.live[e.index()] = true;
            self.live_queue.push(e);
        }
    }

    fn edge(&mut self, from: u32, to: u32) {
        self.edges[from as usize].push(to);
        self.propagate(from, to);
    }

    fn propagate(&mut self, from: u32, to: u32) {
        if from == to {
            return;
        }
        self.stats.propagations += 1;
        let (from, to) = (from as usize, to as usize);
        let changed = if from < to {
            let (a, b) = self.sets.split_at_mut(to);
            b[0].union_with(&a[from])
        } else {
            let (a, b) = self.sets.split_at_mut(from);
            a[to].union_with(&b[0])
        };
        if changed {
            self.worklist.push(to);
        }
    }

    fn seed(&mut self, var: u32, site: usize) {
        if self.sets[var as usize].insert(site) {
            self.worklist.push(var as usize);
        }
    }

    fn listen(&mut self, watch: u32, l: Listener) {
        let id = self.listeners.len() as u32;
        self.listeners.push(l);
        self.handled.push(BitSet::new(self.sites.len()));
        self.watchers[watch as usize].push(id);
        // Catch up on sites already present.
        self.worklist.push(watch as usize);
    }

    /// Installs the constraints of a newly live expression.
    fn process_live(&mut self, e: ExprId) {
        self.stats.live_exprs += 1;
        let ev = self.expr_var(e);
        match self.program.kind(e).clone() {
            ExprKind::Var(v) => {
                self.edge(self.binder_var(v), ev);
            }
            ExprKind::Lam { .. } => {
                let site = self.sites.site_of(e).expect("lam site");
                self.seed(ev, site);
                // The body becomes live only when the λ is applied.
            }
            ExprKind::App { func, arg } => {
                self.mark_live(func);
                self.mark_live(arg);
                self.listen(self.expr_var(func), Listener::App { app: e });
            }
            ExprKind::Let { binder, rhs, body } => {
                self.mark_live(rhs);
                self.mark_live(body);
                self.edge(self.expr_var(rhs), self.binder_var(binder));
                self.edge(self.expr_var(body), ev);
            }
            ExprKind::LetRec {
                binder,
                lambda,
                body,
            } => {
                self.mark_live(lambda);
                self.mark_live(body);
                self.edge(self.expr_var(lambda), self.binder_var(binder));
                self.edge(self.expr_var(body), ev);
            }
            ExprKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.mark_live(cond);
                self.mark_live(then_branch);
                self.mark_live(else_branch);
                self.edge(self.expr_var(then_branch), ev);
                self.edge(self.expr_var(else_branch), ev);
            }
            ExprKind::Record(items) => {
                for &i in items.iter() {
                    self.mark_live(i);
                }
                let site = self.sites.site_of(e).expect("record site");
                self.seed(ev, site);
            }
            ExprKind::Proj { index, tuple } => {
                self.mark_live(tuple);
                self.listen(
                    self.expr_var(tuple),
                    Listener::Proj {
                        index,
                        proj_var: ev,
                    },
                );
            }
            ExprKind::Con { args, .. } => {
                for &a in args.iter() {
                    self.mark_live(a);
                }
                let site = self.sites.site_of(e).expect("con site");
                self.seed(ev, site);
            }
            ExprKind::Case {
                scrutinee,
                arms,
                default,
            } => {
                self.mark_live(scrutinee);
                if let Some(d) = default {
                    // Conservative: we do not track which constructors are
                    // absent, so the wildcard stays live.
                    self.mark_live(d);
                    self.edge(self.expr_var(d), ev);
                }
                if !arms.is_empty() {
                    self.listen(self.expr_var(scrutinee), Listener::Case { case_expr: e });
                }
            }
            ExprKind::Prim { args, .. } => {
                for &a in args.iter() {
                    self.mark_live(a);
                }
            }
            ExprKind::Lit(_) => {}
        }
    }

    fn run(mut self) -> LiveCfa0 {
        self.mark_live(self.program.root());
        loop {
            if let Some(e) = self.live_queue.pop() {
                self.process_live(e);
            } else if let Some(u) = self.worklist.pop() {
                let edges = std::mem::take(&mut self.edges[u]);
                for &w in &edges {
                    self.propagate(u as u32, w);
                }
                self.edges[u] = edges;
                let watcher_ids = self.watchers[u].clone();
                for lid in watcher_ids {
                    let fresh: Vec<usize> = self.sets[u]
                        .iter()
                        .filter(|&s| !self.handled[lid as usize].contains(s))
                        .collect();
                    for s in fresh {
                        self.handled[lid as usize].insert(s);
                        self.fire(lid, s);
                    }
                }
            } else {
                break;
            }
        }
        LiveCfa0 {
            sites: self.sites,
            var_sets: self.sets.split_off(self.program.size()),
            expr_sets: self.sets,
            live: self.live,
            stats: self.stats,
        }
    }

    fn fire(&mut self, lid: u32, site: usize) {
        self.stats.dynamic_edges += 1;
        let site_expr = self.sites.expr(site);
        match self.listeners[lid as usize] {
            Listener::App { app } => {
                let ExprKind::App { arg, .. } = self.program.kind(app) else {
                    unreachable!()
                };
                let arg = *arg;
                if let ExprKind::Lam { label, param, body } = self.program.kind(site_expr) {
                    let (label, param, body) = (*label, *param, *body);
                    if !self.body_live[label.index()] {
                        self.body_live[label.index()] = true;
                    }
                    self.mark_live(body);
                    let pv = self.binder_var(param);
                    let bv = self.expr_var(body);
                    self.edge(self.expr_var(arg), pv);
                    self.edge(bv, self.expr_var(app));
                }
            }
            Listener::Proj { index, proj_var } => {
                if let ExprKind::Record(items) = self.program.kind(site_expr) {
                    if let Some(&field) = items.get(index as usize) {
                        let fv = self.expr_var(field);
                        self.edge(fv, proj_var);
                    }
                }
            }
            Listener::Case { case_expr } => {
                if let ExprKind::Con { con, args } = self.program.kind(site_expr) {
                    let con = *con;
                    let args: Vec<ExprId> = args.to_vec();
                    let ExprKind::Case { arms, .. } = self.program.kind(case_expr).clone() else {
                        unreachable!()
                    };
                    for arm in arms.iter().filter(|arm| arm.con == con) {
                        self.mark_live(arm.body);
                        self.edge(self.expr_var(arm.body), self.expr_var(case_expr));
                        for (&b, &a) in arm.binders.iter().zip(args.iter()) {
                            self.edge(self.expr_var(a), self.binder_var(b));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labelsets::Cfa0;
    use stcfa_lambda::Program;

    #[test]
    fn every_lambda_called_means_everything_live() {
        // Every abstraction here is applied, so liveness covers the whole
        // program and the analysis coincides with the standard one.
        let src = "(fn x => x x) (fn y => y)";
        let p = Program::parse(src).unwrap();
        let live = LiveCfa0::analyze(&p);
        let full = Cfa0::analyze(&p);
        for e in p.exprs() {
            assert!(live.is_live(e), "{e:?} should be live");
            assert_eq!(live.labels(&p, e), full.labels(&p, e), "at {e:?}");
        }
    }

    #[test]
    fn live_expressions_match_standard_cfa() {
        for src in [
            "fun id x = x; val a = id (fn u => u); val b = id (fn v => v); a b",
            "#1 ((fn x => x), (fn y => y)) 2",
            "datatype w = W of (int -> int); (case W(fn x => x) of W(f) => f) 1",
        ] {
            let p = Program::parse(src).unwrap();
            let live = LiveCfa0::analyze(&p);
            let full = Cfa0::analyze(&p);
            assert!(live.is_live(p.root()));
            for e in live.live_exprs() {
                assert_eq!(
                    live.labels(&p, e),
                    full.labels(&p, e),
                    "at {e:?} in {src:?}"
                );
            }
        }
    }

    #[test]
    fn uncalled_lambda_bodies_are_dead() {
        let p = Program::parse("let val dead = fn x => (fn y => y) 1 in 2 end").unwrap();
        let live = LiveCfa0::analyze(&p);
        // The outer lambda is constructed (its rhs is evaluated)…
        let outer = p
            .exprs()
            .find(
                |&e| matches!(p.kind(e), ExprKind::Lam { param, .. } if p.var_name(*param) == "x"),
            )
            .unwrap();
        assert!(live.is_live(outer));
        // …but its body — and the inner lambda — are never evaluated.
        let ExprKind::Lam { body, .. } = p.kind(outer) else {
            unreachable!()
        };
        assert!(!live.is_live(*body), "uncalled body must be dead");
    }

    #[test]
    fn unmatched_case_arms_are_dead() {
        let src = "datatype t = A | B;\n\
                   case A of A => 1 | B => (fn q => q) 2";
        let p = Program::parse(src).unwrap();
        let live = LiveCfa0::analyze(&p);
        // The B arm's application never becomes live: no B value flows.
        let b_app = p
            .app_sites()
            .into_iter()
            .next()
            .expect("the B arm has the only application");
        assert!(!live.is_live(b_app));
        // But the standard analysis does analyze it.
        let full = Cfa0::analyze(&p);
        assert_eq!(full.labels(&p, b_app).len(), 0);
    }

    #[test]
    fn live_sets_never_exceed_standard_sets() {
        for src in [
            "let val dead = fn x => x in (fn y => y) (fn z => z) end",
            "fun f x = x; val g = fn h => h 1; 5",
            "datatype t = A | B; case A of A => fn u => u | B => fn v => v",
        ] {
            let p = Program::parse(src).unwrap();
            let live = LiveCfa0::analyze(&p);
            let full = Cfa0::analyze(&p);
            for e in p.exprs() {
                let l = live.labels(&p, e);
                let f = full.labels(&p, e);
                for lab in &l {
                    assert!(f.contains(lab), "live invented {lab:?} at {e:?} in {src:?}");
                }
            }
        }
    }

    #[test]
    fn call_through_dead_region_is_not_analyzed() {
        // g is only called from inside dead's body: the call edge never
        // materializes, so u's binder set stays empty.
        let src = "\
            fun g u = u;\n\
            let val dead = fn x => g (fn w => w) in 3 end";
        let p = Program::parse(src).unwrap();
        let live = LiveCfa0::analyze(&p);
        let u = p.vars().find(|&v| p.var_name(v) == "u").unwrap();
        assert!(live.var_labels(&p, u).is_empty());
        let full = Cfa0::analyze(&p);
        assert_eq!(
            full.var_labels(&p, u).len(),
            1,
            "standard CFA sees the dead call"
        );
    }

    #[test]
    fn stats_track_liveness() {
        let p = Program::parse("let val dead = fn x => x in 1 end").unwrap();
        let live = LiveCfa0::analyze(&p);
        assert!(live.stats().live_exprs < p.size());
        assert_eq!(live.live_exprs().len(), live.stats().live_exprs);
    }
}
