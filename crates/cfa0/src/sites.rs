//! Abstract-value sites shared by the inclusion-based analyses.
//!
//! In monovariant inclusion-based CFA, the abstract values flowing through
//! a program are its *creation sites*: abstractions (identified by their
//! label), record constructions and datatype constructions. This module
//! gives each such site a dense id so analyses can use bit sets.

use stcfa_lambda::{ExprId, ExprKind, Label, Program};

/// Dense numbering of the value-creation sites of one program.
#[derive(Clone, Debug)]
pub struct SiteTable {
    /// Site id → creating expression.
    sites: Vec<ExprId>,
    /// Expression index → site id (dense; `u32::MAX` = not a site).
    site_of_expr: Vec<u32>,
}

const NOT_A_SITE: u32 = u32::MAX;

impl SiteTable {
    /// Numbers the sites of `program`.
    pub fn build(program: &Program) -> Self {
        let mut sites = Vec::new();
        let mut site_of_expr = vec![NOT_A_SITE; program.size()];
        for id in program.exprs() {
            if matches!(
                program.kind(id),
                ExprKind::Lam { .. } | ExprKind::Record(_) | ExprKind::Con { .. }
            ) {
                site_of_expr[id.index()] = u32::try_from(sites.len()).expect("site count overflow");
                sites.push(id);
            }
        }
        SiteTable {
            sites,
            site_of_expr,
        }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the program has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The creating expression of a site.
    pub fn expr(&self, site: usize) -> ExprId {
        self.sites[site]
    }

    /// The site id of a creating expression, if it is one.
    pub fn site_of(&self, id: ExprId) -> Option<usize> {
        match self.site_of_expr[id.index()] {
            NOT_A_SITE => None,
            s => Some(s as usize),
        }
    }

    /// The abstraction label of a site, if the site is an abstraction.
    pub fn label_of_site(&self, program: &Program, site: usize) -> Option<Label> {
        program.label_of(self.sites[site])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::Program;

    #[test]
    fn numbers_lams_records_cons() {
        let p = Program::parse(
            "datatype t = C of int;\n\
             ((fn x => x), C(1), 7)",
        )
        .unwrap();
        let sites = SiteTable::build(&p);
        // one lam + one con + the outer record = 3 sites
        assert_eq!(sites.len(), 3);
        for s in 0..sites.len() {
            assert_eq!(sites.site_of(sites.expr(s)), Some(s));
        }
    }

    #[test]
    fn literals_are_not_sites() {
        let p = Program::parse("1 + 2").unwrap();
        let sites = SiteTable::build(&p);
        assert!(sites.is_empty());
        assert_eq!(sites.site_of(p.root()), None);
    }
}
