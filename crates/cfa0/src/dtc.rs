//! The DTC ("dynamic transitive closure") transition system — the paper's
//! Section 3 reformulation of standard CFA as deduction rules over program
//! nodes:
//!
//! ```text
//! (ABS)    λˡx.e → λˡx.e
//! (APP-1)  e₁ →* λˡx.e  ⟹  x → e₂            (for each (e₁ e₂) in P)
//! (APP-2)  e₁ →* λˡx.e  ⟹  (e₁ e₂) → e       (for each (e₁ e₂) in P)
//! (TRANS)  e₁ → e₂, e₂ → e₃  ⟹  e₁ → e₃
//! ```
//!
//! An edge `e → e′` means "anything derivable from `e′` is derivable from
//! `e`"; TRANS may be restricted to abstraction right-endpoints, which is
//! how this implementation works: it maintains, per node, the set of
//! abstractions reachable so far, and fires APP-1/APP-2 when one arrives at
//! an operator position. Transitive closure is thus *intertwined* with edge
//! addition — exactly the coupling the subtransitive algorithm removes.
//!
//! Supported forms: the lambda calculus plus `let`/`letrec`/`if` and inert
//! literals/primitives. Records and datatypes are out of scope here (the
//! paper presents DTC for the pure calculus); use [`crate::Cfa0`] for the
//! full language.

use std::error::Error;
use std::fmt;

use stcfa_graph::{BitSet, Worklist};
use stcfa_lambda::{ExprId, ExprKind, Label, Program, VarId};

/// DTC is defined on the lambda fragment only.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsupportedConstruct {
    /// The offending occurrence.
    pub at: ExprId,
    /// Which construct it was.
    pub construct: &'static str,
}

impl fmt::Display for UnsupportedConstruct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DTC supports only the lambda fragment; found {} at {:?}",
            self.construct, self.at
        )
    }
}

impl Error for UnsupportedConstruct {}

/// Work counters for the DTC run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DtcStats {
    /// Edges added (basic + APP-derived).
    pub edges: u64,
    /// Label propagations along edges.
    pub propagations: u64,
}

/// The computed DTC relation: per-node reachable abstraction labels.
#[derive(Clone, Debug)]
pub struct Dtc {
    /// Node layout: exprs `0..n`, binders `n..n+v`.
    n_exprs: usize,
    reach: Vec<BitSet>,
    stats: DtcStats,
}

impl Dtc {
    /// Runs DTC to fixpoint.
    pub fn analyze(program: &Program) -> Result<Dtc, UnsupportedConstruct> {
        DtcSolver::new(program)?.run()
    }

    /// `L(e)`: abstraction labels derivable from expression occurrence `e`,
    /// sorted.
    pub fn labels(&self, e: ExprId) -> Vec<Label> {
        self.reach[e.index()]
            .iter()
            .map(Label::from_index)
            .collect()
    }

    /// Labels derivable from binder `v`, sorted.
    pub fn var_labels(&self, v: VarId) -> Vec<Label> {
        self.reach[self.n_exprs + v.index()]
            .iter()
            .map(Label::from_index)
            .collect()
    }

    /// Work counters.
    pub fn stats(&self) -> DtcStats {
        self.stats
    }
}

struct DtcSolver<'a> {
    program: &'a Program,
    /// Forward edges node → node ("derivable from").
    succs: Vec<Vec<u32>>,
    /// Reverse edges, to propagate reach-set growth to predecessors.
    preds: Vec<Vec<u32>>,
    reach: Vec<BitSet>,
    /// For each expression: the applications in which it is the operator.
    apps_with_func: Vec<Vec<ExprId>>,
    /// Per (operator-node) the labels already fired for its applications.
    fired: Vec<BitSet>,
    worklist: Worklist,
    stats: DtcStats,
}

impl<'a> DtcSolver<'a> {
    fn new(program: &'a Program) -> Result<Self, UnsupportedConstruct> {
        for e in program.exprs() {
            let construct = match program.kind(e) {
                ExprKind::Record(_) => Some("record"),
                ExprKind::Proj { .. } => Some("projection"),
                ExprKind::Con { .. } => Some("constructor"),
                ExprKind::Case { .. } => Some("case"),
                _ => None,
            };
            if let Some(construct) = construct {
                return Err(UnsupportedConstruct { at: e, construct });
            }
        }
        let n = program.size();
        let v = program.var_count();
        let labels = program.label_count();
        let mut apps_with_func = vec![Vec::new(); n];
        for e in program.exprs() {
            if let ExprKind::App { func, .. } = program.kind(e) {
                apps_with_func[func.index()].push(e);
            }
        }
        Ok(DtcSolver {
            program,
            succs: vec![Vec::new(); n + v],
            preds: vec![Vec::new(); n + v],
            reach: (0..n + v).map(|_| BitSet::new(labels)).collect(),
            apps_with_func,
            fired: (0..n).map(|_| BitSet::new(labels)).collect(),
            worklist: Worklist::new(n + v),
            stats: DtcStats::default(),
        })
    }

    fn expr_node(&self, e: ExprId) -> usize {
        e.index()
    }

    fn binder_node(&self, v: VarId) -> usize {
        self.program.size() + v.index()
    }

    /// Adds edge `u → v` and pulls `v`'s current reach into `u`.
    fn add_edge(&mut self, u: usize, v: usize) {
        self.succs[u].push(v as u32);
        self.preds[v].push(u as u32);
        self.stats.edges += 1;
        self.pull(u, v);
    }

    /// `reach[u] ∪= reach[v]`, enqueueing `u` on change.
    fn pull(&mut self, u: usize, v: usize) {
        if u == v {
            return;
        }
        self.stats.propagations += 1;
        let changed = if u < v {
            let (a, b) = self.reach.split_at_mut(v);
            a[u].union_with(&b[0])
        } else {
            let (a, b) = self.reach.split_at_mut(u);
            b[0].union_with(&a[v])
        };
        if changed {
            self.worklist.push(u);
        }
    }

    fn run(mut self) -> Result<Dtc, UnsupportedConstruct> {
        // Basic edges and ABS seeds.
        for e in self.program.exprs() {
            let en = self.expr_node(e);
            match self.program.kind(e) {
                ExprKind::Var(v) => {
                    let bn = self.binder_node(*v);
                    self.add_edge(en, bn);
                }
                ExprKind::Lam { label, .. } => {
                    if self.reach[en].insert(label.index()) {
                        self.worklist.push(en);
                    }
                }
                ExprKind::Let { binder, rhs, body } => {
                    let bn = self.binder_node(*binder);
                    self.add_edge(bn, self.expr_node(*rhs));
                    self.add_edge(en, self.expr_node(*body));
                }
                ExprKind::LetRec {
                    binder,
                    lambda,
                    body,
                } => {
                    let bn = self.binder_node(*binder);
                    self.add_edge(bn, self.expr_node(*lambda));
                    self.add_edge(en, self.expr_node(*body));
                }
                ExprKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    self.add_edge(en, self.expr_node(*then_branch));
                    self.add_edge(en, self.expr_node(*else_branch));
                }
                ExprKind::App { .. } | ExprKind::Lit(_) | ExprKind::Prim { .. } => {}
                _ => unreachable!("rejected in new()"),
            }
        }

        // Fixpoint: propagate reach sets backwards, firing APP rules.
        while let Some(u) = self.worklist.pop() {
            // Fire APP-1/APP-2 for operators whose reach gained labels.
            if u < self.program.size() {
                let e = ExprId::from_index(u);
                if !self.apps_with_func[u].is_empty() {
                    let fresh: Vec<usize> = self.reach[u]
                        .iter()
                        .filter(|&l| !self.fired[u].contains(l))
                        .collect();
                    for l in fresh {
                        self.fired[u].insert(l);
                        let lam = self.program.lam_of_label(Label::from_index(l));
                        let ExprKind::Lam { param, body, .. } = self.program.kind(lam) else {
                            unreachable!("label table maps to lams")
                        };
                        let (param, body) = (*param, *body);
                        let apps = self.apps_with_func[e.index()].clone();
                        for app in apps {
                            let ExprKind::App { arg, .. } = self.program.kind(app) else {
                                unreachable!()
                            };
                            // APP-1: x → e₂
                            let pn = self.binder_node(param);
                            self.add_edge(pn, self.expr_node(*arg));
                            // APP-2: (e₁ e₂) → body
                            self.add_edge(self.expr_node(app), self.expr_node(body));
                        }
                    }
                }
            }
            // TRANS (restricted): predecessors pull the grown set.
            let preds = self.preds[u].clone();
            for p in preds {
                self.pull(p as usize, u);
            }
        }

        Ok(Dtc {
            n_exprs: self.program.size(),
            reach: self.reach,
            stats: self.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labelsets::Cfa0;
    use stcfa_lambda::Program;

    #[test]
    fn paper_example() {
        // (λx.(x x)) (λ'y.y): the paper derives
        // (λx.(x x)) (λ'y.y) → λ'y.y via TRANS.
        let p = Program::parse("(fn x => x x) (fn y => y)").unwrap();
        let dtc = Dtc::analyze(&p).unwrap();
        let root_labels = dtc.labels(p.root());
        assert_eq!(root_labels.len(), 1);
        assert_eq!(root_labels[0].index(), 1);
    }

    #[test]
    fn rejects_datatypes() {
        let p = Program::parse("datatype t = A; A").unwrap();
        assert!(Dtc::analyze(&p).is_err());
    }

    #[test]
    fn agrees_with_cfa0_on_lambda_fragment() {
        let sources = [
            "(fn x => x x) (fn y => y)",
            "fun id x = x; val a = id (fn u => u); val b = id (fn v => v); b a",
            "(fn f => fn g => f (g (fn z => z))) (fn p => p) (fn q => q)",
            "if true then fn a => a else fn b => b",
            "let val t = fn s => s s in t (fn w => w) end",
            "fun loop x = loop x; loop (fn n => n)",
        ];
        for src in sources {
            let p = Program::parse(src).unwrap();
            let dtc = Dtc::analyze(&p).unwrap();
            let cfa = Cfa0::analyze(&p);
            for e in p.exprs() {
                assert_eq!(
                    dtc.labels(e),
                    cfa.labels(&p, e),
                    "DTC and standard CFA disagree at {e:?} in {src:?}"
                );
            }
            for v in p.vars() {
                assert_eq!(dtc.var_labels(v), cfa.var_labels(&p, v));
            }
        }
    }

    #[test]
    fn abstractions_reach_themselves() {
        let p = Program::parse("fn x => x").unwrap();
        let dtc = Dtc::analyze(&p).unwrap();
        assert_eq!(dtc.labels(p.root()).len(), 1);
    }

    #[test]
    fn edge_counting() {
        let p = Program::parse("(fn x => x) (fn y => y)").unwrap();
        let dtc = Dtc::analyze(&p).unwrap();
        // APP fires exactly once (one lam reaches the operator): 2 edges,
        // plus the 2 var→binder basic edges.
        assert_eq!(dtc.stats().edges, 4);
    }
}
