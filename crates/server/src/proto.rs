//! The versioned, line-delimited request/response protocol.
//!
//! One request per line, one response line per request, always in request
//! order. Every request is a JSON object:
//!
//! ```text
//! {"v":1,"id":7,"op":"analyze","source":"fun id x = x;","policy":"c1"}
//! ```
//!
//! - `v` (optional) — protocol version. Version 1 carries the stateless
//!   ops; version 2 adds the stateful `session/*` ops (which *require*
//!   `"v":2`). Any other version is rejected with a `proto` error.
//! - `id` (optional) — any JSON value; echoed verbatim in the response.
//! - `op` (required) — one of `analyze`, `query`, `lint`, `evict`,
//!   `stats`, `shutdown` (v1), or `session/open`, `session/update`,
//!   `session/query`, `session/lint`, `session/close` (v2).
//! - `deadline_ms` (optional) — per-request deadline, measured from the
//!   moment the daemon read the line. A request that exceeds it is
//!   answered with a structured `timeout` error; the daemon keeps
//!   serving.
//!
//! Responses are `{"v":V,"id":…,"ok":true,"result":{…}}` on success and
//! `{"v":V,"id":…,"ok":false,"error":{"kind":…,"message":…}}` on failure,
//! where `V` echoes the version the request was handled under — v1
//! transcripts are byte-for-byte what they were before v2 existed.
//! Errors never terminate the connection or the daemon; `shutdown` is the
//! only way to stop it from the protocol. See `docs/SERVER.md` and
//! `docs/SESSIONS.md` for the full op reference.

use std::time::{Duration, Instant};

use crate::json::Json;
use stcfa_core::DatatypePolicy;

/// The baseline protocol version (stateless ops).
pub const PROTOCOL_VERSION: u64 = 1;

/// The session protocol version: adds the stateful `session/*` ops.
pub const PROTOCOL_VERSION_SESSION: u64 = 2;

/// Structured error classes. The string form is part of the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed JSON, unknown op/field values, bad parameters.
    Proto,
    /// The submitted source failed to parse.
    Parse,
    /// The analysis refused the program (e.g. node-budget exceeded on an
    /// unbounded-type program).
    Analysis,
    /// A snapshot digest this store has never seen.
    UnknownSnapshot,
    /// A snapshot digest that was cached once and has since been evicted
    /// or invalidated.
    StaleSnapshot,
    /// The request exceeded its `deadline_ms`.
    Timeout,
    /// The digest is pinned by an open session: `evict` refuses to
    /// tombstone it out from under the session.
    PinnedSnapshot,
    /// A `session/*` op named a session id that is not open.
    UnknownSession,
    /// Admission control shed the request: the fleet's global in-flight
    /// cap was reached. The request was *not* executed; the client may
    /// retry after draining its pipeline. Transcript position is
    /// preserved — the rejection is the response for that line.
    Overloaded,
}

impl ErrorKind {
    /// The wire form.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Proto => "proto",
            ErrorKind::Parse => "parse",
            ErrorKind::Analysis => "analysis",
            ErrorKind::UnknownSnapshot => "unknown-snapshot",
            ErrorKind::StaleSnapshot => "stale-snapshot",
            ErrorKind::Timeout => "timeout",
            ErrorKind::PinnedSnapshot => "pinned-snapshot",
            ErrorKind::UnknownSession => "unknown-session",
            ErrorKind::Overloaded => "overloaded",
        }
    }
}

/// A request failure: kind plus human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestError {
    /// The structured class.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    /// Shorthand constructor.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> RequestError {
        RequestError {
            kind,
            message: message.into(),
        }
    }
}

/// The per-request deadline clock: started when the daemon read the
/// request line, checked at the request's work checkpoints.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    started: Instant,
    budget: Option<Duration>,
}

impl Deadline {
    /// A deadline of `budget_ms` milliseconds starting at `started`
    /// (`None` = unlimited).
    pub fn new(started: Instant, budget_ms: Option<u64>) -> Deadline {
        Deadline {
            started,
            budget: budget_ms.map(Duration::from_millis),
        }
    }

    /// Errors with [`ErrorKind::Timeout`] if the budget is spent. Call at
    /// every checkpoint that precedes or follows substantial work.
    pub fn check(&self, at: &str) -> Result<(), RequestError> {
        match self.budget {
            Some(budget) if self.started.elapsed() > budget => Err(RequestError::new(
                ErrorKind::Timeout,
                format!(
                    "deadline of {} ms exceeded ({} ms elapsed, at {at})",
                    budget.as_millis(),
                    self.started.elapsed().as_millis()
                ),
            )),
            _ => Ok(()),
        }
    }
}

/// Maps the wire policy name to the core enum and its stable key
/// discriminant (part of the content address — renumbering invalidates
/// every cached digest).
pub fn parse_policy(name: &str) -> Option<(DatatypePolicy, u64)> {
    match name {
        "c1" => Some((DatatypePolicy::Congruence1, 0)),
        "c2" => Some((DatatypePolicy::Congruence2, 1)),
        "exact" => Some((DatatypePolicy::Exact, 2)),
        "forget" => Some((DatatypePolicy::Forget, 3)),
        _ => None,
    }
}

/// Inverts [`parse_policy`]'s discriminant: the disk tier persists the
/// discriminant and must map it back to rebuild an analysis under the
/// original configuration. `None` for a discriminant this build does not
/// know (a snapshot from a future daemon — treated as corrupt, rebuilt).
pub fn policy_from_disc(disc: u64) -> Option<DatatypePolicy> {
    match disc {
        0 => Some(DatatypePolicy::Congruence1),
        1 => Some(DatatypePolicy::Congruence2),
        2 => Some(DatatypePolicy::Exact),
        3 => Some(DatatypePolicy::Forget),
        _ => None,
    }
}

/// The stable discriminant for `policy` ([`parse_policy`]'s second
/// component, keyed by the enum instead of the wire name). Session
/// snapshots derive their persisted header from the workspace's policy,
/// which arrives as the enum.
pub fn policy_to_disc(policy: DatatypePolicy) -> u64 {
    match policy {
        DatatypePolicy::Congruence1 => 0,
        DatatypePolicy::Congruence2 => 1,
        DatatypePolicy::Exact => 2,
        DatatypePolicy::Forget => 3,
    }
}

/// Builds the success response line for `id`, under protocol version
/// `v` (the version the request was handled under).
pub fn ok_response(v: u64, id: Json, result: Json) -> Json {
    Json::obj(vec![
        ("v", Json::num(v)),
        ("id", id),
        ("ok", Json::Bool(true)),
        ("result", result),
    ])
}

/// Builds the failure response line for `id` under protocol version `v`.
pub fn err_response(v: u64, id: Json, error: &RequestError) -> Json {
    Json::obj(vec![
        ("v", Json::num(v)),
        ("id", id),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj(vec![
                ("kind", Json::str(error.kind.as_str())),
                ("message", Json::str(error.message.clone())),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_zero_times_out_immediately() {
        let d = Deadline::new(Instant::now() - Duration::from_millis(1), Some(0));
        let err = d.check("start").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Timeout);
        assert!(err.message.contains("deadline of 0 ms"), "{}", err.message);
    }

    #[test]
    fn unlimited_deadline_never_fires() {
        let d = Deadline::new(Instant::now() - Duration::from_secs(3600), None);
        assert!(d.check("anywhere").is_ok());
    }

    #[test]
    fn response_shapes_are_canonical() {
        let ok = ok_response(
            PROTOCOL_VERSION,
            Json::num(3),
            Json::obj(vec![("x", Json::num(1))]),
        );
        assert_eq!(ok.to_line(), r#"{"v":1,"id":3,"ok":true,"result":{"x":1}}"#);
        let err = err_response(
            PROTOCOL_VERSION,
            Json::Null,
            &RequestError::new(ErrorKind::Timeout, "late"),
        );
        assert_eq!(
            err.to_line(),
            r#"{"v":1,"id":null,"ok":false,"error":{"kind":"timeout","message":"late"}}"#
        );
        let v2 = ok_response(
            PROTOCOL_VERSION_SESSION,
            Json::num(4),
            Json::obj(vec![("closed", Json::Bool(true))]),
        );
        assert_eq!(
            v2.to_line(),
            r#"{"v":2,"id":4,"ok":true,"result":{"closed":true}}"#
        );
    }

    #[test]
    fn new_error_kinds_have_stable_wire_forms() {
        assert_eq!(ErrorKind::PinnedSnapshot.as_str(), "pinned-snapshot");
        assert_eq!(ErrorKind::UnknownSession.as_str(), "unknown-session");
    }

    #[test]
    fn policy_names_map_to_stable_discriminants() {
        assert_eq!(parse_policy("c1").unwrap().1, 0);
        assert_eq!(parse_policy("c2").unwrap().1, 1);
        assert_eq!(parse_policy("exact").unwrap().1, 2);
        assert_eq!(parse_policy("forget").unwrap().1, 3);
        assert!(parse_policy("c3").is_none());
        // The persisted discriminants invert exactly.
        for name in ["c1", "c2", "exact", "forget"] {
            let (policy, disc) = parse_policy(name).unwrap();
            assert_eq!(policy_from_disc(disc), Some(policy), "{name}");
        }
        assert_eq!(policy_from_disc(4), None);
    }
}
