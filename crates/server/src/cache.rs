//! The content-addressed snapshot store.
//!
//! Every analysis the daemon serves is keyed by a digest of the exact
//! source bytes plus the build configuration (datatype policy, engine) —
//! see [`SnapshotKey`]. The store maps keys to frozen
//! [`QueryEngine`](stcfa_core::QueryEngine) snapshots shared across
//! requests via `Arc`, with three properties the protocol relies on:
//!
//! - **Build once.** Concurrent requests for the same key coalesce: the
//!   first builds, the rest wait on the build slot and share the result.
//!   A warm-cache request therefore *never* rebuilds an analysis, even
//!   under a racing burst — the differential acceptance test pins this
//!   through the `stats` counters.
//! - **Byte-accounted LRU.** Each snapshot carries an
//!   [`approx_bytes`](stcfa_core::QueryEngine::approx_bytes)-based cost;
//!   inserting past `capacity_bytes` evicts least-recently-used entries
//!   (never in-flight builds) until the store fits.
//! - **Checked staleness.** Evicted or explicitly invalidated digests are
//!   remembered as tombstones, so a client replaying an old snapshot id
//!   gets a structured *stale snapshot* error — never a silent rebuild
//!   under a different meaning, matching the
//!   [`StaleSnapshot`](stcfa_core::StaleSnapshot) discipline of the
//!   incremental layer. The tombstone set is bounded
//!   ([`TOMBSTONE_CAP`]): under long churn the oldest tombstones are
//!   forgotten, so a sufficiently ancient handle reports *unknown
//!   snapshot* instead of *stale snapshot* — memory stays bounded.
//! - **Collision-checked addressing.** The digest is 64-bit and
//!   non-cryptographic, so [`get_or_build`](SnapshotStore::get_or_build)
//!   keeps the source text in the snapshot and compares it on every hit:
//!   two distinct sources that collide produce a structured error, never
//!   one another's analysis results. (Handle lookups by bare digest via
//!   [`get`](SnapshotStore::get) carry no source to compare — they trust
//!   the digest the daemon itself issued.)

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use stcfa_core::{Analysis, AnalysisOptions, DatatypePolicy, QueryEngine};
use stcfa_devkit::hash::Fnv1a;
use stcfa_lambda::session::SessionProgram;
use stcfa_lambda::Program;
use stcfa_persist::{DecodedSnapshot, SnapshotImage};
use stcfa_precision::{PrecisionScheduler, SuspicionIndex};

use crate::proto::policy_from_disc;

/// The content address of one analysis: source digest × configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SnapshotKey(pub u64);

impl SnapshotKey {
    /// Derives the key for `source` analyzed under (`policy`, `engine`)
    /// configuration discriminants.
    pub fn derive(source: &str, policy: u64, engine: u64) -> SnapshotKey {
        SnapshotKey(Fnv1a::digest_parts(source.as_bytes(), &[policy, engine]))
    }

    /// The fixed-width hex form clients see (`%016x`).
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the hex form back into a key.
    pub fn from_hex(s: &str) -> Option<SnapshotKey> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(SnapshotKey)
    }
}

/// One cached analysis: the parsed program, the finished subtransitive
/// analysis, and the frozen query engine, shared immutably.
///
/// Snapshots loaded from the disk tier carry no [`Analysis`] — only the
/// frozen engine is persisted, since every query answers through it. The
/// analysis is rebuilt lazily (and memoized) on the first request that
/// walks it directly (`lint`); see [`Snapshot::try_analysis`].
#[derive(Debug)]
pub struct Snapshot {
    /// The parsed program.
    pub program: Program,
    /// The finished analysis, or — for disk-loaded snapshots — the slot
    /// it is lazily rebuilt into.
    analysis: OnceLock<Result<Analysis, String>>,
    /// The frozen query engine every query answers through.
    pub engine: QueryEngine,
    /// The exact source text the digest was derived from, kept to detect
    /// 64-bit digest collisions on cache hits.
    pub source: String,
    /// Wall-clock nanoseconds the build (parse + analyze + freeze) took.
    pub build_ns: u64,
    /// The datatype policy the analysis ran under (the lazy rebuild must
    /// reproduce the original configuration exactly).
    policy: DatatypePolicy,
    /// Stable content-address discriminants (policy, engine), written
    /// into the persisted header.
    policy_disc: u64,
    engine_disc: u64,
    /// Whether this snapshot's `source` is a session *manifest* rather
    /// than program text. Linked snapshots persist under the linked
    /// flavor: a disk load replays the manifest through
    /// [`SessionProgram`] — the exact path the linker took — to
    /// reconstruct an identical program arena.
    linked: bool,
    /// The degradation detector's per-component scores, computed at
    /// build time (or adopted from the persisted image) and shared with
    /// the write-behind and the scheduler. Lazily rebuilt — via the
    /// analysis — only for pre-v2 disk images that carried no scores.
    suspicion: OnceLock<Result<SuspicionIndex, String>>,
    /// The per-snapshot precision scheduler (escalation memo + budget),
    /// created on the first graded query against this snapshot.
    scheduler: OnceLock<Result<PrecisionScheduler, String>>,
}

impl Snapshot {
    /// A snapshot produced by a full build from source (persistable).
    #[allow(clippy::too_many_arguments)]
    pub fn built(
        program: Program,
        analysis: Analysis,
        engine: QueryEngine,
        source: String,
        build_ns: u64,
        policy: DatatypePolicy,
        policy_disc: u64,
        engine_disc: u64,
    ) -> Snapshot {
        let suspicion = SuspicionIndex::build(&analysis, &engine);
        Snapshot {
            program,
            analysis: OnceLock::from(Ok(analysis)),
            engine,
            source,
            build_ns,
            policy,
            policy_disc,
            engine_disc,
            linked: false,
            suspicion: OnceLock::from(Ok(suspicion)),
            scheduler: OnceLock::new(),
        }
    }

    /// A session's linked snapshot. Its `source` is the workspace
    /// manifest (not program text); it persists under the linked flavor,
    /// so `session/open` on a previously seen workspace digest warms
    /// from the disk tier instead of re-freezing.
    pub fn linked(
        program: Program,
        analysis: Analysis,
        engine: QueryEngine,
        manifest: String,
        build_ns: u64,
        policy: DatatypePolicy,
        policy_disc: u64,
    ) -> Snapshot {
        let suspicion = SuspicionIndex::build(&analysis, &engine);
        Snapshot {
            program,
            analysis: OnceLock::from(Ok(analysis)),
            engine,
            source: manifest,
            build_ns,
            policy,
            policy_disc,
            engine_disc: 0,
            linked: true,
            suspicion: OnceLock::from(Ok(suspicion)),
            scheduler: OnceLock::new(),
        }
    }

    /// Reconstructs a snapshot from a decoded disk image: re-parses the
    /// program from the stored source (deterministic, so expression ids
    /// match the engine's) and leaves the analysis to lazy rebuild. A
    /// linked image's source is a session manifest instead: the modules
    /// are replayed through [`SessionProgram`], the linker's own path,
    /// which yields the identical arena the engine was frozen from.
    fn from_disk(decoded: DecodedSnapshot) -> Result<Snapshot, String> {
        let DecodedSnapshot {
            policy: policy_disc,
            engine_disc,
            source,
            engine,
            suspicion,
            linked,
            ..
        } = decoded;
        let policy = policy_from_disc(policy_disc)
            .ok_or_else(|| format!("unknown persisted policy discriminant {policy_disc}"))?;
        let program = if linked {
            program_from_manifest(&source)?
        } else {
            Program::parse(&source)
                .map_err(|e| format!("persisted source no longer parses: {e}"))?
        };
        // The engine was frozen from *this* source (the content digest
        // pins it), so its index arrays must agree with the re-parse;
        // check the cheap shape facts rather than trust the file.
        let parts = engine.to_parts();
        if parts.expr_nodes.len() != program.size() {
            return Err(format!(
                "persisted engine indexes {} expressions, program has {}",
                parts.expr_nodes.len(),
                program.size()
            ));
        }
        if parts.label_count != program.label_count() {
            return Err(format!(
                "persisted engine carries {} labels, program has {}",
                parts.label_count,
                program.label_count()
            ));
        }
        // Adopt the persisted detector scores when they fit this engine;
        // a missing or mis-sized section (pre-v2 file) falls back to a
        // lazy rebuild through the analysis.
        let suspicion = match suspicion {
            Some(scores) if scores.len() == engine.comp_count() => {
                OnceLock::from(Ok(SuspicionIndex::from_raw(scores)))
            }
            _ => OnceLock::new(),
        };
        Ok(Snapshot {
            program,
            analysis: OnceLock::new(),
            engine,
            source,
            build_ns: 0,
            policy,
            policy_disc,
            engine_disc,
            linked,
            suspicion,
            scheduler: OnceLock::new(),
        })
    }

    /// The finished analysis, rebuilding (and memoizing) it from the
    /// parsed program for disk-loaded snapshots. The rebuild runs the
    /// same policy the snapshot was originally built under; a failure —
    /// impossible for content that analyzed once, short of a node-budget
    /// policy change — is a structured error, never a panic.
    pub fn try_analysis(&self) -> Result<&Analysis, String> {
        self.analysis
            .get_or_init(|| {
                Analysis::run_with(
                    &self.program,
                    AnalysisOptions {
                        policy: self.policy,
                        max_nodes: None,
                    },
                )
                .map_err(|e| e.to_string())
            })
            .as_ref()
            .map_err(String::clone)
    }

    /// Whether the analysis is resident right now (no lazy rebuild has
    /// been forced yet). Test/stats hook.
    pub fn analysis_resident(&self) -> bool {
        matches!(self.analysis.get(), Some(Ok(_)))
    }

    /// The datatype policy this snapshot was analyzed under.
    pub fn policy(&self) -> DatatypePolicy {
        self.policy
    }

    /// The degradation detector's index for this snapshot. Present from
    /// build time for fresh snapshots and adopted from the persisted
    /// image on disk loads; only a pre-v2 image forces the (memoized)
    /// analysis rebuild this consults the node table through.
    pub fn try_suspicion(&self) -> Result<&SuspicionIndex, String> {
        self.suspicion
            .get_or_init(|| {
                // A linked engine's node table comes from incremental
                // linking; a fresh analysis of the replayed program does
                // not reproduce it, so the detector cannot be rebuilt
                // here. Every linked image persists its scores, so this
                // only trips on a hand-truncated file.
                if self.linked {
                    return Err("persisted linked snapshot carries no detector scores; \
                         reopen the session to rebuild it"
                        .to_string());
                }
                let analysis = self.try_analysis()?;
                Ok(SuspicionIndex::build(analysis, &self.engine))
            })
            .as_ref()
            .map_err(String::clone)
    }

    /// The persisted form of the detector scores, if already computed
    /// (never forces a rebuild — the write-behind must stay cheap).
    fn suspicion_raw(&self) -> Option<&[u32]> {
        match self.suspicion.get() {
            Some(Ok(idx)) => Some(idx.as_slice()),
            _ => None,
        }
    }

    /// The precision scheduler for this snapshot, created on first use.
    /// The first caller's `budget` wins (the daemon passes its single
    /// configured `--precision-budget`, so there is no ambiguity).
    pub fn try_scheduler(&self, budget: usize) -> Result<&PrecisionScheduler, String> {
        self.scheduler
            .get_or_init(|| {
                let suspicion = self.try_suspicion()?.clone();
                Ok(PrecisionScheduler::new(suspicion, self.policy, budget))
            })
            .as_ref()
            .map_err(String::clone)
    }

    /// The byte cost this snapshot is accounted at in the store.
    pub fn cost_bytes(&self) -> usize {
        self.source.len() + self.engine.approx_bytes()
    }
}

/// Point-in-time counters of one [`SnapshotStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Requests answered from an already-built snapshot. A request that
    /// coalesces onto an in-flight build counts as a hit only once that
    /// build resolves successfully — a coalesced wait that surfaces the
    /// build error is neither hit nor miss.
    pub hits: u64,
    /// Requests that had to build a snapshot.
    pub misses: u64,
    /// Requests that waited for another request's in-flight build.
    pub coalesced: u64,
    /// Snapshots evicted by the LRU policy or explicit invalidation.
    pub evictions: u64,
    /// Total build wall-clock nanoseconds spent so far.
    pub build_ns: u64,
    /// Resident snapshots right now.
    pub entries: usize,
    /// Accounted bytes resident right now.
    pub bytes: usize,
    /// The configured capacity, in bytes.
    pub capacity_bytes: usize,
    /// Tombstones currently remembered (bounded by [`TOMBSTONE_CAP`]).
    pub tombstones: usize,
    /// Resident snapshots pinned by open sessions right now.
    pub pinned: usize,
    /// Whether a disk tier is configured.
    pub disk: bool,
    /// Misses answered by decoding a persisted snapshot instead of
    /// building (the warm-restart path). Disk hits are *not* counted in
    /// `hits` or `misses`: `misses` stays "actual builds".
    pub disk_hits: u64,
    /// Snapshots persisted to the disk tier (write-behind, after a
    /// successful build).
    pub disk_writes: u64,
    /// Persisted files that failed to load (truncation, bit rot, version
    /// skew, digest mismatch, …). Each one was deleted and the snapshot
    /// rebuilt from source — the `cache-corrupt` log line carries the
    /// structured reason.
    pub disk_corrupt: u64,
}

/// Looking up a snapshot id can fail two ways; both are structured,
/// recoverable protocol errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupError {
    /// The digest was never seen by this store.
    Unknown,
    /// The digest was cached once but has since been evicted or
    /// invalidated — the client's handle is stale.
    Stale,
}

/// Outcome of [`SnapshotStore::invalidate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invalidate {
    /// A resident entry was evicted and tombstoned.
    Evicted,
    /// Nothing was resident; a tombstone was recorded anyway.
    Absent,
    /// The entry is pinned by an open session and was left untouched —
    /// no eviction, no tombstone.
    Pinned,
}

/// A build slot other requests can wait on: filled exactly once with the
/// build result (or the build error, which waiters propagate).
struct BuildCell {
    result: Mutex<Option<Result<Arc<Snapshot>, String>>>,
    done: Condvar,
}

enum Slot {
    /// A build is in flight; waiters block on the cell.
    Building(Arc<BuildCell>),
    /// Ready to serve.
    Ready {
        snapshot: Arc<Snapshot>,
        bytes: usize,
        last_used: u64,
        /// Open-session pin count: while positive the entry is exempt
        /// from LRU eviction and refuses explicit invalidation (the
        /// `evict` op reports a structured `pinned-snapshot` error
        /// instead of tombstoning a snapshot out from under a session).
        pins: u32,
    },
}

/// Upper bound on remembered tombstones: past this, the oldest half is
/// forgotten (those digests then report `Unknown` rather than `Stale`),
/// so a long-running daemon under cache churn stays bounded.
pub const TOMBSTONE_CAP: usize = 1 << 16;

struct Inner {
    map: HashMap<u64, Slot>,
    /// Digests that were resident once and are gone now, stamped with the
    /// tick they were tombstoned at. Bounded by [`TOMBSTONE_CAP`].
    evicted: HashMap<u64, u64>,
    /// Recency clock: bumped on every touch.
    tick: u64,
    bytes: usize,
}

impl Inner {
    /// Records a tombstone for `key`, pruning the oldest half of the set
    /// when it outgrows [`TOMBSTONE_CAP`] (amortized O(1) per insert).
    fn tombstone(&mut self, key: u64) {
        self.tick += 1;
        let tick = self.tick;
        self.evicted.insert(key, tick);
        if self.evicted.len() > TOMBSTONE_CAP {
            let mut ticks: Vec<u64> = self.evicted.values().copied().collect();
            ticks.sort_unstable();
            let cutoff = ticks[ticks.len() / 2];
            self.evicted.retain(|_, t| *t >= cutoff);
        }
    }
}

/// The content-addressed, byte-accounted, build-deduplicating LRU store.
/// See the [module docs](self).
pub struct SnapshotStore {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
    /// The persistent second tier: a directory of one snapshot file per
    /// key (see `stcfa-persist`). `None` = memory-only, the historical
    /// behavior, bit for bit.
    disk: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    build_ns: AtomicU64,
    disk_hits: AtomicU64,
    disk_writes: AtomicU64,
    disk_corrupt: AtomicU64,
}

impl SnapshotStore {
    /// An empty store that evicts past `capacity_bytes` of accounted
    /// snapshot weight.
    pub fn new(capacity_bytes: usize) -> SnapshotStore {
        Self::with_disk(capacity_bytes, None)
    }

    /// Like [`SnapshotStore::new`], with an optional write-behind disk
    /// tier rooted at `disk`: misses consult the directory before
    /// building, successful builds persist into it atomically, LRU
    /// eviction *demotes* (the digest stays answerable from disk) instead
    /// of dropping, and a fresh store pointed at a populated directory
    /// warms from it. The directory is created on first write.
    pub fn with_disk(capacity_bytes: usize, disk: Option<PathBuf>) -> SnapshotStore {
        SnapshotStore {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                evicted: HashMap::new(),
                tick: 0,
                bytes: 0,
            }),
            capacity_bytes,
            disk,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            build_ns: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
            disk_corrupt: AtomicU64::new(0),
        }
    }

    /// The snapshot for `key`, building it with `build` on a miss. The
    /// build runs outside the store lock; concurrent requests for the same
    /// key wait for the in-flight build instead of re-running it. Returns
    /// the snapshot and whether this call was a cache hit.
    ///
    /// `source` must be the exact text `key` was derived from: every hit
    /// compares it against the cached snapshot's source, so a 64-bit
    /// digest collision between distinct sources surfaces as an error
    /// instead of silently serving the wrong analysis.
    pub fn get_or_build(
        &self,
        key: SnapshotKey,
        source: &str,
        build: impl FnOnce() -> Result<Snapshot, String>,
    ) -> Result<(Arc<Snapshot>, bool), String> {
        let cell = {
            let mut inner = self.inner.lock().expect("store lock poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            match inner.map.get_mut(&key.0) {
                Some(Slot::Ready {
                    snapshot,
                    last_used,
                    ..
                }) => {
                    verify_source(key, snapshot, source)?;
                    *last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(snapshot), true));
                }
                Some(Slot::Building(cell)) => {
                    // Another request is building this key: wait outside
                    // the store lock. Counted as a hit only if the build
                    // succeeds (below) — a propagated build error is
                    // neither hit nor miss.
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    Some(Arc::clone(cell))
                }
                None => {
                    let cell = Arc::new(BuildCell {
                        result: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    inner.map.insert(key.0, Slot::Building(Arc::clone(&cell)));
                    inner.evicted.remove(&key.0);
                    None
                }
            }
        };

        if let Some(cell) = cell {
            let mut slot = cell.result.lock().expect("build cell poisoned");
            while slot.is_none() {
                slot = cell.done.wait(slot).expect("build cell poisoned");
            }
            return match slot.as_ref().expect("loop ensures Some") {
                Ok(snapshot) => {
                    verify_source(key, snapshot, source)?;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Ok((Arc::clone(snapshot), true))
                }
                Err(e) => Err(e.clone()),
            };
        }

        // This request owns the build slot. Probe the disk tier first,
        // then build; both run without holding any lock. A disk hit is
        // not a miss (`misses` keeps meaning "actual builds") and not a
        // memory hit — it counts under `disk_hits`.
        let (built, from_disk) = match self.load_from_disk(key, Some(source)) {
            Err(collision) => (Err(collision), false),
            Ok(Some(snapshot)) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                (Ok(snapshot), true)
            }
            Ok(None) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let started = Instant::now();
                let built = build().map(Arc::new);
                let elapsed = started.elapsed().as_nanos() as u64;
                self.build_ns.fetch_add(elapsed, Ordering::Relaxed);
                (built, false)
            }
        };

        let mut inner = self.inner.lock().expect("store lock poisoned");
        let Some(Slot::Building(cell)) = inner.map.get(&key.0) else {
            unreachable!("build slot owned by this request disappeared");
        };
        let cell = Arc::clone(cell);
        match &built {
            Ok(snapshot) => {
                let bytes = snapshot.cost_bytes();
                inner.tick += 1;
                let tick = inner.tick;
                inner.map.insert(
                    key.0,
                    Slot::Ready {
                        snapshot: Arc::clone(snapshot),
                        bytes,
                        last_used: tick,
                        pins: 0,
                    },
                );
                inner.bytes += bytes;
                self.evict_to_capacity(&mut inner, key.0);
            }
            Err(_) => {
                // Failed builds leave no residue (and no tombstone: the
                // key was never resident, so a retry is a fresh miss).
                inner.map.remove(&key.0);
            }
        }
        drop(inner);

        let to_waiters = match &built {
            Ok(snapshot) => Ok(Arc::clone(snapshot)),
            Err(e) => Err(e.clone()),
        };
        *cell.result.lock().expect("build cell poisoned") = Some(to_waiters);
        cell.done.notify_all();

        // Write-behind: persist a freshly built snapshot after waiters
        // have been released — persistence latency never blocks requests.
        if let Ok(snapshot) = &built {
            if !from_disk {
                self.persist(key, snapshot);
            }
        }

        // A disk hit reports `cached: true`: the caller skipped the build.
        built.map(|snapshot| (snapshot, from_disk))
    }

    /// Probes the disk tier for `key`. `Ok(None)` is a plain miss —
    /// including every corruption case, which is counted, logged with its
    /// structured reason, and the offending file deleted so the rebuild's
    /// write-behind replaces it. `Err` is a detected 64-bit digest
    /// collision (the persisted source differs from the request's), the
    /// same structured refusal the memory tier gives.
    fn load_from_disk(
        &self,
        key: SnapshotKey,
        source: Option<&str>,
    ) -> Result<Option<Arc<Snapshot>>, String> {
        let Some(dir) = &self.disk else {
            return Ok(None);
        };
        let decoded = match stcfa_persist::load(dir, key.0) {
            Ok(None) => return Ok(None),
            Ok(Some(decoded)) => decoded,
            Err(e) => {
                self.note_disk_corrupt(key, dir, e.kind(), &e.to_string());
                return Ok(None);
            }
        };
        if decoded.digest != key.0 {
            // The file's (self-consistent) header belongs to some other
            // key: it was renamed or copied over the wrong address. This
            // is corruption (rebuild), not a collision — the collision
            // refusal below only applies to a file that really carries
            // this digest.
            let msg = format!("file claims digest {:016x}", decoded.digest);
            self.note_disk_corrupt(key, dir, "digest-mismatch", &msg);
            return Ok(None);
        }
        if let Some(source) = source {
            if decoded.source != source {
                return Err(format!(
                    "digest collision on {}: a different source is persisted under \
                     this key; analysis refused to avoid serving wrong results",
                    key.hex()
                ));
            }
        }
        match Snapshot::from_disk(decoded) {
            Ok(snapshot) => Ok(Some(Arc::new(snapshot))),
            Err(e) => {
                self.note_disk_corrupt(key, dir, "malformed", &e);
                Ok(None)
            }
        }
    }

    /// Counts, logs and deletes one corrupt cache file. The log line is
    /// structured (`cache-corrupt digest=… kind=… action=rebuild`) so
    /// operators can grep restarts for decay.
    fn note_disk_corrupt(&self, key: SnapshotKey, dir: &std::path::Path, kind: &str, msg: &str) {
        self.disk_corrupt.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "stcfa-server: cache-corrupt digest={} kind={kind} action=rebuild: {msg}",
            key.hex()
        );
        let _ = stcfa_persist::remove(dir, key.0);
    }

    /// Write-behind persistence of a successful build. Failures are
    /// logged, not surfaced: the request was already answered from
    /// memory, and the next restart simply rebuilds.
    fn persist(&self, key: SnapshotKey, snapshot: &Snapshot) {
        let Some(dir) = &self.disk else { return };
        let bytes = stcfa_persist::encode(&SnapshotImage {
            digest: key.0,
            policy: snapshot.policy_disc,
            engine_disc: snapshot.engine_disc,
            source: &snapshot.source,
            engine: &snapshot.engine,
            suspicion: snapshot.suspicion_raw(),
            linked: snapshot.linked,
        });
        match stcfa_persist::save_atomic(dir, key.0, &bytes) {
            Ok(_) => {
                self.disk_writes.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                eprintln!(
                    "stcfa-server: cache-persist-failed digest={} action=skip: {e}",
                    key.hex()
                );
            }
        }
    }

    /// Evicts least-recently-used Ready entries until the accounted bytes
    /// fit the capacity. `keep` (the entry just inserted) survives even if
    /// it alone exceeds capacity, so oversized programs still get served.
    ///
    /// With a disk tier, eviction is a *demotion*: no tombstone is
    /// recorded, because the digest stays answerable — a later lookup
    /// re-promotes it from its file instead of reporting a stale handle.
    fn evict_to_capacity(&self, inner: &mut Inner, keep: u64) {
        while inner.bytes > self.capacity_bytes {
            let victim = inner
                .map
                .iter()
                .filter_map(|(&k, slot)| match slot {
                    Slot::Ready {
                        last_used, pins, ..
                    } if k != keep && *pins == 0 => Some((*last_used, k)),
                    _ => None,
                })
                .min()
                .map(|(_, k)| k);
            let Some(victim) = victim else { break };
            if let Some(Slot::Ready { bytes, .. }) = inner.map.remove(&victim) {
                inner.bytes -= bytes;
                // With a disk tier every snapshot (linked included) is
                // persistable, so eviction is always a demotion there.
                if self.disk.is_none() {
                    inner.tombstone(victim);
                }
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Looks up an already-built snapshot by digest (no build). Touches
    /// the LRU clock on success.
    ///
    /// With a disk tier, a handle that is not resident in memory is
    /// probed on disk before being declared unknown or stale: a restarted
    /// daemon (or one that demoted the entry under LRU pressure) serves
    /// the client's old handle by re-promoting the persisted snapshot.
    /// Handle lookups carry no source text, so no collision check applies
    /// — but the decoder's content-digest verification guarantees the
    /// loaded source really does hash to the digest the daemon issued.
    pub fn get(&self, key: SnapshotKey) -> Result<Arc<Snapshot>, LookupError> {
        {
            let mut inner = self.inner.lock().expect("store lock poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(Slot::Ready {
                snapshot,
                last_used,
                ..
            }) = inner.map.get_mut(&key.0)
            {
                *last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(snapshot));
            }
        }
        // Not resident: probe the disk tier outside the lock.
        if let Ok(Some(snapshot)) = self.load_from_disk(key, None) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            let mut inner = self.inner.lock().expect("store lock poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            match inner.map.get_mut(&key.0) {
                // Raced with a concurrent insert: serve the resident copy.
                Some(Slot::Ready {
                    snapshot,
                    last_used,
                    ..
                }) => {
                    *last_used = tick;
                    return Ok(Arc::clone(snapshot));
                }
                // A build is in flight; hand out the loaded snapshot
                // without disturbing the slot (the completion path
                // pattern-matches on Building and must find it).
                Some(Slot::Building(_)) => return Ok(snapshot),
                None => {
                    let bytes = snapshot.cost_bytes();
                    inner.map.insert(
                        key.0,
                        Slot::Ready {
                            snapshot: Arc::clone(&snapshot),
                            bytes,
                            last_used: tick,
                            pins: 0,
                        },
                    );
                    inner.bytes += bytes;
                    inner.evicted.remove(&key.0);
                    self.evict_to_capacity(&mut inner, key.0);
                    return Ok(snapshot);
                }
            }
        }
        let inner = self.inner.lock().expect("store lock poisoned");
        if inner.evicted.contains_key(&key.0) {
            Err(LookupError::Stale)
        } else {
            Err(LookupError::Unknown)
        }
    }

    /// Explicitly invalidates a snapshot (the protocol's `evict` op).
    /// Pinned entries refuse invalidation — see [`Invalidate::Pinned`].
    /// After [`Invalidate::Evicted`] or [`Invalidate::Absent`], later
    /// lookups of the digest report [`LookupError::Stale`].
    ///
    /// Unlike LRU demotion, explicit invalidation reaches the disk tier
    /// too: the persisted file is deleted, so the digest cannot quietly
    /// re-promote after the client was told its handle is gone.
    pub fn invalidate(&self, key: SnapshotKey) -> Invalidate {
        let mut inner = self.inner.lock().expect("store lock poisoned");
        let outcome = match inner.map.get(&key.0) {
            Some(Slot::Ready { pins, .. }) if *pins > 0 => return Invalidate::Pinned,
            Some(Slot::Ready { .. }) => {
                if let Some(Slot::Ready { bytes, .. }) = inner.map.remove(&key.0) {
                    inner.bytes -= bytes;
                }
                inner.tombstone(key.0);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                Invalidate::Evicted
            }
            // In-flight builds finish and insert; invalidating a digest
            // that is mid-build or absent just records the tombstone.
            _ => {
                inner.tombstone(key.0);
                Invalidate::Absent
            }
        };
        drop(inner);
        if let Some(dir) = &self.disk {
            let _ = stcfa_persist::remove(dir, key.0);
        }
        outcome
    }

    /// Pins the resident entry for `key`: while pinned it is exempt from
    /// LRU eviction and refuses [`SnapshotStore::invalidate`]. Pins
    /// stack (two sessions sharing one digest pin it twice). Returns
    /// `false` if nothing is resident under `key` — the caller must
    /// rebuild and retry.
    pub fn pin(&self, key: SnapshotKey) -> bool {
        let mut inner = self.inner.lock().expect("store lock poisoned");
        match inner.map.get_mut(&key.0) {
            Some(Slot::Ready { pins, .. }) => {
                *pins += 1;
                true
            }
            _ => false,
        }
    }

    /// Releases one pin on `key` (session close or re-link). The entry
    /// stays resident and re-enters normal LRU accounting once its pin
    /// count drops to zero.
    pub fn unpin(&self, key: SnapshotKey) {
        let mut inner = self.inner.lock().expect("store lock poisoned");
        if let Some(Slot::Ready { pins, .. }) = inner.map.get_mut(&key.0) {
            *pins = pins.saturating_sub(1);
        }
    }

    /// A point-in-time snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("store lock poisoned");
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            build_ns: self.build_ns.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.bytes,
            capacity_bytes: self.capacity_bytes,
            tombstones: inner.evicted.len(),
            pinned: inner
                .map
                .values()
                .filter(|slot| matches!(slot, Slot::Ready { pins, .. } if *pins > 0))
                .count(),
            disk: self.disk.is_some(),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            disk_corrupt: self.disk_corrupt.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` over every resident snapshot (stats aggregation).
    pub fn for_each_resident(&self, mut f: impl FnMut(&Snapshot)) {
        let inner = self.inner.lock().expect("store lock poisoned");
        for slot in inner.map.values() {
            if let Slot::Ready { snapshot, .. } = slot {
                f(snapshot);
            }
        }
    }

    /// Tombstones currently remembered (bounded-growth test hook).
    #[cfg(test)]
    fn tombstone_count(&self) -> usize {
        self.inner
            .lock()
            .expect("store lock poisoned")
            .evicted
            .len()
    }
}

/// Replays a persisted session manifest (`"session\0"` then one
/// `name\x01source\x02` entry per module, in link order) through
/// [`SessionProgram::define`] — the linker's own growth path — so the
/// reconstructed arena is expression-for-expression identical to the one
/// the persisted engine was frozen from.
fn program_from_manifest(manifest: &str) -> Result<Program, String> {
    let rest = manifest
        .strip_prefix("session\u{0}")
        .ok_or_else(|| "linked snapshot carries no session manifest".to_string())?;
    let mut session = SessionProgram::new();
    for entry in rest.split_terminator('\u{2}') {
        let (name, source) = entry
            .split_once('\u{1}')
            .ok_or_else(|| "malformed session manifest entry".to_string())?;
        session
            .define(source)
            .map_err(|e| format!("persisted module `{name}` no longer parses: {e}"))?;
    }
    Ok(session.program().clone())
}

/// Rejects a hit whose cached source differs from the request's: a 64-bit
/// digest collision, surfaced as an error rather than a wrong answer.
fn verify_source(key: SnapshotKey, snapshot: &Snapshot, source: &str) -> Result<(), String> {
    if snapshot.source != source {
        return Err(format!(
            "digest collision on {}: a different source is cached under this key; \
             analysis refused to avoid serving wrong results",
            key.hex()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(source: &str) -> Result<Snapshot, String> {
        let program = Program::parse(source).map_err(|e| e.to_string())?;
        let analysis = Analysis::run(&program).map_err(|e| e.to_string())?;
        let engine = QueryEngine::freeze(&analysis);
        engine.prepare();
        Ok(Snapshot::built(
            program,
            analysis,
            engine,
            source.to_owned(),
            0,
            DatatypePolicy::default(),
            0,
            0,
        ))
    }

    const SRC_A: &str = "(fn x => x) (fn y => y)";
    const SRC_B: &str = "fun id x = x; id (fn u => u)";

    #[test]
    fn second_request_is_a_hit_and_shares_the_arc() {
        let store = SnapshotStore::new(usize::MAX);
        let key = SnapshotKey::derive(SRC_A, 0, 0);
        let (first, hit1) = store.get_or_build(key, SRC_A, || build(SRC_A)).unwrap();
        let (second, hit2) = store
            .get_or_build(key, SRC_A, || panic!("must not rebuild"))
            .unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn key_derivation_separates_content_and_config() {
        let k = SnapshotKey::derive(SRC_A, 0, 0);
        assert_ne!(k, SnapshotKey::derive(SRC_B, 0, 0));
        assert_ne!(k, SnapshotKey::derive(SRC_A, 1, 0));
        assert_ne!(k, SnapshotKey::derive(SRC_A, 0, 1));
        assert_eq!(SnapshotKey::from_hex(&k.hex()), Some(k));
        assert_eq!(SnapshotKey::from_hex("xyz"), None);
    }

    #[test]
    fn lru_evicts_by_bytes_and_reports_stale() {
        // Capacity fits either snapshot but not both: inserting the second
        // evicts the least recently used first.
        let cost_a = build(SRC_A).unwrap().cost_bytes();
        let cost_b = build(SRC_B).unwrap().cost_bytes();
        let store = SnapshotStore::new(cost_a + cost_b - 1);
        let ka = SnapshotKey::derive(SRC_A, 0, 0);
        let kb = SnapshotKey::derive(SRC_B, 0, 0);
        store.get_or_build(ka, SRC_A, || build(SRC_A)).unwrap();
        store.get_or_build(kb, SRC_B, || build(SRC_B)).unwrap();
        let s = store.stats();
        assert_eq!(s.evictions, 1, "{s:?}");
        assert!(s.bytes <= s.capacity_bytes, "{s:?}");
        assert_eq!(store.get(ka).unwrap_err(), LookupError::Stale);
        assert!(store.get(kb).is_ok());
        assert_eq!(
            store
                .get(SnapshotKey::derive("never seen", 0, 0))
                .unwrap_err(),
            LookupError::Unknown
        );
    }

    #[test]
    fn recently_used_entries_survive_eviction() {
        const SRC_C: &str = "(fn p => p p) (fn q => q)";
        // Capacity fits any two snapshots but not all three.
        let cost_a = build(SRC_A).unwrap().cost_bytes();
        let cost_b = build(SRC_B).unwrap().cost_bytes();
        let cost_c = build(SRC_C).unwrap().cost_bytes();
        let store = SnapshotStore::new(cost_a + cost_b + cost_c - 1);
        let ka = SnapshotKey::derive(SRC_A, 0, 0);
        let kb = SnapshotKey::derive(SRC_B, 0, 0);
        let kc = SnapshotKey::derive(SRC_C, 0, 0);
        store.get_or_build(ka, SRC_A, || build(SRC_A)).unwrap();
        store.get_or_build(kb, SRC_B, || build(SRC_B)).unwrap();
        // Touch A so B is now the least recently used.
        store.get(ka).unwrap();
        store.get_or_build(kc, SRC_C, || build(SRC_C)).unwrap();
        assert!(store.get(ka).is_ok(), "recently touched entry evicted");
        assert_eq!(store.get(kb).unwrap_err(), LookupError::Stale);
    }

    #[test]
    fn build_errors_propagate_and_leave_no_residue() {
        let store = SnapshotStore::new(usize::MAX);
        let key = SnapshotKey::derive("fn x =>", 0, 0);
        assert!(store
            .get_or_build(key, "fn x =>", || build("fn x =>"))
            .is_err());
        assert_eq!(store.stats().entries, 0);
        // A retry is a fresh miss, not a stale handle.
        assert_eq!(store.get(key).unwrap_err(), LookupError::Unknown);
        assert!(store.get_or_build(key, SRC_A, || build(SRC_A)).is_ok());
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        use std::sync::atomic::AtomicUsize;
        let store = SnapshotStore::new(usize::MAX);
        let key = SnapshotKey::derive(SRC_B, 0, 0);
        let builds = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (snap, _) = store
                        .get_or_build(key, SRC_B, || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            build(SRC_B)
                        })
                        .unwrap();
                    assert!(snap.engine.node_count() > 0);
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "coalescing failed");
        let s = store.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn coalesced_wait_on_a_failing_build_is_not_a_hit() {
        use std::time::Duration;
        let store = SnapshotStore::new(usize::MAX);
        const BAD: &str = "fn x =>";
        let key = SnapshotKey::derive(BAD, 0, 0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let r = store.get_or_build(key, BAD, || {
                    // Hold the build open until the other request has
                    // coalesced onto it, then fail (parse error).
                    while store.stats().coalesced == 0 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    build(BAD)
                });
                assert!(r.is_err());
            });
            // The Building slot exists once the miss is counted.
            while store.stats().misses == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            let r = store.get_or_build(key, BAD, || panic!("must coalesce"));
            assert!(r.is_err());
        });
        let s = store.stats();
        assert_eq!(
            (s.hits, s.misses, s.coalesced),
            (0, 1, 1),
            "a coalesced wait that surfaces the build error must not count as a hit"
        );
    }

    #[test]
    fn digest_collision_is_an_error_not_a_wrong_answer() {
        let store = SnapshotStore::new(usize::MAX);
        // Simulate an FNV collision: two distinct sources under one key.
        let key = SnapshotKey::derive(SRC_A, 0, 0);
        store.get_or_build(key, SRC_A, || build(SRC_A)).unwrap();
        let err = store
            .get_or_build(key, SRC_B, || panic!("collision must not rebuild"))
            .unwrap_err();
        assert!(err.contains("digest collision"), "{err}");
        // The honest source still hits.
        let (_, hit) = store.get_or_build(key, SRC_A, || build(SRC_A)).unwrap();
        assert!(hit);
    }

    #[test]
    fn tombstone_set_stays_bounded_under_churn() {
        let store = SnapshotStore::new(usize::MAX);
        // Invalidating an absent digest records a tombstone; churn through
        // more distinct digests than the cap allows.
        for i in 0..(TOMBSTONE_CAP as u64 + 2) {
            store.invalidate(SnapshotKey(i));
        }
        assert!(store.tombstone_count() <= TOMBSTONE_CAP);
        // Recent tombstones are still checked; the oldest were forgotten.
        assert_eq!(
            store
                .get(SnapshotKey(TOMBSTONE_CAP as u64 + 1))
                .unwrap_err(),
            LookupError::Stale
        );
        assert_eq!(store.get(SnapshotKey(0)).unwrap_err(), LookupError::Unknown);
    }

    #[test]
    fn invalidate_is_the_cache_invalidation_path() {
        let store = SnapshotStore::new(usize::MAX);
        let key = SnapshotKey::derive(SRC_A, 0, 0);
        store.get_or_build(key, SRC_A, || build(SRC_A)).unwrap();
        assert_eq!(store.invalidate(key), Invalidate::Evicted);
        assert_eq!(store.get(key).unwrap_err(), LookupError::Stale);
        assert_eq!(
            store.invalidate(key),
            Invalidate::Absent,
            "second invalidation is a no-op"
        );
        // Re-analyzing the same content rebuilds and clears the tombstone.
        let (_, hit) = store.get_or_build(key, SRC_A, || build(SRC_A)).unwrap();
        assert!(!hit);
        assert!(store.get(key).is_ok());
    }

    #[test]
    fn pinned_entries_refuse_invalidation_until_unpinned() {
        let store = SnapshotStore::new(usize::MAX);
        let key = SnapshotKey::derive(SRC_A, 0, 0);
        assert!(!store.pin(key), "nothing resident to pin yet");
        store.get_or_build(key, SRC_A, || build(SRC_A)).unwrap();
        assert!(store.pin(key));
        assert!(store.pin(key), "pins stack");
        assert_eq!(store.stats().pinned, 1);
        assert_eq!(store.invalidate(key), Invalidate::Pinned);
        assert!(store.get(key).is_ok(), "pinned entry must stay resident");
        store.unpin(key);
        assert_eq!(store.invalidate(key), Invalidate::Pinned, "one pin left");
        store.unpin(key);
        assert_eq!(store.stats().pinned, 0);
        assert_eq!(store.invalidate(key), Invalidate::Evicted);
        assert_eq!(store.get(key).unwrap_err(), LookupError::Stale);
    }

    /// A unique temp directory for one disk-tier test.
    fn disk_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stcfa-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_tier_persists_builds_and_warms_a_fresh_store() {
        let dir = disk_dir("warm");
        let key = SnapshotKey::derive(SRC_A, 0, 0);
        let cold_sets = {
            let store = SnapshotStore::with_disk(usize::MAX, Some(dir.clone()));
            let (snap, cached) = store.get_or_build(key, SRC_A, || build(SRC_A)).unwrap();
            assert!(!cached);
            let s = store.stats();
            assert!(s.disk);
            assert_eq!((s.misses, s.disk_writes, s.disk_hits), (1, 1, 0), "{s:?}");
            assert!(
                dir.join(stcfa_persist::file_name(key.0)).exists(),
                "write-behind file missing"
            );
            snap.engine.all_label_sets()
        };
        // A fresh store over the same directory — the restarted daemon —
        // serves the digest without building.
        let store = SnapshotStore::with_disk(usize::MAX, Some(dir.clone()));
        let (snap, cached) = store
            .get_or_build(key, SRC_A, || panic!("warm restart must not rebuild"))
            .unwrap();
        assert!(cached, "a disk hit reports cached");
        assert_eq!(snap.engine.all_label_sets(), cold_sets);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.disk_hits), (0, 0, 1), "{s:?}");
        // In-memory now: the next request is a plain memory hit.
        let (_, cached) = store
            .get_or_build(key, SRC_A, || panic!("resident"))
            .unwrap();
        assert!(cached);
        assert_eq!(store.stats().hits, 1);
        // A colliding source against the persisted file is refused, like
        // the memory tier's collision check.
        let fresh = SnapshotStore::with_disk(usize::MAX, Some(dir.clone()));
        let err = fresh
            .get_or_build(key, SRC_B, || panic!("collision must not rebuild"))
            .unwrap_err();
        assert!(err.contains("digest collision"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_loaded_snapshots_rebuild_their_analysis_lazily() {
        let dir = disk_dir("lazy");
        let key = SnapshotKey::derive(SRC_B, 0, 0);
        SnapshotStore::with_disk(usize::MAX, Some(dir.clone()))
            .get_or_build(key, SRC_B, || build(SRC_B))
            .unwrap();
        let store = SnapshotStore::with_disk(usize::MAX, Some(dir.clone()));
        let (snap, _) = store
            .get_or_build(key, SRC_B, || panic!("must load from disk"))
            .unwrap();
        assert!(
            !snap.analysis_resident(),
            "disk load must not rebuild the analysis eagerly"
        );
        let analysis = snap.try_analysis().expect("lazy rebuild succeeds");
        assert_eq!(analysis.labels_of(snap.program.root()).len(), 1);
        assert!(snap.analysis_resident());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_files_fall_back_to_a_clean_rebuild() {
        use std::sync::atomic::AtomicUsize;
        let dir = disk_dir("corrupt");
        let key = SnapshotKey::derive(SRC_A, 0, 0);
        SnapshotStore::with_disk(usize::MAX, Some(dir.clone()))
            .get_or_build(key, SRC_A, || build(SRC_A))
            .unwrap();
        let path = dir.join(stcfa_persist::file_name(key.0));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        // The poisoned file is detected, counted, deleted and rebuilt —
        // and the rebuild's answers match a from-scratch build.
        let store = SnapshotStore::with_disk(usize::MAX, Some(dir.clone()));
        let builds = AtomicUsize::new(0);
        let (snap, cached) = store
            .get_or_build(key, SRC_A, || {
                builds.fetch_add(1, Ordering::SeqCst);
                build(SRC_A)
            })
            .unwrap();
        assert!(!cached);
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        let s = store.stats();
        assert_eq!((s.misses, s.disk_hits, s.disk_corrupt), (1, 0, 1), "{s:?}");
        assert_eq!(
            snap.engine.all_label_sets(),
            build(SRC_A).unwrap().engine.all_label_sets()
        );
        // The write-behind of the rebuild replaced the poisoned file: the
        // next fresh store warms cleanly.
        assert_eq!(s.disk_writes, 1, "{s:?}");
        let warm = SnapshotStore::with_disk(usize::MAX, Some(dir.clone()));
        let (_, cached) = warm
            .get_or_build(key, SRC_A, || panic!("replaced file must load"))
            .unwrap();
        assert!(cached);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_demotes_to_disk_and_handles_repromote() {
        let cost_a = build(SRC_A).unwrap().cost_bytes();
        let cost_b = build(SRC_B).unwrap().cost_bytes();
        let dir = disk_dir("demote");
        let store = SnapshotStore::with_disk(cost_a + cost_b - 1, Some(dir.clone()));
        let ka = SnapshotKey::derive(SRC_A, 0, 0);
        let kb = SnapshotKey::derive(SRC_B, 0, 0);
        store.get_or_build(ka, SRC_A, || build(SRC_A)).unwrap();
        store.get_or_build(kb, SRC_B, || build(SRC_B)).unwrap();
        let s = store.stats();
        assert_eq!(s.evictions, 1, "{s:?}");
        assert_eq!(
            s.tombstones, 0,
            "a demotion must not tombstone: the digest is still answerable"
        );
        // The old handle still resolves — promoted back off disk, not
        // reported stale as the memory-only store would.
        let snap = store.get(ka).expect("demoted handle must re-promote");
        assert_eq!(snap.source, SRC_A);
        assert_eq!(store.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_invalidation_reaches_the_disk_tier() {
        let dir = disk_dir("invalidate");
        let key = SnapshotKey::derive(SRC_A, 0, 0);
        let store = SnapshotStore::with_disk(usize::MAX, Some(dir.clone()));
        store.get_or_build(key, SRC_A, || build(SRC_A)).unwrap();
        let path = dir.join(stcfa_persist::file_name(key.0));
        assert!(path.exists());
        assert_eq!(store.invalidate(key), Invalidate::Evicted);
        assert!(!path.exists(), "invalidate must delete the persisted file");
        assert_eq!(
            store.get(key).unwrap_err(),
            LookupError::Stale,
            "an invalidated digest must not quietly re-promote"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn build_linked(manifest: &str) -> Snapshot {
        // Replay the manifest exactly the way a disk load would, so the
        // persisted engine indexes the arena the replay reconstructs.
        let program = super::program_from_manifest(manifest).unwrap();
        let analysis = Analysis::run(&program).unwrap();
        let engine = QueryEngine::freeze(&analysis);
        engine.prepare();
        Snapshot::linked(
            program,
            analysis,
            engine,
            manifest.to_owned(),
            0,
            DatatypePolicy::default(),
            0,
        )
    }

    #[test]
    fn linked_snapshots_persist_and_warm_reload() {
        let dir = disk_dir("linked");
        let manifest = "session\u{0}lib\u{1}val id = fn x => x\u{2}\
                        main\u{1}id (fn y => y)\u{2}";
        let key = SnapshotKey::derive(manifest, 0, 0);
        let cold_sets = {
            let store = SnapshotStore::with_disk(usize::MAX, Some(dir.clone()));
            let (snap, cached) = store
                .get_or_build(key, manifest, || Ok(build_linked(manifest)))
                .unwrap();
            assert!(!cached);
            let s = store.stats();
            assert_eq!((s.misses, s.disk_writes), (1, 1), "{s:?}");
            assert!(
                dir.join(stcfa_persist::file_name(key.0)).exists(),
                "linked snapshots must persist under the linked flavor"
            );
            snap.engine.all_label_sets()
        };
        // A fresh store — the restarted daemon — serves the session
        // digest without re-linking or re-freezing anything.
        let store = SnapshotStore::with_disk(usize::MAX, Some(dir.clone()));
        let (snap, cached) = store
            .get_or_build(key, manifest, || panic!("warm reopen must not rebuild"))
            .unwrap();
        assert!(cached, "a disk hit reports cached");
        assert_eq!(snap.source, manifest);
        assert_eq!(snap.engine.all_label_sets(), cold_sets);
        // The detector scores rode along: no analysis rebuild is needed
        // to grade queries against the reloaded snapshot.
        assert!(!snap.analysis_resident());
        snap.try_suspicion().expect("persisted scores adopted");
        assert!(!snap.analysis_resident(), "scores must come from the file");
        let s = store.stats();
        assert_eq!((s.misses, s.disk_hits), (0, 1), "{s:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_entries_survive_lru_pressure() {
        const SRC_C: &str = "(fn p => p p) (fn q => q)";
        let cost_a = build(SRC_A).unwrap().cost_bytes();
        let cost_b = build(SRC_B).unwrap().cost_bytes();
        // Capacity fits A plus one other snapshot, never all three.
        let store = SnapshotStore::new(cost_a + cost_b);
        let ka = SnapshotKey::derive(SRC_A, 0, 0);
        let kb = SnapshotKey::derive(SRC_B, 0, 0);
        let kc = SnapshotKey::derive(SRC_C, 0, 0);
        store.get_or_build(ka, SRC_A, || build(SRC_A)).unwrap();
        assert!(store.pin(ka));
        store.get_or_build(kb, SRC_B, || build(SRC_B)).unwrap();
        store.get_or_build(kc, SRC_C, || build(SRC_C)).unwrap();
        // A is the least recently used but pinned: B pays instead.
        assert!(store.get(ka).is_ok(), "pinned LRU entry was evicted");
        assert_eq!(store.get(kb).unwrap_err(), LookupError::Stale);
        // Tombstone count is visible in the stats.
        assert!(store.stats().tombstones >= 1);
    }
}
