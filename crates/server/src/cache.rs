//! The content-addressed snapshot store.
//!
//! Every analysis the daemon serves is keyed by a digest of the exact
//! source bytes plus the build configuration (datatype policy, engine) —
//! see [`SnapshotKey`]. The store maps keys to frozen
//! [`QueryEngine`](stcfa_core::QueryEngine) snapshots shared across
//! requests via `Arc`, with three properties the protocol relies on:
//!
//! - **Build once.** Concurrent requests for the same key coalesce: the
//!   first builds, the rest wait on the build slot and share the result.
//!   A warm-cache request therefore *never* rebuilds an analysis, even
//!   under a racing burst — the differential acceptance test pins this
//!   through the `stats` counters.
//! - **Byte-accounted LRU.** Each snapshot carries an
//!   [`approx_bytes`](stcfa_core::QueryEngine::approx_bytes)-based cost;
//!   inserting past `capacity_bytes` evicts least-recently-used entries
//!   (never in-flight builds) until the store fits.
//! - **Checked staleness.** Evicted or explicitly invalidated digests are
//!   remembered as tombstones, so a client replaying an old snapshot id
//!   gets a structured *stale snapshot* error — never a silent rebuild
//!   under a different meaning, matching the
//!   [`StaleSnapshot`](stcfa_core::StaleSnapshot) discipline of the
//!   incremental layer. The tombstone set is bounded
//!   ([`TOMBSTONE_CAP`]): under long churn the oldest tombstones are
//!   forgotten, so a sufficiently ancient handle reports *unknown
//!   snapshot* instead of *stale snapshot* — memory stays bounded.
//! - **Collision-checked addressing.** The digest is 64-bit and
//!   non-cryptographic, so [`get_or_build`](SnapshotStore::get_or_build)
//!   keeps the source text in the snapshot and compares it on every hit:
//!   two distinct sources that collide produce a structured error, never
//!   one another's analysis results. (Handle lookups by bare digest via
//!   [`get`](SnapshotStore::get) carry no source to compare — they trust
//!   the digest the daemon itself issued.)

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use stcfa_core::{Analysis, QueryEngine};
use stcfa_devkit::hash::Fnv1a;
use stcfa_lambda::Program;

/// The content address of one analysis: source digest × configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SnapshotKey(pub u64);

impl SnapshotKey {
    /// Derives the key for `source` analyzed under (`policy`, `engine`)
    /// configuration discriminants.
    pub fn derive(source: &str, policy: u64, engine: u64) -> SnapshotKey {
        SnapshotKey(Fnv1a::digest_parts(source.as_bytes(), &[policy, engine]))
    }

    /// The fixed-width hex form clients see (`%016x`).
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the hex form back into a key.
    pub fn from_hex(s: &str) -> Option<SnapshotKey> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(SnapshotKey)
    }
}

/// One cached analysis: the parsed program, the finished subtransitive
/// analysis, and the frozen query engine, shared immutably.
#[derive(Debug)]
pub struct Snapshot {
    /// The parsed program.
    pub program: Program,
    /// The finished analysis (the lint engine walks it directly).
    pub analysis: Analysis,
    /// The frozen query engine every query answers through.
    pub engine: QueryEngine,
    /// The exact source text the digest was derived from, kept to detect
    /// 64-bit digest collisions on cache hits.
    pub source: String,
    /// Wall-clock nanoseconds the build (parse + analyze + freeze) took.
    pub build_ns: u64,
}

impl Snapshot {
    /// The byte cost this snapshot is accounted at in the store.
    pub fn cost_bytes(&self) -> usize {
        self.source.len() + self.engine.approx_bytes()
    }
}

/// Point-in-time counters of one [`SnapshotStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Requests answered from an already-built snapshot. A request that
    /// coalesces onto an in-flight build counts as a hit only once that
    /// build resolves successfully — a coalesced wait that surfaces the
    /// build error is neither hit nor miss.
    pub hits: u64,
    /// Requests that had to build a snapshot.
    pub misses: u64,
    /// Requests that waited for another request's in-flight build.
    pub coalesced: u64,
    /// Snapshots evicted by the LRU policy or explicit invalidation.
    pub evictions: u64,
    /// Total build wall-clock nanoseconds spent so far.
    pub build_ns: u64,
    /// Resident snapshots right now.
    pub entries: usize,
    /// Accounted bytes resident right now.
    pub bytes: usize,
    /// The configured capacity, in bytes.
    pub capacity_bytes: usize,
    /// Tombstones currently remembered (bounded by [`TOMBSTONE_CAP`]).
    pub tombstones: usize,
    /// Resident snapshots pinned by open sessions right now.
    pub pinned: usize,
}

/// Looking up a snapshot id can fail two ways; both are structured,
/// recoverable protocol errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupError {
    /// The digest was never seen by this store.
    Unknown,
    /// The digest was cached once but has since been evicted or
    /// invalidated — the client's handle is stale.
    Stale,
}

/// Outcome of [`SnapshotStore::invalidate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invalidate {
    /// A resident entry was evicted and tombstoned.
    Evicted,
    /// Nothing was resident; a tombstone was recorded anyway.
    Absent,
    /// The entry is pinned by an open session and was left untouched —
    /// no eviction, no tombstone.
    Pinned,
}

/// A build slot other requests can wait on: filled exactly once with the
/// build result (or the build error, which waiters propagate).
struct BuildCell {
    result: Mutex<Option<Result<Arc<Snapshot>, String>>>,
    done: Condvar,
}

enum Slot {
    /// A build is in flight; waiters block on the cell.
    Building(Arc<BuildCell>),
    /// Ready to serve.
    Ready {
        snapshot: Arc<Snapshot>,
        bytes: usize,
        last_used: u64,
        /// Open-session pin count: while positive the entry is exempt
        /// from LRU eviction and refuses explicit invalidation (the
        /// `evict` op reports a structured `pinned-snapshot` error
        /// instead of tombstoning a snapshot out from under a session).
        pins: u32,
    },
}

/// Upper bound on remembered tombstones: past this, the oldest half is
/// forgotten (those digests then report `Unknown` rather than `Stale`),
/// so a long-running daemon under cache churn stays bounded.
pub const TOMBSTONE_CAP: usize = 1 << 16;

struct Inner {
    map: HashMap<u64, Slot>,
    /// Digests that were resident once and are gone now, stamped with the
    /// tick they were tombstoned at. Bounded by [`TOMBSTONE_CAP`].
    evicted: HashMap<u64, u64>,
    /// Recency clock: bumped on every touch.
    tick: u64,
    bytes: usize,
}

impl Inner {
    /// Records a tombstone for `key`, pruning the oldest half of the set
    /// when it outgrows [`TOMBSTONE_CAP`] (amortized O(1) per insert).
    fn tombstone(&mut self, key: u64) {
        self.tick += 1;
        let tick = self.tick;
        self.evicted.insert(key, tick);
        if self.evicted.len() > TOMBSTONE_CAP {
            let mut ticks: Vec<u64> = self.evicted.values().copied().collect();
            ticks.sort_unstable();
            let cutoff = ticks[ticks.len() / 2];
            self.evicted.retain(|_, t| *t >= cutoff);
        }
    }
}

/// The content-addressed, byte-accounted, build-deduplicating LRU store.
/// See the [module docs](self).
pub struct SnapshotStore {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    build_ns: AtomicU64,
}

impl SnapshotStore {
    /// An empty store that evicts past `capacity_bytes` of accounted
    /// snapshot weight.
    pub fn new(capacity_bytes: usize) -> SnapshotStore {
        SnapshotStore {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                evicted: HashMap::new(),
                tick: 0,
                bytes: 0,
            }),
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            build_ns: AtomicU64::new(0),
        }
    }

    /// The snapshot for `key`, building it with `build` on a miss. The
    /// build runs outside the store lock; concurrent requests for the same
    /// key wait for the in-flight build instead of re-running it. Returns
    /// the snapshot and whether this call was a cache hit.
    ///
    /// `source` must be the exact text `key` was derived from: every hit
    /// compares it against the cached snapshot's source, so a 64-bit
    /// digest collision between distinct sources surfaces as an error
    /// instead of silently serving the wrong analysis.
    pub fn get_or_build(
        &self,
        key: SnapshotKey,
        source: &str,
        build: impl FnOnce() -> Result<Snapshot, String>,
    ) -> Result<(Arc<Snapshot>, bool), String> {
        let cell = {
            let mut inner = self.inner.lock().expect("store lock poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            match inner.map.get_mut(&key.0) {
                Some(Slot::Ready {
                    snapshot,
                    last_used,
                    ..
                }) => {
                    verify_source(key, snapshot, source)?;
                    *last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(snapshot), true));
                }
                Some(Slot::Building(cell)) => {
                    // Another request is building this key: wait outside
                    // the store lock. Counted as a hit only if the build
                    // succeeds (below) — a propagated build error is
                    // neither hit nor miss.
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    Some(Arc::clone(cell))
                }
                None => {
                    let cell = Arc::new(BuildCell {
                        result: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    inner.map.insert(key.0, Slot::Building(Arc::clone(&cell)));
                    inner.evicted.remove(&key.0);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            }
        };

        if let Some(cell) = cell {
            let mut slot = cell.result.lock().expect("build cell poisoned");
            while slot.is_none() {
                slot = cell.done.wait(slot).expect("build cell poisoned");
            }
            return match slot.as_ref().expect("loop ensures Some") {
                Ok(snapshot) => {
                    verify_source(key, snapshot, source)?;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Ok((Arc::clone(snapshot), true))
                }
                Err(e) => Err(e.clone()),
            };
        }

        // This request owns the build. Run it without holding any lock.
        let started = Instant::now();
        let built = build().map(Arc::new);
        let elapsed = started.elapsed().as_nanos() as u64;
        self.build_ns.fetch_add(elapsed, Ordering::Relaxed);

        let mut inner = self.inner.lock().expect("store lock poisoned");
        let Some(Slot::Building(cell)) = inner.map.get(&key.0) else {
            unreachable!("build slot owned by this request disappeared");
        };
        let cell = Arc::clone(cell);
        match &built {
            Ok(snapshot) => {
                let bytes = snapshot.cost_bytes();
                inner.tick += 1;
                let tick = inner.tick;
                inner.map.insert(
                    key.0,
                    Slot::Ready {
                        snapshot: Arc::clone(snapshot),
                        bytes,
                        last_used: tick,
                        pins: 0,
                    },
                );
                inner.bytes += bytes;
                self.evict_to_capacity(&mut inner, key.0);
            }
            Err(_) => {
                // Failed builds leave no residue (and no tombstone: the
                // key was never resident, so a retry is a fresh miss).
                inner.map.remove(&key.0);
            }
        }
        drop(inner);

        let to_waiters = match &built {
            Ok(snapshot) => Ok(Arc::clone(snapshot)),
            Err(e) => Err(e.clone()),
        };
        *cell.result.lock().expect("build cell poisoned") = Some(to_waiters);
        cell.done.notify_all();

        built.map(|snapshot| (snapshot, false))
    }

    /// Evicts least-recently-used Ready entries until the accounted bytes
    /// fit the capacity. `keep` (the entry just inserted) survives even if
    /// it alone exceeds capacity, so oversized programs still get served.
    fn evict_to_capacity(&self, inner: &mut Inner, keep: u64) {
        while inner.bytes > self.capacity_bytes {
            let victim = inner
                .map
                .iter()
                .filter_map(|(&k, slot)| match slot {
                    Slot::Ready {
                        last_used, pins, ..
                    } if k != keep && *pins == 0 => Some((*last_used, k)),
                    _ => None,
                })
                .min()
                .map(|(_, k)| k);
            let Some(victim) = victim else { break };
            if let Some(Slot::Ready { bytes, .. }) = inner.map.remove(&victim) {
                inner.bytes -= bytes;
                inner.tombstone(victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Looks up an already-built snapshot by digest (no build). Touches
    /// the LRU clock on success.
    pub fn get(&self, key: SnapshotKey) -> Result<Arc<Snapshot>, LookupError> {
        let mut inner = self.inner.lock().expect("store lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key.0) {
            Some(Slot::Ready {
                snapshot,
                last_used,
                ..
            }) => {
                *last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(snapshot))
            }
            _ => None,
        }
        .ok_or_else(|| {
            if inner.evicted.contains_key(&key.0) {
                LookupError::Stale
            } else {
                LookupError::Unknown
            }
        })
    }

    /// Explicitly invalidates a snapshot (the protocol's `evict` op).
    /// Pinned entries refuse invalidation — see [`Invalidate::Pinned`].
    /// After [`Invalidate::Evicted`] or [`Invalidate::Absent`], later
    /// lookups of the digest report [`LookupError::Stale`].
    pub fn invalidate(&self, key: SnapshotKey) -> Invalidate {
        let mut inner = self.inner.lock().expect("store lock poisoned");
        match inner.map.get(&key.0) {
            Some(Slot::Ready { pins, .. }) if *pins > 0 => Invalidate::Pinned,
            Some(Slot::Ready { .. }) => {
                if let Some(Slot::Ready { bytes, .. }) = inner.map.remove(&key.0) {
                    inner.bytes -= bytes;
                }
                inner.tombstone(key.0);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                Invalidate::Evicted
            }
            // In-flight builds finish and insert; invalidating a digest
            // that is mid-build or absent just records the tombstone.
            _ => {
                inner.tombstone(key.0);
                Invalidate::Absent
            }
        }
    }

    /// Pins the resident entry for `key`: while pinned it is exempt from
    /// LRU eviction and refuses [`SnapshotStore::invalidate`]. Pins
    /// stack (two sessions sharing one digest pin it twice). Returns
    /// `false` if nothing is resident under `key` — the caller must
    /// rebuild and retry.
    pub fn pin(&self, key: SnapshotKey) -> bool {
        let mut inner = self.inner.lock().expect("store lock poisoned");
        match inner.map.get_mut(&key.0) {
            Some(Slot::Ready { pins, .. }) => {
                *pins += 1;
                true
            }
            _ => false,
        }
    }

    /// Releases one pin on `key` (session close or re-link). The entry
    /// stays resident and re-enters normal LRU accounting once its pin
    /// count drops to zero.
    pub fn unpin(&self, key: SnapshotKey) {
        let mut inner = self.inner.lock().expect("store lock poisoned");
        if let Some(Slot::Ready { pins, .. }) = inner.map.get_mut(&key.0) {
            *pins = pins.saturating_sub(1);
        }
    }

    /// A point-in-time snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("store lock poisoned");
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            build_ns: self.build_ns.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.bytes,
            capacity_bytes: self.capacity_bytes,
            tombstones: inner.evicted.len(),
            pinned: inner
                .map
                .values()
                .filter(|slot| matches!(slot, Slot::Ready { pins, .. } if *pins > 0))
                .count(),
        }
    }

    /// Runs `f` over every resident snapshot (stats aggregation).
    pub fn for_each_resident(&self, mut f: impl FnMut(&Snapshot)) {
        let inner = self.inner.lock().expect("store lock poisoned");
        for slot in inner.map.values() {
            if let Slot::Ready { snapshot, .. } = slot {
                f(snapshot);
            }
        }
    }

    /// Tombstones currently remembered (bounded-growth test hook).
    #[cfg(test)]
    fn tombstone_count(&self) -> usize {
        self.inner
            .lock()
            .expect("store lock poisoned")
            .evicted
            .len()
    }
}

/// Rejects a hit whose cached source differs from the request's: a 64-bit
/// digest collision, surfaced as an error rather than a wrong answer.
fn verify_source(key: SnapshotKey, snapshot: &Snapshot, source: &str) -> Result<(), String> {
    if snapshot.source != source {
        return Err(format!(
            "digest collision on {}: a different source is cached under this key; \
             analysis refused to avoid serving wrong results",
            key.hex()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(source: &str) -> Result<Snapshot, String> {
        let program = Program::parse(source).map_err(|e| e.to_string())?;
        let analysis = Analysis::run(&program).map_err(|e| e.to_string())?;
        let engine = QueryEngine::freeze(&analysis);
        Ok(Snapshot {
            program,
            analysis,
            engine,
            source: source.to_owned(),
            build_ns: 0,
        })
    }

    const SRC_A: &str = "(fn x => x) (fn y => y)";
    const SRC_B: &str = "fun id x = x; id (fn u => u)";

    #[test]
    fn second_request_is_a_hit_and_shares_the_arc() {
        let store = SnapshotStore::new(usize::MAX);
        let key = SnapshotKey::derive(SRC_A, 0, 0);
        let (first, hit1) = store.get_or_build(key, SRC_A, || build(SRC_A)).unwrap();
        let (second, hit2) = store
            .get_or_build(key, SRC_A, || panic!("must not rebuild"))
            .unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn key_derivation_separates_content_and_config() {
        let k = SnapshotKey::derive(SRC_A, 0, 0);
        assert_ne!(k, SnapshotKey::derive(SRC_B, 0, 0));
        assert_ne!(k, SnapshotKey::derive(SRC_A, 1, 0));
        assert_ne!(k, SnapshotKey::derive(SRC_A, 0, 1));
        assert_eq!(SnapshotKey::from_hex(&k.hex()), Some(k));
        assert_eq!(SnapshotKey::from_hex("xyz"), None);
    }

    #[test]
    fn lru_evicts_by_bytes_and_reports_stale() {
        // Capacity fits either snapshot but not both: inserting the second
        // evicts the least recently used first.
        let cost_a = build(SRC_A).unwrap().cost_bytes();
        let cost_b = build(SRC_B).unwrap().cost_bytes();
        let store = SnapshotStore::new(cost_a + cost_b - 1);
        let ka = SnapshotKey::derive(SRC_A, 0, 0);
        let kb = SnapshotKey::derive(SRC_B, 0, 0);
        store.get_or_build(ka, SRC_A, || build(SRC_A)).unwrap();
        store.get_or_build(kb, SRC_B, || build(SRC_B)).unwrap();
        let s = store.stats();
        assert_eq!(s.evictions, 1, "{s:?}");
        assert!(s.bytes <= s.capacity_bytes, "{s:?}");
        assert_eq!(store.get(ka).unwrap_err(), LookupError::Stale);
        assert!(store.get(kb).is_ok());
        assert_eq!(
            store
                .get(SnapshotKey::derive("never seen", 0, 0))
                .unwrap_err(),
            LookupError::Unknown
        );
    }

    #[test]
    fn recently_used_entries_survive_eviction() {
        const SRC_C: &str = "(fn p => p p) (fn q => q)";
        // Capacity fits any two snapshots but not all three.
        let cost_a = build(SRC_A).unwrap().cost_bytes();
        let cost_b = build(SRC_B).unwrap().cost_bytes();
        let cost_c = build(SRC_C).unwrap().cost_bytes();
        let store = SnapshotStore::new(cost_a + cost_b + cost_c - 1);
        let ka = SnapshotKey::derive(SRC_A, 0, 0);
        let kb = SnapshotKey::derive(SRC_B, 0, 0);
        let kc = SnapshotKey::derive(SRC_C, 0, 0);
        store.get_or_build(ka, SRC_A, || build(SRC_A)).unwrap();
        store.get_or_build(kb, SRC_B, || build(SRC_B)).unwrap();
        // Touch A so B is now the least recently used.
        store.get(ka).unwrap();
        store.get_or_build(kc, SRC_C, || build(SRC_C)).unwrap();
        assert!(store.get(ka).is_ok(), "recently touched entry evicted");
        assert_eq!(store.get(kb).unwrap_err(), LookupError::Stale);
    }

    #[test]
    fn build_errors_propagate_and_leave_no_residue() {
        let store = SnapshotStore::new(usize::MAX);
        let key = SnapshotKey::derive("fn x =>", 0, 0);
        assert!(store
            .get_or_build(key, "fn x =>", || build("fn x =>"))
            .is_err());
        assert_eq!(store.stats().entries, 0);
        // A retry is a fresh miss, not a stale handle.
        assert_eq!(store.get(key).unwrap_err(), LookupError::Unknown);
        assert!(store.get_or_build(key, SRC_A, || build(SRC_A)).is_ok());
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        use std::sync::atomic::AtomicUsize;
        let store = SnapshotStore::new(usize::MAX);
        let key = SnapshotKey::derive(SRC_B, 0, 0);
        let builds = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (snap, _) = store
                        .get_or_build(key, SRC_B, || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            build(SRC_B)
                        })
                        .unwrap();
                    assert!(snap.engine.node_count() > 0);
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "coalescing failed");
        let s = store.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn coalesced_wait_on_a_failing_build_is_not_a_hit() {
        use std::time::Duration;
        let store = SnapshotStore::new(usize::MAX);
        const BAD: &str = "fn x =>";
        let key = SnapshotKey::derive(BAD, 0, 0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let r = store.get_or_build(key, BAD, || {
                    // Hold the build open until the other request has
                    // coalesced onto it, then fail (parse error).
                    while store.stats().coalesced == 0 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    build(BAD)
                });
                assert!(r.is_err());
            });
            // The Building slot exists once the miss is counted.
            while store.stats().misses == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            let r = store.get_or_build(key, BAD, || panic!("must coalesce"));
            assert!(r.is_err());
        });
        let s = store.stats();
        assert_eq!(
            (s.hits, s.misses, s.coalesced),
            (0, 1, 1),
            "a coalesced wait that surfaces the build error must not count as a hit"
        );
    }

    #[test]
    fn digest_collision_is_an_error_not_a_wrong_answer() {
        let store = SnapshotStore::new(usize::MAX);
        // Simulate an FNV collision: two distinct sources under one key.
        let key = SnapshotKey::derive(SRC_A, 0, 0);
        store.get_or_build(key, SRC_A, || build(SRC_A)).unwrap();
        let err = store
            .get_or_build(key, SRC_B, || panic!("collision must not rebuild"))
            .unwrap_err();
        assert!(err.contains("digest collision"), "{err}");
        // The honest source still hits.
        let (_, hit) = store.get_or_build(key, SRC_A, || build(SRC_A)).unwrap();
        assert!(hit);
    }

    #[test]
    fn tombstone_set_stays_bounded_under_churn() {
        let store = SnapshotStore::new(usize::MAX);
        // Invalidating an absent digest records a tombstone; churn through
        // more distinct digests than the cap allows.
        for i in 0..(TOMBSTONE_CAP as u64 + 2) {
            store.invalidate(SnapshotKey(i));
        }
        assert!(store.tombstone_count() <= TOMBSTONE_CAP);
        // Recent tombstones are still checked; the oldest were forgotten.
        assert_eq!(
            store
                .get(SnapshotKey(TOMBSTONE_CAP as u64 + 1))
                .unwrap_err(),
            LookupError::Stale
        );
        assert_eq!(store.get(SnapshotKey(0)).unwrap_err(), LookupError::Unknown);
    }

    #[test]
    fn invalidate_is_the_cache_invalidation_path() {
        let store = SnapshotStore::new(usize::MAX);
        let key = SnapshotKey::derive(SRC_A, 0, 0);
        store.get_or_build(key, SRC_A, || build(SRC_A)).unwrap();
        assert_eq!(store.invalidate(key), Invalidate::Evicted);
        assert_eq!(store.get(key).unwrap_err(), LookupError::Stale);
        assert_eq!(
            store.invalidate(key),
            Invalidate::Absent,
            "second invalidation is a no-op"
        );
        // Re-analyzing the same content rebuilds and clears the tombstone.
        let (_, hit) = store.get_or_build(key, SRC_A, || build(SRC_A)).unwrap();
        assert!(!hit);
        assert!(store.get(key).is_ok());
    }

    #[test]
    fn pinned_entries_refuse_invalidation_until_unpinned() {
        let store = SnapshotStore::new(usize::MAX);
        let key = SnapshotKey::derive(SRC_A, 0, 0);
        assert!(!store.pin(key), "nothing resident to pin yet");
        store.get_or_build(key, SRC_A, || build(SRC_A)).unwrap();
        assert!(store.pin(key));
        assert!(store.pin(key), "pins stack");
        assert_eq!(store.stats().pinned, 1);
        assert_eq!(store.invalidate(key), Invalidate::Pinned);
        assert!(store.get(key).is_ok(), "pinned entry must stay resident");
        store.unpin(key);
        assert_eq!(store.invalidate(key), Invalidate::Pinned, "one pin left");
        store.unpin(key);
        assert_eq!(store.stats().pinned, 0);
        assert_eq!(store.invalidate(key), Invalidate::Evicted);
        assert_eq!(store.get(key).unwrap_err(), LookupError::Stale);
    }

    #[test]
    fn pinned_entries_survive_lru_pressure() {
        const SRC_C: &str = "(fn p => p p) (fn q => q)";
        let cost_a = build(SRC_A).unwrap().cost_bytes();
        let cost_b = build(SRC_B).unwrap().cost_bytes();
        // Capacity fits A plus one other snapshot, never all three.
        let store = SnapshotStore::new(cost_a + cost_b);
        let ka = SnapshotKey::derive(SRC_A, 0, 0);
        let kb = SnapshotKey::derive(SRC_B, 0, 0);
        let kc = SnapshotKey::derive(SRC_C, 0, 0);
        store.get_or_build(ka, SRC_A, || build(SRC_A)).unwrap();
        assert!(store.pin(ka));
        store.get_or_build(kb, SRC_B, || build(SRC_B)).unwrap();
        store.get_or_build(kc, SRC_C, || build(SRC_C)).unwrap();
        // A is the least recently used but pinned: B pays instead.
        assert!(store.get(ka).is_ok(), "pinned LRU entry was evicted");
        assert_eq!(store.get(kb).unwrap_err(), LookupError::Stale);
        // Tombstone count is visible in the stats.
        assert!(store.stats().tombstones >= 1);
    }
}
