//! The daemon: request dispatch, the worker pipeline, and the two
//! transports (stdio and TCP).
//!
//! # Execution model
//!
//! One [`Server`] owns the [`SnapshotStore`] and the global counters. A
//! *pipeline* serves one byte stream: a detached reader thread tags each
//! line with a sequence number and its arrival [`Instant`] (the deadline
//! clock), `threads` scoped workers call [`Server::handle_line`]
//! concurrently, and a single writer emits responses **in request
//! order** — so a transcript's bytes are independent of the worker count.
//!
//! # Robustness invariants
//!
//! - A request never takes the daemon down: malformed JSON, parse and
//!   analysis failures, stale snapshot handles and blown deadlines all
//!   become structured error responses on the same connection.
//! - `shutdown` is graceful: every request enqueued before it is still
//!   answered (the single-writer ordering guarantees the shutdown
//!   response is the last line written), then the pipeline drains and the
//!   transport stops accepting input.
//! - Workers exit only under the queue lock with the queue empty, and the
//!   reader refuses to enqueue once shutdown is latched under that same
//!   lock — no request is ever silently dropped mid-drain.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use stcfa_core::{Analysis, AnalysisOptions, DatatypePolicy, QueryEngine};
use stcfa_lambda::{ExprId, ExprKind, Label, Program};
use stcfa_lint::{lint_with_suspicion, Diagnostic, LintOptions};
use stcfa_opt::{optimize_with, OptOptions, Pass, PassSet};
use stcfa_rules::ExtDb;
use stcfa_session::{LinkError, LinkReport, Module, Workspace};

use crate::cache::{Invalidate, LookupError, Snapshot, SnapshotKey, SnapshotStore};
use crate::conn::{Conn, ConnLimits, Frame};
use crate::json::Json;
use crate::poll::{Acceptor, Backoff, Parker};
use crate::proto::{
    err_response, ok_response, parse_policy, policy_to_disc, Deadline, ErrorKind, RequestError,
    PROTOCOL_VERSION, PROTOCOL_VERSION_SESSION,
};
use crate::shard::{Completion, FleetStats, ShardPool, Task};

/// Configuration for one daemon.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Worker threads per pipeline (also the lint engine's batch width).
    pub threads: usize,
    /// Snapshot-store capacity in accounted bytes.
    pub cache_capacity: usize,
    /// Deadline applied to requests that carry none (`None` = unlimited).
    pub default_deadline_ms: Option<u64>,
    /// Directory for the persistent snapshot tier (`--cache-dir`).
    /// `None` = memory-only. With a directory, successful builds persist
    /// write-behind, misses consult disk before building, LRU eviction
    /// demotes instead of dropping, and a restarted daemon warms from
    /// whatever the previous run persisted.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Shard queue count for the TCP fleet transport (`--shards`);
    /// `0` = one shard per worker thread. Requests route to shards by
    /// snapshot digest, so shard count changes locality, never
    /// transcripts.
    pub shards: usize,
    /// Fleet-wide cap on dispatched-but-unanswered requests
    /// (`--max-inflight`). Admission past the cap is refused with the
    /// structured `overloaded` error instead of queueing without bound.
    pub max_inflight: usize,
    /// Per-connection cap on framed-but-unanswered requests
    /// (`--conn-inflight`). At the cap the fleet stops reading from the
    /// connection and lets TCP push back — no response is ever shed for
    /// staying under it.
    pub conn_inflight: usize,
    /// Per-snapshot escalation budget, in engine nodes, for the adaptive
    /// precision scheduler (`--precision-budget`). Each Tier-2 cone run
    /// charges its cone's node count; at zero remaining, graded answers
    /// degrade to the subtransitive tier with an honest `approx` class.
    pub precision_budget: usize,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            threads: QueryEngine::default_threads(),
            cache_capacity: 256 << 20,
            default_deadline_ms: None,
            cache_dir: None,
            shards: 0,
            max_inflight: 1024,
            conn_inflight: 64,
            precision_budget: stcfa_precision::PrecisionScheduler::DEFAULT_BUDGET,
        }
    }
}

/// The long-running analysis daemon. See the [module docs](self).
pub struct Server {
    options: ServerOptions,
    store: SnapshotStore,
    /// Open multi-file sessions, by client-chosen id. Each entry pins
    /// its linked snapshot in the store for as long as it stays open.
    sessions: Mutex<HashMap<String, OpenSession>>,
    requests: AtomicU64,
    in_flight: AtomicU64,
    query_ns: AtomicU64,
    /// Latched by the `shutdown` op; transports poll it.
    stop: Arc<AtomicBool>,
    /// Fleet counters, registered by the TCP event-loop transport so
    /// the `stats` op can render them. `None` for stdio-only daemons.
    fleet: Mutex<Option<Arc<FleetStats>>>,
}

/// One open `session/*` session: the workspace (for incremental
/// re-links and name lookup), the store key its linked snapshot is
/// pinned under, and the snapshot + report queries answer from.
struct OpenSession {
    workspace: Workspace,
    key: SnapshotKey,
    snapshot: Arc<Snapshot>,
    report: LinkReport,
}

/// The engine discriminant for the monovariant subtransitive engine —
/// the only one served (the paper's bounded-type monovariant analysis is
/// what keeps per-request latency predictable). Part of the content
/// address.
const ENGINE_SUB: u64 = 0;

impl Server {
    /// A daemon with the given options and an empty snapshot store (which
    /// warms lazily from `cache_dir`, when one is configured).
    pub fn new(options: ServerOptions) -> Server {
        let store = SnapshotStore::with_disk(options.cache_capacity, options.cache_dir.clone());
        Server {
            options,
            store,
            sessions: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            query_ns: AtomicU64::new(0),
            stop: Arc::new(AtomicBool::new(false)),
            fleet: Mutex::new(None),
        }
    }

    /// The fleet counters, once a TCP event-loop transport has run (or
    /// is running) on this daemon. `None` under stdio.
    pub fn fleet_stats(&self) -> Option<Arc<FleetStats>> {
        self.fleet.lock().expect("fleet slot poisoned").clone()
    }

    /// The snapshot store (exposed for tests and benchmarks).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// Whether `shutdown` has been requested.
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    // --- request dispatch ---------------------------------------------------

    /// [`Server::handle_line`] under the pipeline's sequence gate:
    /// order-sensitive requests (the stateful `session/*` ops and
    /// `evict`, which observes session pins) wait until every earlier
    /// request in the stream has been answered, so their effects — and
    /// therefore the whole transcript — are independent of the worker
    /// count. Stateless requests run concurrently as before. Deadlock-
    /// free: the queue drains in sequence order, so the least in-flight
    /// sequence number never waits.
    fn handle_line_gated(&self, line: &str, received: Instant, gate: &SeqGate, seq: u64) -> String {
        if needs_order(line) {
            gate.wait_for_turn(seq);
        }
        let response = self.handle_line(line, received);
        gate.complete(seq);
        response
    }

    /// Handles one request line and returns the one response line (no
    /// trailing newline). `received` anchors the deadline clock; pass the
    /// instant the line was read. Never panics on untrusted input.
    pub fn handle_line(&self, line: &str, received: Instant) -> String {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let started = Instant::now();
        let response = self.dispatch(line, received);
        self.query_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        response.to_line()
    }

    fn dispatch(&self, line: &str, received: Instant) -> Json {
        let request = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                return err_response(
                    PROTOCOL_VERSION,
                    Json::Null,
                    &RequestError::new(ErrorKind::Proto, e.to_string()),
                )
            }
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        let version = match request.get("v") {
            None => PROTOCOL_VERSION,
            Some(v) => match v.as_u64() {
                Some(n) if n == PROTOCOL_VERSION || n == PROTOCOL_VERSION_SESSION => n,
                _ => {
                    return err_response(
                        PROTOCOL_VERSION,
                        id,
                        &RequestError::new(
                            ErrorKind::Proto,
                            format!(
                                "unsupported protocol version {} (this daemon speaks 1 and 2)",
                                v.to_line()
                            ),
                        ),
                    )
                }
            },
        };
        match self.dispatch_parsed(&request, received, version) {
            Ok(result) => ok_response(version, id, result),
            Err(e) => err_response(version, id, &e),
        }
    }

    fn dispatch_parsed(
        &self,
        request: &Json,
        received: Instant,
        version: u64,
    ) -> Result<Json, RequestError> {
        let op = request
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| RequestError::new(ErrorKind::Proto, "missing required field `op`"))?;
        let deadline_ms = match request.get("deadline_ms") {
            None => self.options.default_deadline_ms,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                RequestError::new(
                    ErrorKind::Proto,
                    "`deadline_ms` must be a non-negative integer",
                )
            })?),
        };
        let deadline = Deadline::new(received, deadline_ms);
        deadline.check("request start")?;
        if op.starts_with("session/") && version != PROTOCOL_VERSION_SESSION {
            return Err(RequestError::new(
                ErrorKind::Proto,
                format!("`{op}` is a session op: it requires \"v\":2"),
            ));
        }
        match op {
            "analyze" => self.op_analyze(request, &deadline),
            "query" => self.op_query(request, &deadline, version),
            "lint" => self.op_lint(request, &deadline),
            "rule" => {
                if version != PROTOCOL_VERSION_SESSION {
                    return Err(RequestError::new(
                        ErrorKind::Proto,
                        "`rule` is a protocol-2 op: it requires \"v\":2",
                    ));
                }
                self.op_rule(request, &deadline)
            }
            "opt" => {
                if version != PROTOCOL_VERSION_SESSION {
                    return Err(RequestError::new(
                        ErrorKind::Proto,
                        "`opt` is a protocol-2 op: it requires \"v\":2",
                    ));
                }
                self.op_opt(request, &deadline)
            }
            "evict" => self.op_evict(request),
            "stats" => Ok(self.op_stats()),
            "session/open" => self.op_session_open(request, &deadline),
            "session/update" => self.op_session_update(request, &deadline),
            "session/query" => self.op_session_query(request, &deadline),
            "session/lint" => self.op_session_lint(request, &deadline),
            "session/close" => self.op_session_close(request),
            "shutdown" => {
                self.stop.store(true, Ordering::SeqCst);
                Ok(Json::obj(vec![("stopping", Json::Bool(true))]))
            }
            other => Err(RequestError::new(
                ErrorKind::Proto,
                format!(
                    "unknown op `{other}` (expected analyze|query|lint|rule|opt|evict|stats|shutdown \
                     or session/open|session/update|session/query|session/lint|session/close)"
                ),
            )),
        }
    }

    // --- snapshot resolution ------------------------------------------------

    /// Builds (or fetches) the snapshot for `source`: the content-addressed
    /// amortization point every expensive request goes through.
    fn analyze_source(
        &self,
        request: &Json,
        source: &str,
        deadline: &Deadline,
    ) -> Result<(Arc<Snapshot>, SnapshotKey, bool), RequestError> {
        let (policy, policy_disc) = policy_param(request)?;
        if let Some(engine) = request.get("engine").and_then(Json::as_str) {
            if engine != "sub" {
                return Err(RequestError::new(
                    ErrorKind::Proto,
                    format!("unknown engine `{engine}` (this daemon serves `sub`)"),
                ));
            }
        }
        let key = SnapshotKey::derive(source, policy_disc, ENGINE_SUB);
        deadline.check("before build")?;
        let owned = source.to_owned();
        let (snapshot, cached) = self
            .store
            .get_or_build(key, source, move || {
                let started = Instant::now();
                let program = Program::parse(&owned).map_err(|e| format!("parse\u{0}{e}"))?;
                let analysis = Analysis::run_with(
                    &program,
                    AnalysisOptions {
                        policy,
                        max_nodes: None,
                    },
                )
                .map_err(|e| format!("analysis\u{0}{e}"))?;
                let engine = QueryEngine::freeze(&analysis);
                // Summarize eagerly: the snapshot is built once and read
                // many times, so pay the sweep inside the accounted build
                // (and persist the summary rows with the snapshot).
                engine.prepare();
                Ok(Snapshot::built(
                    program,
                    analysis,
                    engine,
                    owned,
                    started.elapsed().as_nanos() as u64,
                    policy,
                    policy_disc,
                    ENGINE_SUB,
                ))
            })
            .map_err(decode_build_err)?;
        // The build may have blown the budget even though the snapshot is
        // now cached (and stays warm for the next request).
        deadline.check("after build")?;
        Ok((snapshot, key, cached))
    }

    /// Resolves the snapshot a query/lint request names: an explicit
    /// `snapshot` digest, or inline `source` routed through the cache.
    fn resolve_snapshot(
        &self,
        request: &Json,
        deadline: &Deadline,
    ) -> Result<Arc<Snapshot>, RequestError> {
        if let Some(handle) = request.get("snapshot") {
            let hex = handle.as_str().ok_or_else(|| {
                RequestError::new(ErrorKind::Proto, "`snapshot` must be a hex digest string")
            })?;
            let key = SnapshotKey::from_hex(hex).ok_or_else(|| {
                RequestError::new(
                    ErrorKind::Proto,
                    format!("`snapshot` is not a 16-digit hex digest: `{hex}`"),
                )
            })?;
            return self.store.get(key).map_err(|e| match e {
                LookupError::Unknown => RequestError::new(
                    ErrorKind::UnknownSnapshot,
                    format!("snapshot {hex} was never analyzed by this daemon"),
                ),
                LookupError::Stale => RequestError::new(
                    ErrorKind::StaleSnapshot,
                    format!("snapshot {hex} was evicted or invalidated; re-analyze to refresh"),
                ),
            });
        }
        if let Some(source) = request.get("source").and_then(Json::as_str) {
            let (snapshot, _, _) = self.analyze_source(request, source, deadline)?;
            return Ok(snapshot);
        }
        Err(RequestError::new(
            ErrorKind::Proto,
            "request needs either a `snapshot` digest or inline `source`",
        ))
    }

    // --- ops ----------------------------------------------------------------

    fn op_analyze(&self, request: &Json, deadline: &Deadline) -> Result<Json, RequestError> {
        let source = request
            .get("source")
            .and_then(Json::as_str)
            .ok_or_else(|| RequestError::new(ErrorKind::Proto, "`analyze` needs `source`"))?;
        let (snapshot, key, cached) = self.analyze_source(request, source, deadline)?;
        Ok(Json::obj(vec![
            ("snapshot", Json::str(key.hex())),
            ("cached", Json::Bool(cached)),
            ("exprs", Json::num(snapshot.program.size() as u64)),
            ("labels", Json::num(snapshot.engine.label_count() as u64)),
            ("nodes", Json::num(snapshot.engine.node_count() as u64)),
            ("edges", Json::num(snapshot.engine.edge_count() as u64)),
            ("comps", Json::num(snapshot.engine.comp_count() as u64)),
        ]))
    }

    fn op_query(
        &self,
        request: &Json,
        deadline: &Deadline,
        version: u64,
    ) -> Result<Json, RequestError> {
        let kind = request
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| RequestError::new(ErrorKind::Proto, "`query` needs `kind`"))?
            .to_owned();
        let graded = precision_param(request, version)?;
        let snapshot = self.resolve_snapshot(request, deadline)?;
        deadline.check("before query")?;
        let program = &snapshot.program;
        let result = if graded {
            self.graded_query_result(&kind, request, &snapshot, || Ok(program.root()))?
        } else {
            query_result(&kind, request, program, &snapshot.engine, || {
                Ok(program.root())
            })?
        };
        deadline.check("after query")?;
        Ok(tag_kind(kind, result))
    }

    /// Answers a `"precision":true` query through the snapshot's tier
    /// scheduler: the label set is the best certified refinement and the
    /// response carries its [`PrecisionInfo`] grade.
    fn graded_query_result(
        &self,
        kind: &str,
        request: &Json,
        snapshot: &Snapshot,
        default_expr: impl FnOnce() -> Result<ExprId, RequestError>,
    ) -> Result<Json, RequestError> {
        let scheduler = snapshot
            .try_scheduler(self.options.precision_budget)
            .map_err(|e| RequestError::new(ErrorKind::Analysis, e))?;
        let program = &snapshot.program;
        let (labels, info) = match kind {
            "label-set" => {
                let expr = match request.get("expr") {
                    None => default_expr()?,
                    Some(v) => expr_param(v, program, "expr")?,
                };
                scheduler.labels_of(program, &snapshot.engine, expr)
            }
            "call-targets" => {
                let site = expr_param(
                    request.get("site").ok_or_else(|| {
                        RequestError::new(ErrorKind::Proto, "`call-targets` needs `site`")
                    })?,
                    program,
                    "site",
                )?;
                scheduler
                    .call_targets(program, &snapshot.engine, site)
                    .ok_or_else(|| {
                        RequestError::new(
                            ErrorKind::Proto,
                            format!("expression {} is not an application site", site.index()),
                        )
                    })?
            }
            other => {
                return Err(RequestError::new(
                    ErrorKind::Proto,
                    format!("`precision` grades label-set and call-targets queries, not `{other}`"),
                ))
            }
        };
        let Json::Obj(mut pairs) = labels_json(program, &labels) else {
            unreachable!("labels_json returns an object")
        };
        pairs.push(("precision".to_owned(), precision_json(info)));
        Ok(Json::Obj(pairs))
    }

    fn op_lint(&self, request: &Json, deadline: &Deadline) -> Result<Json, RequestError> {
        let snapshot = self.resolve_snapshot(request, deadline)?;
        deadline.check("before lint")?;
        let diags = self.lint_snapshot(&snapshot)?;
        deadline.check("after lint")?;
        Ok(diagnostics_json(&diags, None))
    }

    /// Runs the lint engine over a snapshot, dividing the thread budget
    /// across the workers currently serving requests: a burst of
    /// concurrent lints must not fan out to ~threads² OS threads.
    ///
    /// Disk-warmed snapshots rebuild their analysis lazily here; a
    /// rebuild failure (which cannot happen for a snapshot that was built
    /// by this daemon configuration) surfaces as a structured error.
    ///
    /// The detector index comes from the snapshot, never from the
    /// rebuilt analysis: a warm *linked* engine's node table is the
    /// product of incremental linking, which a fresh analysis of the
    /// replayed program does not reproduce, so only the persisted
    /// scores fit it (the rebuilt analysis is still fine for the
    /// program-keyed effects colouring the lint rules consult).
    fn lint_snapshot(&self, snapshot: &Snapshot) -> Result<Vec<Diagnostic>, RequestError> {
        let analysis = snapshot
            .try_analysis()
            .map_err(|e| RequestError::new(ErrorKind::Analysis, e.clone()))?;
        let suspicion = snapshot
            .try_suspicion()
            .map_err(|e| RequestError::new(ErrorKind::Analysis, e))?;
        let active = (self.in_flight.load(Ordering::SeqCst) as usize).max(1);
        Ok(lint_with_suspicion(
            &snapshot.program,
            analysis,
            &snapshot.engine,
            suspicion,
            &LintOptions {
                threads: (self.options.threads / active).max(1),
            },
        ))
    }

    /// `rule` (protocol 2): evaluates a shipped rule program against a
    /// snapshot. `name` picks the program — `dominators` returns the
    /// call-graph dominator relation for every reachable node;
    /// `taint` closes the given source labels (default: every
    /// effectful-bodied abstraction) over the flow edges, for the whole
    /// program or, with `expr`, as one demand query that walks only the
    /// occurrence's BFS cone.
    fn op_rule(&self, request: &Json, deadline: &Deadline) -> Result<Json, RequestError> {
        let name = request
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| RequestError::new(ErrorKind::Proto, "`rule` needs `name`"))?
            .to_owned();
        let snapshot = self.resolve_snapshot(request, deadline)?;
        deadline.check("before rule")?;
        let analysis = snapshot
            .try_analysis()
            .map_err(|e| RequestError::new(ErrorKind::Analysis, e.clone()))?;
        let program = &snapshot.program;
        let db = ExtDb::new(program, analysis, &snapshot.engine);
        let result = match name.as_str() {
            "dominators" => {
                let dom = stcfa_rules::dominators(&db);
                let mut nodes = Vec::new();
                for n in 0..=dom.entry() {
                    if dom.is_reachable(n) {
                        let doms = dom
                            .doms_of(n)
                            .iter()
                            .map(|&d| Json::num(d as u64))
                            .collect();
                        nodes.push(Json::obj(vec![
                            ("node", Json::num(n as u64)),
                            ("doms", Json::Arr(doms)),
                        ]));
                    }
                }
                Json::obj(vec![
                    ("rule", Json::str("dominators")),
                    ("entry", Json::num(dom.entry() as u64)),
                    ("nodes", Json::Arr(nodes)),
                ])
            }
            "taint" => {
                let sources = taint_sources(request, program, &db)?;
                let src_json = Json::Arr(
                    sources
                        .iter()
                        .map(|l| Json::num(l.index() as u64))
                        .collect(),
                );
                match request.get("expr") {
                    Some(v) => {
                        let idx = v
                            .as_u64()
                            .filter(|&n| (n as usize) < program.size())
                            .ok_or_else(|| {
                                RequestError::new(
                                    ErrorKind::Proto,
                                    format!(
                                        "`expr` must be an occurrence index below {}",
                                        program.size()
                                    ),
                                )
                            })?;
                        let e = ExprId::from_index(idx as usize);
                        let tainted = stcfa_rules::expr_is_tainted(&db, &sources, e);
                        Json::obj(vec![
                            ("rule", Json::str("taint")),
                            ("sources", src_json),
                            ("expr", Json::num(idx)),
                            ("tainted", Json::Bool(tainted)),
                        ])
                    }
                    None => {
                        let tainted = stcfa_rules::tainted_exprs(&db, &sources)
                            .iter()
                            .map(|e| Json::num(e.index() as u64))
                            .collect();
                        Json::obj(vec![
                            ("rule", Json::str("taint")),
                            ("sources", src_json),
                            ("tainted", Json::Arr(tainted)),
                        ])
                    }
                }
            }
            other => {
                return Err(RequestError::new(
                    ErrorKind::Proto,
                    format!("unknown rule `{other}` (expected dominators|taint)"),
                ))
            }
        };
        deadline.check("after rule")?;
        // Opt-in grade for the whole derivation: rules read the engine's
        // label sets as their EDB, so if no component of this snapshot
        // carries suspicion the engine equals full cubic CFA and every
        // derived fact is exact; otherwise the rule's answer inherits the
        // engine's (sound) over-approximation.
        if precision_param(request, PROTOCOL_VERSION_SESSION)? {
            let suspicion = snapshot
                .try_suspicion()
                .map_err(|e| RequestError::new(ErrorKind::Analysis, e))?;
            let class = if suspicion.all_exact() {
                stcfa_precision::PrecisionClass::Exact
            } else {
                stcfa_precision::PrecisionClass::Approx
            };
            let Json::Obj(mut pairs) = result else {
                unreachable!("rule results are objects")
            };
            pairs.push((
                "precision".to_owned(),
                Json::obj(vec![
                    ("class", Json::str(class.as_str())),
                    ("tier", Json::num(0)),
                    (
                        "suspicious_comps",
                        Json::num(suspicion.suspicious_comps() as u64),
                    ),
                ]),
            ));
            return Ok(Json::Obj(pairs));
        }
        Ok(result)
    }

    /// `opt` (protocol 2): runs the flow-directed lowering pipeline
    /// (docs/OPT.md) against a snapshot and returns the decision report,
    /// with `"emit":true` adding the optimized program's source. Round 1
    /// reuses the snapshot's frozen engine; the result object is the
    /// CLI's `--report json` object, parsed — the two surfaces cannot
    /// drift apart.
    fn op_opt(&self, request: &Json, deadline: &Deadline) -> Result<Json, RequestError> {
        let mut options = OptOptions::default();
        if let Some(passes) = request.get("passes") {
            let Json::Arr(items) = passes else {
                return Err(RequestError::new(
                    ErrorKind::Proto,
                    "`passes` must be an array of pass names",
                ));
            };
            let mut set = PassSet::empty();
            for item in items {
                let name = item.as_str().ok_or_else(|| {
                    RequestError::new(ErrorKind::Proto, "`passes` must be an array of pass names")
                })?;
                let pass = Pass::from_name(name).ok_or_else(|| {
                    RequestError::new(ErrorKind::Proto, format!("unknown pass `{name}`"))
                })?;
                set = set.with(pass);
            }
            options.passes = set;
        }
        if let Some(v) = request.get("max_rounds") {
            options.max_rounds = v.as_u64().ok_or_else(|| {
                RequestError::new(
                    ErrorKind::Proto,
                    "`max_rounds` must be a non-negative integer",
                )
            })? as usize;
        }
        if let Some(v) = request.get("budget") {
            options.budget = v.as_u64().ok_or_else(|| {
                RequestError::new(ErrorKind::Proto, "`budget` must be a non-negative integer")
            })? as usize;
        }
        let emit = matches!(request.get("emit"), Some(Json::Bool(true)));
        let snapshot = self.resolve_snapshot(request, deadline)?;
        deadline.check("before opt")?;
        let active = (self.in_flight.load(Ordering::SeqCst) as usize).max(1);
        options.threads = (self.options.threads / active).max(1);
        let out = optimize_with(&snapshot.program, &snapshot.engine, &options)
            .map_err(|e| RequestError::new(ErrorKind::Analysis, e.to_string()))?;
        deadline.check("after opt")?;
        let Ok(Json::Obj(mut result)) = Json::parse(out.report.to_json().trim_end()) else {
            unreachable!("OptReport::to_json emits one JSON object")
        };
        result.push((
            "performed".to_owned(),
            Json::num(out.report.performed_total() as u64),
        ));
        if emit {
            result.push(("source".to_owned(), Json::str(out.program.to_source())));
        }
        Ok(Json::Obj(result))
    }

    fn op_evict(&self, request: &Json) -> Result<Json, RequestError> {
        let hex = request
            .get("snapshot")
            .and_then(Json::as_str)
            .ok_or_else(|| RequestError::new(ErrorKind::Proto, "`evict` needs `snapshot`"))?;
        let key = SnapshotKey::from_hex(hex).ok_or_else(|| {
            RequestError::new(
                ErrorKind::Proto,
                format!("`snapshot` is not a 16-digit hex digest: `{hex}`"),
            )
        })?;
        let evicted = match self.store.invalidate(key) {
            Invalidate::Evicted => true,
            Invalidate::Absent => false,
            Invalidate::Pinned => {
                return Err(RequestError::new(
                    ErrorKind::PinnedSnapshot,
                    format!(
                        "snapshot {hex} is pinned by an open session; \
                         close the session before evicting it"
                    ),
                ))
            }
        };
        Ok(Json::obj(vec![("evicted", Json::Bool(evicted))]))
    }

    fn op_stats(&self) -> Json {
        let store = self.store.stats();
        let mut analysis = stcfa_core::AnalysisStats::default();
        self.store.for_each_resident(|snapshot| {
            let s = snapshot.engine.stats();
            analysis.build_nodes += s.build_nodes;
            analysis.build_edges += s.build_edges;
            analysis.close_nodes += s.close_nodes;
            analysis.close_edges += s.close_edges;
            analysis.edges_processed += s.edges_processed;
            analysis.demand_registrations += s.demand_registrations;
            analysis.queries_answered += s.queries_answered;
            analysis.query_cache_hits += s.query_cache_hits;
            analysis.query_cache_misses += s.query_cache_misses;
        });
        let sessions = self
            .sessions
            .lock()
            .expect("session registry poisoned")
            .len();
        let mut fields = vec![
            ("protocol", Json::num(PROTOCOL_VERSION_SESSION)),
            ("threads", Json::num(self.options.threads as u64)),
            ("sessions", Json::num(sessions as u64)),
            ("requests", Json::num(self.requests.load(Ordering::Relaxed))),
            // This request is itself in flight while counting.
            (
                "in_flight",
                Json::num(self.in_flight.load(Ordering::SeqCst)),
            ),
            ("query_ns", Json::num(self.query_ns.load(Ordering::Relaxed))),
            ("build_ns", Json::num(store.build_ns)),
            (
                "cache",
                Json::obj(vec![
                    ("entries", Json::num(store.entries as u64)),
                    ("bytes", Json::num(store.bytes as u64)),
                    ("capacity_bytes", Json::num(store.capacity_bytes as u64)),
                    ("hits", Json::num(store.hits)),
                    ("misses", Json::num(store.misses)),
                    ("coalesced", Json::num(store.coalesced)),
                    ("evictions", Json::num(store.evictions)),
                    ("tombstones", Json::num(store.tombstones as u64)),
                    ("pinned", Json::num(store.pinned as u64)),
                    ("disk", Json::Bool(store.disk)),
                    ("disk_hits", Json::num(store.disk_hits)),
                    ("disk_writes", Json::num(store.disk_writes)),
                    ("disk_corrupt", Json::num(store.disk_corrupt)),
                ]),
            ),
            (
                "analysis",
                Json::obj(vec![
                    ("build_nodes", Json::num(analysis.build_nodes as u64)),
                    ("build_edges", Json::num(analysis.build_edges as u64)),
                    ("close_nodes", Json::num(analysis.close_nodes as u64)),
                    ("close_edges", Json::num(analysis.close_edges as u64)),
                    ("edges_processed", Json::num(analysis.edges_processed)),
                    (
                        "demand_registrations",
                        Json::num(analysis.demand_registrations),
                    ),
                    ("queries_answered", Json::num(analysis.queries_answered)),
                    ("query_cache_hits", Json::num(analysis.query_cache_hits)),
                    ("query_cache_misses", Json::num(analysis.query_cache_misses)),
                ]),
            ),
        ];
        if let Some(fleet) = self.fleet_stats() {
            fields.push(("fleet", fleet_stats_json(&fleet)));
        }
        Json::obj(fields)
    }

    // --- session ops --------------------------------------------------------

    /// Freezes the linked workspace into the store under `key` and pins
    /// it. The pin is taken in a retry loop: between the build and the
    /// pin another request can (in principle) evict the fresh entry, in
    /// which case the linked snapshot is simply re-frozen — the
    /// workspace's checkpoints make that cheap.
    fn cache_linked(
        &self,
        workspace: &Workspace,
        manifest: &str,
        key: SnapshotKey,
    ) -> Result<(Arc<Snapshot>, bool), RequestError> {
        loop {
            let (snapshot, cached) = self
                .store
                .get_or_build(key, manifest, || {
                    let started = Instant::now();
                    let linked = workspace.freeze().expect("caller links before caching");
                    let (program, analysis, engine, _report) = linked.into_parts();
                    engine.prepare();
                    let policy = workspace.options().policy;
                    Ok(Snapshot::linked(
                        program,
                        analysis,
                        engine,
                        manifest.to_owned(),
                        started.elapsed().as_nanos() as u64,
                        policy,
                        policy_to_disc(policy),
                    ))
                })
                .map_err(|e| RequestError::new(ErrorKind::Analysis, e))?;
            if self.store.pin(key) {
                return Ok((snapshot, cached));
            }
        }
    }

    fn op_session_open(&self, request: &Json, deadline: &Deadline) -> Result<Json, RequestError> {
        let id = session_param(request)?;
        {
            let sessions = self.sessions.lock().expect("session registry poisoned");
            if sessions.contains_key(&id) {
                return Err(RequestError::new(
                    ErrorKind::Proto,
                    format!("session `{id}` is already open"),
                ));
            }
        }
        let modules = modules_param(request, "modules")?;
        if modules.is_empty() {
            return Err(RequestError::new(
                ErrorKind::Proto,
                "`session/open` needs at least one module",
            ));
        }
        let (policy, _) = policy_param(request)?;
        let mut workspace = Workspace::new(AnalysisOptions {
            policy,
            max_nodes: None,
        });
        let mut seen: HashSet<&str> = HashSet::new();
        for (name, source) in &modules {
            if !seen.insert(name.as_str()) {
                return Err(RequestError::new(
                    ErrorKind::Proto,
                    format!("duplicate module name `{name}` in `modules`"),
                ));
            }
            workspace.upsert(name, source);
        }
        let report = workspace.link().map_err(link_err)?;
        deadline.check("after link")?;
        let key = SnapshotKey(report.session_digest);
        let manifest = session_manifest(&workspace);
        let (snapshot, cached) = self.cache_linked(&workspace, &manifest, key)?;
        let result = link_json(&id, key, cached, &report);
        let mut sessions = self.sessions.lock().expect("session registry poisoned");
        if sessions.contains_key(&id) {
            // Lost a race to a concurrent open of the same id.
            self.store.unpin(key);
            return Err(RequestError::new(
                ErrorKind::Proto,
                format!("session `{id}` is already open"),
            ));
        }
        sessions.insert(
            id,
            OpenSession {
                workspace,
                key,
                snapshot,
                report,
            },
        );
        Ok(result)
    }

    fn op_session_update(&self, request: &Json, deadline: &Deadline) -> Result<Json, RequestError> {
        let id = session_param(request)?;
        let upserts = match request.get("modules") {
            None => Vec::new(),
            Some(_) => modules_param(request, "modules")?,
        };
        let removes: Vec<String> = match request.get("remove") {
            None => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| {
                    RequestError::new(
                        ErrorKind::Proto,
                        "`remove` must be an array of module names",
                    )
                })?
                .iter()
                .map(|n| {
                    n.as_str().map(str::to_owned).ok_or_else(|| {
                        RequestError::new(
                            ErrorKind::Proto,
                            "`remove` must be an array of module names",
                        )
                    })
                })
                .collect::<Result<_, _>>()?,
        };
        if upserts.is_empty() && removes.is_empty() {
            return Err(RequestError::new(
                ErrorKind::Proto,
                "`session/update` needs `modules` (upserts) and/or `remove`",
            ));
        }
        let mut sessions = self.sessions.lock().expect("session registry poisoned");
        let entry = sessions.get_mut(&id).ok_or_else(|| unknown_session(&id))?;
        for name in &removes {
            if entry.workspace.module(name).is_none() {
                return Err(RequestError::new(
                    ErrorKind::Proto,
                    format!("session `{id}` has no module named `{name}` to remove"),
                ));
            }
        }
        // The update is transactional: on a link failure the module list
        // (and, via re-link over the surviving linker marks, the linked
        // state) is restored, and the old pinned snapshot keeps serving.
        let saved: Vec<Module> = entry.workspace.modules().to_vec();
        for name in &removes {
            entry.workspace.remove(name);
        }
        for (name, source) in &upserts {
            entry.workspace.upsert(name, source);
        }
        let report = match entry.workspace.link() {
            Ok(report) => report,
            Err(e) => {
                entry.workspace.set_modules(saved);
                let relink = entry.workspace.link();
                debug_assert!(
                    relink.is_ok(),
                    "rollback re-links previously linked content"
                );
                return Err(link_err(e));
            }
        };
        deadline.check("after link")?;
        let key = SnapshotKey(report.session_digest);
        let manifest = session_manifest(&entry.workspace);
        let (snapshot, cached) = self.cache_linked(&entry.workspace, &manifest, key)?;
        self.store.unpin(entry.key);
        entry.key = key;
        entry.snapshot = snapshot;
        entry.report = report.clone();
        Ok(link_json(&id, key, cached, &report))
    }

    fn op_session_query(&self, request: &Json, deadline: &Deadline) -> Result<Json, RequestError> {
        let id = session_param(request)?;
        let kind = request
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| RequestError::new(ErrorKind::Proto, "`session/query` needs `kind`"))?
            .to_owned();
        // Session ops are gated to protocol 2 in dispatch, so the flag
        // is always admissible here.
        let graded = precision_param(request, PROTOCOL_VERSION_SESSION)?;
        let (snapshot, report, binder) = {
            let sessions = self.sessions.lock().expect("session registry poisoned");
            let entry = sessions.get(&id).ok_or_else(|| unknown_session(&id))?;
            let binder = request
                .get("name")
                .and_then(Json::as_str)
                .map(|n| (n.to_owned(), entry.workspace.lookup(n)));
            (Arc::clone(&entry.snapshot), entry.report.clone(), binder)
        };
        deadline.check("before query")?;
        let program = &snapshot.program;
        let engine = &snapshot.engine;
        let result = match binder {
            Some((name, var)) => {
                if kind != "label-set" {
                    return Err(RequestError::new(
                        ErrorKind::Proto,
                        "`name` applies only to `label-set` queries",
                    ));
                }
                if graded {
                    return Err(RequestError::new(
                        ErrorKind::Proto,
                        "`precision` grades expression queries; it does not combine with `name`",
                    ));
                }
                let var = var.ok_or_else(|| {
                    RequestError::new(
                        ErrorKind::Proto,
                        format!("session `{id}` has no top-level binding named `{name}`"),
                    )
                })?;
                labels_json(program, &engine.labels_of_binder(var))
            }
            None if graded => self.graded_query_result(&kind, request, &snapshot, || {
                report.default_value().ok_or_else(|| {
                    RequestError::new(
                        ErrorKind::Proto,
                        "session has no trailing value expression; pass `expr` or `name`",
                    )
                })
            })?,
            None => query_result(&kind, request, program, engine, || {
                report.default_value().ok_or_else(|| {
                    RequestError::new(
                        ErrorKind::Proto,
                        "session has no trailing value expression; pass `expr` or `name`",
                    )
                })
            })?,
        };
        deadline.check("after query")?;
        Ok(tag_kind(kind, result))
    }

    fn op_session_lint(&self, request: &Json, deadline: &Deadline) -> Result<Json, RequestError> {
        let id = session_param(request)?;
        let (snapshot, report) = {
            let sessions = self.sessions.lock().expect("session registry poisoned");
            let entry = sessions.get(&id).ok_or_else(|| unknown_session(&id))?;
            (Arc::clone(&entry.snapshot), entry.report.clone())
        };
        deadline.check("before lint")?;
        let diags = self.lint_snapshot(&snapshot)?;
        deadline.check("after lint")?;
        Ok(diagnostics_json(&diags, Some(&report)))
    }

    fn op_session_close(&self, request: &Json) -> Result<Json, RequestError> {
        let id = session_param(request)?;
        let mut sessions = self.sessions.lock().expect("session registry poisoned");
        let entry = sessions.remove(&id).ok_or_else(|| unknown_session(&id))?;
        self.store.unpin(entry.key);
        Ok(Json::obj(vec![
            ("session", Json::str(id)),
            ("closed", Json::Bool(true)),
        ]))
    }

    // --- the pipeline -------------------------------------------------------

    /// Serves one line stream: requests from `reader`, responses to
    /// `writer`, with this server's worker count. Returns when the input
    /// ends or a `shutdown` request has drained. The reader runs on a
    /// detached thread so a `shutdown` can complete even while the input
    /// stream stays open (a blocked read never holds the drain hostage).
    pub fn serve<R, W>(&self, reader: R, mut writer: W) -> io::Result<()>
    where
        R: BufRead + Send + 'static,
        W: Write,
    {
        let shared = Arc::new(PipeShared::default());
        spawn_reader(reader, Arc::clone(&shared));
        let gate = SeqGate::default();
        let out = Mutex::new(OutState {
            next_seq: 0,
            ready: BTreeMap::new(),
            workers_active: self.options.threads.max(1),
        });
        let out_cv = Condvar::new();
        let mut io_result = Ok(());
        std::thread::scope(|scope| {
            for _ in 0..self.options.threads.max(1) {
                scope.spawn(|| {
                    loop {
                        let job = shared.next_job();
                        let Some(job) = job else { break };
                        let latch_shutdown = {
                            let response =
                                self.handle_line_gated(&job.line, job.received, &gate, job.seq);
                            let mut out = out.lock().expect("out lock poisoned");
                            out.ready.insert(job.seq, response);
                            out_cv.notify_all();
                            self.is_stopping()
                        };
                        if latch_shutdown {
                            // Latch under the queue lock so the reader
                            // cannot enqueue past the drain point.
                            shared.latch_stop();
                        }
                    }
                    let mut out = out.lock().expect("out lock poisoned");
                    out.workers_active -= 1;
                    out_cv.notify_all();
                });
            }
            // This thread is the writer: emit responses in sequence order.
            let mut writer_dead = false;
            let mut out_guard = out.lock().expect("out lock poisoned");
            loop {
                if writer_dead {
                    // Still-running workers keep inserting responses (with
                    // seq beyond the stalled next_seq); discard them every
                    // pass so the drain condition below stays reachable.
                    out_guard.ready.clear();
                } else {
                    while let Some(response) = {
                        let seq = out_guard.next_seq;
                        out_guard.ready.remove(&seq)
                    } {
                        out_guard.next_seq += 1;
                        drop(out_guard);
                        let w = writeln!(writer, "{response}").and_then(|()| writer.flush());
                        out_guard = out.lock().expect("out lock poisoned");
                        if let Err(e) = w {
                            // A vanished client is not a daemon failure,
                            // but stop writing and drain.
                            io_result = Err(e);
                            writer_dead = true;
                            out_guard.ready.clear();
                            break;
                        }
                    }
                }
                if out_guard.workers_active == 0 && out_guard.ready.is_empty() {
                    break;
                }
                let (guard, _) = out_cv
                    .wait_timeout(out_guard, Duration::from_millis(50))
                    .expect("out lock poisoned");
                out_guard = guard;
            }
        });
        io_result
    }

    /// Serves stdio: the `--stdio` transport.
    pub fn serve_stdio(&self) -> io::Result<()> {
        let stdin = io::stdin();
        let stdout = io::stdout();
        self.serve(BufReader::new(stdin), stdout.lock())
    }

    /// Binds `addr` and serves TCP connections on the nonblocking
    /// event-loop fleet until a `shutdown` request arrives on any of
    /// them; every request framed before the shutdown drains before the
    /// listener returns. Returns the bound local address via `on_bound`
    /// (useful with port 0).
    ///
    /// # Fleet architecture
    ///
    /// One thread (this one) runs the event loop: it drains the
    /// [`Acceptor`]'s blocking accept thread, pumps every connection's
    /// nonblocking reads/writes, applies admission control, and routes
    /// framed requests to a [`ShardPool`] of `threads` workers over
    /// `shards` digest-keyed queues. Workers compute; the loop owns all
    /// sockets and all ordering. Idle costs nothing: with no
    /// connections the loop parks forever (the acceptor wakes it), and
    /// with idle connections it parks on an escalating backoff capped
    /// at a few milliseconds — there is no fixed accept-poll sleep.
    ///
    /// # Ordering and backpressure
    ///
    /// Per-connection transcripts are byte-identical at any
    /// shard/worker count: responses enter the write buffer strictly in
    /// request order, and order-sensitive ops hold until every earlier
    /// request on their connection has been answered (see
    /// [`crate::conn`]). Past `conn_inflight` unanswered requests (or a
    /// slow reader's unflushed responses), the loop stops reading the
    /// connection and TCP pushes back. Past `max_inflight` dispatched
    /// requests fleet-wide, new requests are refused in transcript
    /// position with the structured `overloaded` error.
    pub fn serve_tcp(
        &self,
        addr: &str,
        on_bound: impl FnOnce(std::net::SocketAddr),
    ) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        on_bound(listener.local_addr()?);
        let notify = Arc::new(Parker::new());
        let fleet = Arc::new(FleetStats::default());
        *self.fleet.lock().expect("fleet slot poisoned") = Some(Arc::clone(&fleet));
        let workers = self.options.threads.max(1);
        let shards = if self.options.shards == 0 {
            workers
        } else {
            self.options.shards
        };
        let pool = ShardPool::new(shards, workers, Arc::clone(&notify), Arc::clone(&fleet));
        let acceptor = Acceptor::spawn(listener, Arc::clone(&notify))?;
        std::thread::scope(|scope| {
            let pool_ref = &pool;
            for w in 0..pool.workers() {
                scope.spawn(move || {
                    pool_ref.worker_loop(w, &|line, received| self.handle_line(line, received));
                });
            }
            self.event_loop(&acceptor, &pool, &notify, &fleet);
            pool.stop();
        });
        acceptor.shutdown();
        Ok(())
    }

    /// The fleet's event loop: runs until shutdown is latched and every
    /// framed request has been answered and flushed (or its connection
    /// died). Single-threaded by construction — it owns every socket,
    /// so framing, ordering, and admission need no locks.
    fn event_loop(
        &self,
        acceptor: &Acceptor,
        pool: &ShardPool,
        notify: &Arc<Parker>,
        fleet: &FleetStats,
    ) {
        let limits = ConnLimits {
            conn_inflight: self.options.conn_inflight,
            ..ConnLimits::default()
        };
        let max_inflight = self.options.max_inflight.max(1) as u64;
        let mut conns: BTreeMap<u64, Conn<TcpStream>> = BTreeMap::new();
        let mut next_conn_id = 0u64;
        let mut backoff = Backoff::new();
        let mut stopping = false;
        let mut drain_started: Option<Instant> = None;
        loop {
            let mut progress = false;

            // New connections. Once shutdown is latched, late arrivals
            // are refused (dropped) rather than half-served.
            for stream in acceptor.drain() {
                progress = true;
                if stopping {
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let id = next_conn_id;
                next_conn_id += 1;
                conns.insert(id, Conn::new(stream, id));
                fleet.connections.fetch_add(1, Ordering::Relaxed);
                fleet.connections_total.fetch_add(1, Ordering::Relaxed);
            }

            // Worker completions: advance each connection's ordered
            // writer; a completion can release a held order-sensitive
            // frame, which is admitted right here.
            for Completion {
                conn: id,
                seq,
                response,
            } in pool.drain_completions()
            {
                progress = true;
                if let Some(conn) = conns.get_mut(&id) {
                    let mut released = conn.complete(seq, response);
                    while let Some(frame) = released {
                        released = self.admit(conn, frame, pool, max_inflight, fleet);
                    }
                }
            }

            // Per-connection I/O: frame what arrived, admit it, flush
            // what is ready to leave.
            for conn in conns.values_mut() {
                if !stopping {
                    let pumped = conn.pump_read(&limits, needs_order);
                    progress |= pumped.progressed;
                    for frame in pumped.dispatch {
                        let mut released = self.admit(conn, frame, pool, max_inflight, fleet);
                        while let Some(next) = released {
                            released = self.admit(conn, next, pool, max_inflight, fleet);
                        }
                    }
                }
                progress |= conn.pump_write();
            }

            // Reap: closed-and-drained or broken connections free their
            // slot (never while a dispatched request could still post a
            // completion for them).
            let before = conns.len();
            conns.retain(|_, c| !c.reapable());
            if conns.len() != before {
                fleet
                    .connections
                    .fetch_sub((before - conns.len()) as u64, Ordering::Relaxed);
                progress = true;
            }

            if !stopping && self.is_stopping() {
                // Shutdown latched by some worker. Stop reading (lines
                // framed before this sweep still drain, matching the
                // stdio pipeline's guarantee) and stop admitting
                // connections.
                stopping = true;
                progress = true;
            }

            if stopping && pool.inflight() == 0 {
                let all_emitted = conns.values().all(|c| c.is_dead() || c.emit_done());
                if all_emitted {
                    if conns.values().all(|c| c.is_dead() || c.drained()) {
                        break;
                    }
                    // Everything is answered; only unflushed bytes to
                    // slow readers remain. Bounded grace, then cut.
                    let t = *drain_started.get_or_insert_with(Instant::now);
                    if t.elapsed() > Duration::from_secs(2) {
                        break;
                    }
                }
            }

            if progress {
                backoff.reset();
                continue;
            }
            // Nothing moved. Park: forever with no connections (the
            // acceptor or a completion wakes us), otherwise on the
            // escalating backoff — the cap bounds how late the loop can
            // notice bytes on an idle connection, the only signal
            // without a waker.
            if conns.is_empty() && !stopping {
                notify.wait(None);
                backoff.reset();
            } else {
                let cap = if stopping || conns.values().any(|c| c.wbuf_len() > 0) {
                    Duration::from_micros(500)
                } else {
                    Duration::from_millis(5)
                };
                if let Some(park) = backoff.next_park(cap) {
                    if notify.wait(Some(park)) {
                        backoff.reset();
                    }
                }
            }
        }
    }

    /// Admission control for one framed request: refuse it in
    /// transcript position when the fleet-wide in-flight cap is hit,
    /// otherwise route it to its shard. Returns the next held frame if
    /// a synthesized response released one.
    fn admit(
        &self,
        conn: &mut Conn<TcpStream>,
        frame: Frame,
        pool: &ShardPool,
        max_inflight: u64,
        fleet: &FleetStats,
    ) -> Option<Frame> {
        if conn.is_dead() {
            // The client is gone; executing would be pure waste. The
            // empty completion keeps the sequence accounting moving so
            // the slot can be reaped.
            return conn.complete(frame.seq, String::new());
        }
        if pool.inflight() >= max_inflight {
            fleet.overloaded_total.fetch_add(1, Ordering::Relaxed);
            self.requests.fetch_add(1, Ordering::Relaxed);
            let response = overloaded_response(&frame.line, max_inflight);
            return conn.complete(frame.seq, response);
        }
        let affinity = affinity_digest(&frame.line);
        pool.dispatch(Task {
            conn: conn.id,
            seq: frame.seq,
            line: frame.line,
            received: frame.received,
            affinity,
        });
        None
    }

    /// The pre-fleet transport: one blocking OS thread per connection,
    /// each running the stdio pipeline over the socket. Kept as the
    /// soak bench's baseline and behind `--transport threaded` for
    /// comparison; the accept path shares the fleet's [`Acceptor`], so
    /// even the legacy transport no longer sleep-polls.
    pub fn serve_tcp_threaded(
        &self,
        addr: &str,
        on_bound: impl FnOnce(std::net::SocketAddr),
    ) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        on_bound(listener.local_addr()?);
        let notify = Arc::new(Parker::new());
        let acceptor = Acceptor::spawn(listener, Arc::clone(&notify))?;
        std::thread::scope(|scope| loop {
            if self.is_stopping() {
                break;
            }
            for stream in acceptor.drain() {
                let wake = Arc::clone(&notify);
                scope.spawn(move || {
                    let _ = self.serve_tcp_connection(stream);
                    // A finished connection may have latched shutdown:
                    // wake the accept loop so it notices.
                    wake.wake();
                });
            }
            notify.wait(None);
        });
        acceptor.shutdown();
        Ok(())
    }

    /// One TCP connection: same pipeline, with a read timeout so an idle
    /// connection notices a daemon-wide shutdown within ~50 ms.
    fn serve_tcp_connection(&self, stream: TcpStream) -> io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        let writer = stream.try_clone()?;
        let reader = TimeoutLineReader {
            inner: BufReader::new(stream),
            stop: Arc::clone(&self.stop),
        };
        self.serve(reader, writer)
    }
}

/// The `fleet` block of the `stats` response.
fn fleet_stats_json(fleet: &FleetStats) -> Json {
    Json::obj(vec![
        ("shards", Json::num(fleet.shards.load(Ordering::Relaxed))),
        ("workers", Json::num(fleet.workers.load(Ordering::Relaxed))),
        (
            "connections",
            Json::num(fleet.connections.load(Ordering::Relaxed)),
        ),
        (
            "connections_total",
            Json::num(fleet.connections_total.load(Ordering::Relaxed)),
        ),
        (
            "dispatched",
            Json::num(fleet.dispatched.load(Ordering::Relaxed)),
        ),
        (
            "shard_hits",
            Json::num(fleet.shard_hits.load(Ordering::Relaxed)),
        ),
        (
            "overloaded_total",
            Json::num(fleet.overloaded_total.load(Ordering::Relaxed)),
        ),
    ])
}

/// One stderr line summarizing a fleet's lifetime (the `--summary`
/// flag).
pub fn fleet_summary_line(fleet: &FleetStats) -> String {
    format!(
        "fleet summary: connections_total={} dispatched={} shard_hits={} overloaded_total={}",
        fleet.connections_total.load(Ordering::Relaxed),
        fleet.dispatched.load(Ordering::Relaxed),
        fleet.shard_hits.load(Ordering::Relaxed),
        fleet.overloaded_total.load(Ordering::Relaxed),
    )
}

/// The synthesized admission-rejection response, echoing the request's
/// `id` and protocol version so it sits in the transcript exactly where
/// the executed response would have.
fn overloaded_response(line: &str, max_inflight: u64) -> String {
    let (id, version) = match Json::parse(line) {
        Ok(request) => {
            let id = request.get("id").cloned().unwrap_or(Json::Null);
            let version = match request.get("v").and_then(Json::as_u64) {
                Some(v) if v == PROTOCOL_VERSION || v == PROTOCOL_VERSION_SESSION => v,
                Some(_) | None => PROTOCOL_VERSION,
            };
            (id, version)
        }
        Err(_) => (Json::Null, PROTOCOL_VERSION),
    };
    err_response(
        version,
        id,
        &RequestError::new(
            ErrorKind::Overloaded,
            format!("admission refused: {max_inflight} requests already in flight; retry after draining"),
        ),
    )
    .to_line()
}

// --- shard affinity -------------------------------------------------------

/// The routing digest for one request line: the snapshot content
/// address when one is named or derivable, a session-id hash for
/// `session/*` ops, `0` (round-robin) otherwise. This is a locality
/// *hint* — the scan is shallow and a wrong guess costs a cache-warm
/// shard, never correctness — but for well-formed requests it matches
/// [`SnapshotKey::derive`] exactly, so `analyze` and the `query`s that
/// follow it land on the same shard.
fn affinity_digest(line: &str) -> u64 {
    if let Some(raw) = raw_str_field(line, "snapshot") {
        if let Some(key) = SnapshotKey::from_hex(raw) {
            return key.0;
        }
    }
    if let Some(raw) = raw_str_field(line, "session") {
        return stcfa_devkit::hash::Fnv1a::digest_parts(raw.as_bytes(), &[u64::MAX]);
    }
    if let Some(raw) = raw_str_field(line, "source") {
        let source = unescape_json_span(raw);
        let policy = raw_str_field(line, "policy").unwrap_or("c1");
        if let Some((_, disc)) = crate::proto::parse_policy(policy) {
            return SnapshotKey::derive(&source, disc, ENGINE_SUB).0;
        }
    }
    0
}

/// Finds the raw (still-escaped) span of a string field in a JSON line:
/// `"name"` then `:` then a string literal. Shallow by design — a
/// matching key inside a nested string can fool it, which skews a
/// routing hint and nothing else.
fn raw_str_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let bytes = line.as_bytes();
    let pat = format!("\"{name}\"");
    let mut from = 0;
    while let Some(rel) = line[from..].find(&pat) {
        let mut i = from + rel + pat.len();
        from = i;
        while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\t') {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b':' {
            continue;
        }
        i += 1;
        while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\t') {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'"' {
            continue;
        }
        i += 1;
        let start = i;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => return Some(&line[start..i]),
                _ => i += 1,
            }
        }
        return None;
    }
    None
}

/// Unescapes a raw JSON string span (the bytes between the quotes) just
/// enough to reproduce what the real parser would hand the analyzer —
/// required for the affinity digest to agree with the content address
/// the worker derives.
fn unescape_json_span(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('b') => out.push('\u{8}'),
            Some('f') => out.push('\u{c}'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                match u32::from_str_radix(&hex, 16) {
                    Ok(hi @ 0xd800..=0xdbff) => {
                        // A surrogate pair: expect \uDCxx next.
                        let mut rest = chars.clone();
                        let lo = (rest.next() == Some('\\') && rest.next() == Some('u'))
                            .then(|| {
                                let hex: String = rest.by_ref().take(4).collect();
                                u32::from_str_radix(&hex, 16).ok()
                            })
                            .flatten();
                        match lo {
                            Some(lo @ 0xdc00..=0xdfff) => {
                                let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                out.push(char::from_u32(c).unwrap_or('\u{fffd}'));
                                chars = rest;
                            }
                            _ => out.push('\u{fffd}'),
                        }
                    }
                    Ok(code) => out.push(char::from_u32(code).unwrap_or('\u{fffd}')),
                    Err(_) => out.push('\u{fffd}'),
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Decodes the NUL-prefixed error kind the build closure encodes (the
/// store transports build failures as plain strings).
fn decode_build_err(encoded: String) -> RequestError {
    match encoded.split_once('\u{0}') {
        Some(("parse", msg)) => RequestError::new(ErrorKind::Parse, msg),
        Some(("analysis", msg)) => RequestError::new(ErrorKind::Analysis, msg),
        _ => RequestError::new(ErrorKind::Analysis, encoded),
    }
}

/// Parses the optional `policy` field (default `c1`) into the core enum
/// and its stable content-address discriminant.
fn policy_param(request: &Json) -> Result<(DatatypePolicy, u64), RequestError> {
    let name = request.get("policy").and_then(Json::as_str).unwrap_or("c1");
    parse_policy(name).ok_or_else(|| {
        RequestError::new(
            ErrorKind::Proto,
            format!("unknown policy `{name}` (expected c1|c2|exact|forget)"),
        )
    })
}

/// The required `session` id of every `session/*` op.
fn session_param(request: &Json) -> Result<String, RequestError> {
    request
        .get("session")
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| {
            RequestError::new(
                ErrorKind::Proto,
                "`session/*` ops need a string `session` id",
            )
        })
}

/// Parses a module array: `[{"name":…,"source":…}, …]`.
fn modules_param(request: &Json, field: &str) -> Result<Vec<(String, String)>, RequestError> {
    let arr = request.get(field).and_then(Json::as_arr).ok_or_else(|| {
        RequestError::new(
            ErrorKind::Proto,
            format!("`{field}` must be an array of {{name, source}} objects"),
        )
    })?;
    arr.iter()
        .map(|entry| {
            let name = entry.get("name").and_then(Json::as_str).ok_or_else(|| {
                RequestError::new(
                    ErrorKind::Proto,
                    format!("every `{field}` entry needs a string `name`"),
                )
            })?;
            let source = entry.get("source").and_then(Json::as_str).ok_or_else(|| {
                RequestError::new(
                    ErrorKind::Proto,
                    format!("every `{field}` entry needs a string `source`"),
                )
            })?;
            Ok((name.to_owned(), source.to_owned()))
        })
        .collect()
}

/// Reads the opt-in `"precision"` flag. Grading is a protocol-2
/// surface: requests without the flag (every protocol-1 transcript) are
/// answered byte-identically to a daemon without the scheduler.
fn precision_param(request: &Json, version: u64) -> Result<bool, RequestError> {
    match request.get("precision") {
        None => Ok(false),
        Some(Json::Bool(b)) => {
            if *b && version != PROTOCOL_VERSION_SESSION {
                return Err(RequestError::new(
                    ErrorKind::Proto,
                    "`precision` is a protocol-2 field: it requires \"v\":2",
                ));
            }
            Ok(*b)
        }
        Some(_) => Err(RequestError::new(
            ErrorKind::Proto,
            "`precision` must be a boolean",
        )),
    }
}

/// Renders one answer's precision grade.
fn precision_json(info: stcfa_precision::PrecisionInfo) -> Json {
    Json::obj(vec![
        ("class", Json::str(info.class.as_str())),
        ("tier", Json::num(info.tier.level() as u64)),
        ("suspicion", Json::num(info.suspicion as u64)),
    ])
}

/// The canonical text a linked snapshot's digest is collision-checked
/// against: the module names and sources in link order, separated by
/// control bytes no source can contain ambiguously.
fn session_manifest(workspace: &Workspace) -> String {
    let mut s = String::from("session\u{0}");
    for m in workspace.modules() {
        s.push_str(m.name());
        s.push('\u{1}');
        s.push_str(m.source());
        s.push('\u{2}');
    }
    s
}

/// Maps a link failure onto the protocol's structured error classes;
/// the message names the offending module.
fn link_err(e: LinkError) -> RequestError {
    let kind = match &e {
        LinkError::Parse { .. } => ErrorKind::Parse,
        LinkError::Analysis { .. } => ErrorKind::Analysis,
    };
    RequestError::new(kind, e.to_string())
}

fn unknown_session(id: &str) -> RequestError {
    RequestError::new(
        ErrorKind::UnknownSession,
        format!("no open session named `{id}`"),
    )
}

/// Renders a link report as the `session/open` / `session/update`
/// result object.
fn link_json(id: &str, key: SnapshotKey, cached: bool, report: &LinkReport) -> Json {
    let modules: Vec<Json> = report
        .modules
        .iter()
        .map(|m| {
            Json::obj(vec![
                ("name", Json::str(m.name.clone())),
                ("digest", Json::str(format!("{:016x}", m.digest))),
                (
                    "imports",
                    Json::Arr(m.imports.iter().map(Json::str).collect()),
                ),
                ("reused", Json::Bool(m.reused)),
                ("generation", Json::num(m.generation)),
                ("exprs", Json::num(m.exprs as u64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("session", Json::str(id)),
        ("digest", Json::str(key.hex())),
        ("cached", Json::Bool(cached)),
        ("generation", Json::num(report.generation)),
        ("reused", Json::num(report.reused as u64)),
        ("relinked", Json::num(report.relinked as u64)),
        ("modules", Json::Arr(modules)),
        ("nodes", Json::num(report.nodes as u64)),
        ("edges", Json::num(report.edges as u64)),
        ("exprs", Json::num(report.exprs as u64)),
    ])
}

/// The query-kind dispatcher shared by `query` and `session/query`.
/// `default_expr` supplies the target when a `label-set` request names
/// no `expr` (the program root for v1, the session's trailing value for
/// v2).
fn query_result(
    kind: &str,
    request: &Json,
    program: &Program,
    engine: &QueryEngine,
    default_expr: impl FnOnce() -> Result<ExprId, RequestError>,
) -> Result<Json, RequestError> {
    Ok(match kind {
        "label-set" => {
            let expr = match request.get("expr") {
                None => default_expr()?,
                Some(v) => expr_param(v, program, "expr")?,
            };
            labels_json(program, &engine.labels_of(expr))
        }
        "call-targets" => {
            let site = expr_param(
                request.get("site").ok_or_else(|| {
                    RequestError::new(ErrorKind::Proto, "`call-targets` needs `site`")
                })?,
                program,
                "site",
            )?;
            let targets = engine.call_targets(program, site).ok_or_else(|| {
                RequestError::new(
                    ErrorKind::Proto,
                    format!("expression {} is not an application site", site.index()),
                )
            })?;
            labels_json(program, &targets)
        }
        "occurrences" => {
            let label = label_param(request, program)?;
            let exprs = engine.exprs_with_label(label);
            Json::obj(vec![
                ("count", Json::num(exprs.len() as u64)),
                (
                    "exprs",
                    Json::Arr(exprs.iter().map(|e| Json::num(e.index() as u64)).collect()),
                ),
            ])
        }
        "reachability" => {
            let expr = expr_param(
                request.get("expr").ok_or_else(|| {
                    RequestError::new(ErrorKind::Proto, "`reachability` needs `expr`")
                })?,
                program,
                "expr",
            )?;
            let label = label_param(request, program)?;
            Json::obj(vec![(
                "reaches",
                Json::Bool(engine.label_reaches(expr, label)),
            )])
        }
        other => {
            return Err(RequestError::new(
                ErrorKind::Proto,
                format!(
                    "unknown query kind `{other}` \
                     (expected label-set|call-targets|occurrences|reachability)"
                ),
            ))
        }
    })
}

/// Prepends the echoed query kind to a result object.
fn tag_kind(kind: String, result: Json) -> Json {
    let Json::Obj(mut pairs) = result else {
        unreachable!("results are objects")
    };
    pairs.insert(0, ("kind".to_owned(), Json::Str(kind)));
    Json::Obj(pairs)
}

/// Renders lint diagnostics; with a link report each diagnostic is
/// additionally attributed to the module owning its expression.
fn diagnostics_json(diags: &[Diagnostic], report: Option<&LinkReport>) -> Json {
    let items: Vec<Json> = diags
        .iter()
        .map(|d| {
            let span = match d.span {
                None => Json::Null,
                Some(s) => Json::obj(vec![
                    ("line", Json::num(s.start.line as u64)),
                    ("col", Json::num(s.start.col as u64)),
                    ("end_line", Json::num(s.end.line as u64)),
                    ("end_col", Json::num(s.end.col as u64)),
                ]),
            };
            let mut pairs = vec![
                ("code", Json::str(d.code.as_str())),
                ("severity", Json::str(d.severity.as_str())),
                ("confidence", Json::str(d.confidence.as_str())),
            ];
            if d.code.fixable() {
                pairs.push(("fixable", Json::Bool(true)));
            }
            pairs.extend([
                ("expr", Json::num(d.expr.index() as u64)),
                ("span", span),
                ("message", Json::str(d.message.clone())),
            ]);
            if let Some(report) = report {
                let module = match report.module_of_expr(d.expr) {
                    Some(name) => Json::str(name),
                    None => Json::Null,
                };
                pairs.push(("module", module));
            }
            Json::obj(pairs)
        })
        .collect();
    Json::obj(vec![
        ("count", Json::num(items.len() as u64)),
        ("diagnostics", Json::Arr(items)),
    ])
}

/// Resolves the `sources` parameter of the taint rule: an explicit
/// array of label indices, or (by default) every effectful-bodied
/// abstraction in the program.
fn taint_sources(
    request: &Json,
    program: &Program,
    db: &ExtDb<'_>,
) -> Result<Vec<Label>, RequestError> {
    match request.get("sources") {
        Some(Json::Arr(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let idx = item
                    .as_u64()
                    .filter(|&n| (n as usize) < program.label_count())
                    .ok_or_else(|| {
                        RequestError::new(
                            ErrorKind::Proto,
                            format!(
                                "`sources` entries must be label indices below {}",
                                program.label_count()
                            ),
                        )
                    })?;
                out.push(Label::from_index(idx as usize));
            }
            out.sort_unstable();
            out.dedup();
            Ok(out)
        }
        Some(_) => Err(RequestError::new(
            ErrorKind::Proto,
            "`sources` must be an array of label indices",
        )),
        None => {
            let eff = db.effects();
            Ok(program
                .all_labels()
                .filter(|&l| match program.kind(program.lam_of_label(l)) {
                    ExprKind::Lam { body, .. } => eff.is_effectful(*body),
                    _ => false,
                })
                .collect())
        }
    }
}

/// Validates an expression-index parameter against the program.
fn expr_param(v: &Json, program: &Program, field: &str) -> Result<ExprId, RequestError> {
    let index = v.as_u64().ok_or_else(|| {
        RequestError::new(
            ErrorKind::Proto,
            format!("`{field}` must be an expression index"),
        )
    })?;
    if (index as usize) >= program.size() {
        return Err(RequestError::new(
            ErrorKind::Proto,
            format!(
                "`{field}` {index} out of range (program has {} expressions)",
                program.size()
            ),
        ));
    }
    Ok(ExprId::from_index(index as usize))
}

/// Validates a label-index parameter against the program.
fn label_param(request: &Json, program: &Program) -> Result<Label, RequestError> {
    let index = request
        .get("label")
        .and_then(Json::as_u64)
        .ok_or_else(|| RequestError::new(ErrorKind::Proto, "request needs a `label` index"))?;
    if (index as usize) >= program.label_count() {
        return Err(RequestError::new(
            ErrorKind::Proto,
            format!(
                "`label` {index} out of range (program has {} labels)",
                program.label_count()
            ),
        ));
    }
    Ok(Label::from_index(index as usize))
}

/// Renders a label set as indices plus display names (`λx#0`, as the CLI
/// prints them).
fn labels_json(program: &Program, labels: &[Label]) -> Json {
    let names: Vec<Json> = labels
        .iter()
        .map(|&l| {
            let lam = program.lam_of_label(l);
            let ExprKind::Lam { param, .. } = program.kind(lam) else {
                unreachable!()
            };
            Json::str(format!("λ{}#{}", program.var_name(*param), l.index()))
        })
        .collect();
    Json::obj(vec![
        ("count", Json::num(labels.len() as u64)),
        (
            "labels",
            Json::Arr(labels.iter().map(|l| Json::num(l.index() as u64)).collect()),
        ),
        ("names", Json::Arr(names)),
    ])
}

// --- pipeline plumbing ------------------------------------------------------

struct Job {
    seq: u64,
    line: String,
    received: Instant,
}

#[derive(Default)]
struct PipeState {
    pending: VecDeque<Job>,
    input_done: bool,
    /// Latched after a shutdown response is enqueued: the reader stops
    /// accepting new requests, workers drain and exit.
    stopped: bool,
}

#[derive(Default)]
struct PipeShared {
    state: Mutex<PipeState>,
    work_cv: Condvar,
}

impl PipeShared {
    /// Enqueues a line unless the pipeline has latched shutdown; returns
    /// whether the reader should keep going.
    fn push(&self, seq: u64, line: String, received: Instant) -> bool {
        let mut state = self.state.lock().expect("pipe lock poisoned");
        if state.stopped {
            return false;
        }
        state.pending.push_back(Job {
            seq,
            line,
            received,
        });
        self.work_cv.notify_one();
        true
    }

    fn finish_input(&self) {
        let mut state = self.state.lock().expect("pipe lock poisoned");
        state.input_done = true;
        self.work_cv.notify_all();
    }

    fn latch_stop(&self) {
        let mut state = self.state.lock().expect("pipe lock poisoned");
        state.stopped = true;
        self.work_cv.notify_all();
    }

    /// The next job, or `None` when the pipeline is done (input ended or
    /// shutdown latched) **and** the queue is drained.
    fn next_job(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("pipe lock poisoned");
        loop {
            if let Some(job) = state.pending.pop_front() {
                return Some(job);
            }
            if state.input_done || state.stopped {
                return None;
            }
            let (guard, _) = self
                .work_cv
                .wait_timeout(state, Duration::from_millis(50))
                .expect("pipe lock poisoned");
            state = guard;
        }
    }
}

struct OutState {
    next_seq: u64,
    ready: BTreeMap<u64, String>,
    workers_active: usize,
}

/// Whether a request line must execute in stream order (see
/// [`Server::handle_line_gated`]). A conservative substring check: every
/// `session/*` op's line contains `"session/` and every `evict` op's
/// line contains `"evict"`, so there are no false negatives; a false
/// positive (the marker inside a source string) merely orders one extra
/// request, which is harmless.
fn needs_order(line: &str) -> bool {
    line.contains("\"session/") || line.contains("\"evict\"")
}

/// The pipeline's sequence gate: tracks which request sequence numbers
/// have been answered and lets an order-sensitive request wait until
/// everything before it has.
#[derive(Default)]
struct SeqGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    /// The first sequence number not yet completed.
    watermark: u64,
    /// Completed sequence numbers at or above the watermark.
    done: BTreeSet<u64>,
}

impl SeqGate {
    /// Blocks until every request before `seq` has completed.
    fn wait_for_turn(&self, seq: u64) {
        let mut state = self.state.lock().expect("seq gate poisoned");
        while state.watermark < seq {
            state = self.cv.wait(state).expect("seq gate poisoned");
        }
    }

    /// Marks `seq` complete and advances the watermark past every
    /// contiguously completed sequence number.
    fn complete(&self, seq: u64) {
        let mut state = self.state.lock().expect("seq gate poisoned");
        state.done.insert(seq);
        while state.done.contains(&state.watermark) {
            let w = state.watermark;
            state.done.remove(&w);
            state.watermark += 1;
        }
        self.cv.notify_all();
    }
}

/// Spawns the detached reader thread: lines in, jobs out. Detached on
/// purpose — see [`Server::serve`].
fn spawn_reader<R: BufRead + Send + 'static>(mut reader: R, shared: Arc<PipeShared>) {
    std::thread::spawn(move || {
        let mut seq = 0u64;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    let received = Instant::now();
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue; // blank keep-alive lines get no response
                    }
                    if !shared.push(seq, trimmed.to_owned(), received) {
                        break;
                    }
                    seq += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        shared.finish_input();
    });
}

/// A line reader over a read-timeout TCP stream: `WouldBlock`/`TimedOut`
/// reads poll the daemon's stop flag instead of erroring out, so idle
/// connections participate in graceful shutdown.
struct TimeoutLineReader {
    inner: BufReader<TcpStream>,
    stop: Arc<AtomicBool>,
}

impl io::Read for TimeoutLineReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(&mut self.inner, buf)
    }
}

impl BufRead for TimeoutLineReader {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.inner.consume(amt)
    }

    fn read_line(&mut self, buf: &mut String) -> io::Result<usize> {
        loop {
            match self.inner.read_line(buf) {
                Ok(n) => return Ok(n),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.stop.load(Ordering::SeqCst) {
                        return Ok(0); // treat daemon shutdown as EOF
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(ServerOptions {
            threads: 2,
            ..Default::default()
        })
    }

    fn call(server: &Server, line: &str) -> Json {
        Json::parse(&server.handle_line(line, Instant::now())).expect("response is valid JSON")
    }

    #[test]
    fn analyze_then_query_round_trip() {
        let s = server();
        let r = call(
            &s,
            r#"{"v":1,"id":1,"op":"analyze","source":"(fn x => x x) (fn y => y)"}"#,
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("id").and_then(Json::as_u64), Some(1));
        let digest = r
            .get("result")
            .and_then(|res| res.get("snapshot"))
            .and_then(Json::as_str)
            .expect("digest")
            .to_owned();
        let q = call(
            &s,
            &format!(r#"{{"op":"query","kind":"label-set","snapshot":"{digest}"}}"#),
        );
        let result = q.get("result").expect("ok");
        assert_eq!(result.get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(
            result
                .get("names")
                .and_then(Json::as_arr)
                .and_then(|a| a[0].as_str()),
            Some("λy#1")
        );
    }

    #[test]
    fn opt_op_requires_protocol_two() {
        let s = server();
        let r = call(&s, r#"{"op":"opt","source":"(fn x => x) 1"}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        let msg = r
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(msg.contains("\"v\":2"), "{msg}");
    }

    #[test]
    fn opt_round_trip_reuses_snapshot() {
        let s = server();
        let r = call(
            &s,
            r#"{"v":1,"op":"analyze","source":"let val f = fn x => x + 1 in f 41 end"}"#,
        );
        let digest = r
            .get("result")
            .and_then(|res| res.get("snapshot"))
            .and_then(Json::as_str)
            .expect("digest")
            .to_owned();
        let o = call(
            &s,
            &format!(r#"{{"v":2,"op":"opt","snapshot":"{digest}","emit":true}}"#),
        );
        let result = o.get("result").unwrap_or_else(|| panic!("{o:?}"));
        assert!(result.get("performed").and_then(Json::as_u64) >= Some(1));
        let before = result.get("nodes_before").and_then(Json::as_u64).unwrap();
        let after = result.get("nodes_after").and_then(Json::as_u64).unwrap();
        assert!(after < before, "{o:?}");
        let source = result.get("source").and_then(Json::as_str).expect("emit");
        assert!(source.contains("41"), "{source}");
        assert!(!result
            .get("passes")
            .and_then(Json::as_arr)
            .expect("passes")
            .is_empty());
    }

    #[test]
    fn opt_rejects_unknown_pass() {
        let s = server();
        let r = call(
            &s,
            r#"{"v":2,"op":"opt","source":"1 + 1","passes":["fuse-loops"]}"#,
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        let msg = r
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(msg.contains("unknown pass"), "{msg}");
    }

    #[test]
    fn rule_op_requires_protocol_two() {
        let s = server();
        let r = call(
            &s,
            r#"{"op":"rule","name":"dominators","source":"fun f x = x; f 1"}"#,
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        let msg = r
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(msg.contains("\"v\":2"), "{msg}");
    }

    #[test]
    fn rule_dominators_round_trip() {
        let s = server();
        let r = call(
            &s,
            r#"{"v":2,"op":"rule","name":"dominators","source":"fun f x = x; fun g y = f y; g 2"}"#,
        );
        let result = r.get("result").unwrap_or_else(|| panic!("{r:?}"));
        assert_eq!(
            result.get("rule").and_then(Json::as_str),
            Some("dominators")
        );
        let entry = result.get("entry").and_then(Json::as_u64).expect("entry");
        let nodes = result.get("nodes").and_then(Json::as_arr).expect("nodes");
        assert!(!nodes.is_empty());
        // The entry node is reachable and dominated only by itself.
        let entry_row = nodes
            .iter()
            .find(|n| n.get("node").and_then(Json::as_u64) == Some(entry))
            .expect("entry row");
        let doms = entry_row.get("doms").and_then(Json::as_arr).unwrap();
        assert_eq!(doms.len(), 1);
        // Every reachable node is dominated by the entry.
        for n in nodes {
            let doms = n.get("doms").and_then(Json::as_arr).unwrap();
            assert!(doms.iter().any(|d| d.as_u64() == Some(entry)), "{n:?}");
        }
    }

    #[test]
    fn rule_taint_full_and_demand_agree() {
        let s = server();
        let src = "fun apply f = fn y => f y; apply (fn n => print n) 7";
        let r = call(
            &s,
            &format!(r#"{{"v":2,"op":"rule","name":"taint","source":"{src}"}}"#),
        );
        let result = r.get("result").unwrap_or_else(|| panic!("{r:?}"));
        let tainted = result.get("tainted").and_then(Json::as_arr).expect("list");
        assert!(!tainted.is_empty(), "the printer flows somewhere");
        let first = tainted[0].as_u64().unwrap();
        let q = call(
            &s,
            &format!(r#"{{"v":2,"op":"rule","name":"taint","source":"{src}","expr":{first}}}"#),
        );
        let result = q.get("result").unwrap_or_else(|| panic!("{q:?}"));
        assert_eq!(result.get("tainted"), Some(&Json::Bool(true)));
        // Explicit empty sources taint nothing.
        let q = call(
            &s,
            &format!(r#"{{"v":2,"op":"rule","name":"taint","source":"{src}","sources":[]}}"#),
        );
        let result = q.get("result").unwrap();
        assert_eq!(
            result
                .get("tainted")
                .and_then(Json::as_arr)
                .map(|a| a.len()),
            Some(0)
        );
    }

    #[test]
    fn rule_errors_are_structured() {
        let s = server();
        let msg = |r: &Json| {
            r.get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .map(str::to_owned)
                .unwrap_or_else(|| panic!("{r:?}"))
        };
        let r = call(
            &s,
            r#"{"v":2,"op":"rule","name":"nosuch","source":"fun f x = x; f 1"}"#,
        );
        assert!(msg(&r).contains("dominators|taint"), "{r:?}");
        let r = call(&s, r#"{"v":2,"op":"rule","source":"fun f x = x; f 1"}"#);
        assert!(msg(&r).contains("needs `name`"), "{r:?}");
        let r = call(
            &s,
            r#"{"v":2,"op":"rule","name":"taint","sources":[9999],"source":"fun f x = x; f 1"}"#,
        );
        assert!(msg(&r).contains("label indices"), "{r:?}");
    }

    #[test]
    fn second_analyze_is_a_cache_hit() {
        let s = server();
        let line = r#"{"op":"analyze","source":"fun id x = x; id (fn u => u)"}"#;
        let first = call(&s, line);
        let second = call(&s, line);
        let cached = |r: &Json| {
            r.get("result")
                .and_then(|res| res.get("cached"))
                .and_then(Json::as_bool)
        };
        assert_eq!(cached(&first), Some(false));
        assert_eq!(cached(&second), Some(true));
        let stats = call(&s, r#"{"op":"stats"}"#);
        let cache = stats
            .get("result")
            .and_then(|r| r.get("cache"))
            .expect("cache stats");
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn structured_errors_cover_the_failure_modes() {
        let s = server();
        let kind = |r: &Json| {
            r.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str)
                .map(str::to_owned)
        };
        assert_eq!(
            kind(&call(&s, "this is not json")).as_deref(),
            Some("proto")
        );
        assert_eq!(
            kind(&call(&s, r#"{"op":"analyze","source":"fn x =>"}"#)).as_deref(),
            Some("parse")
        );
        assert_eq!(
            kind(&call(
                &s,
                r#"{"op":"analyze","source":"(fn x => x x) (fn x => x x)"}"#
            ))
            .as_deref(),
            Some("analysis"),
            "omega has unbounded types: the close phase rejects it"
        );
        assert_eq!(
            kind(&call(
                &s,
                r#"{"op":"query","kind":"label-set","snapshot":"00000000deadbeef"}"#
            ))
            .as_deref(),
            Some("unknown-snapshot")
        );
        assert_eq!(
            kind(&call(&s, r#"{"v":3,"op":"stats"}"#)).as_deref(),
            Some("proto")
        );
        assert_eq!(
            kind(&call(&s, r#"{"op":"frobnicate"}"#)).as_deref(),
            Some("proto")
        );
        // Session ops demand v2 and a known session id.
        assert_eq!(
            kind(&call(&s, r#"{"op":"session/query","session":"s"}"#)).as_deref(),
            Some("proto"),
            "session ops without v:2 are protocol errors"
        );
        assert_eq!(
            kind(&call(
                &s,
                r#"{"v":2,"op":"session/query","session":"s","kind":"label-set"}"#
            ))
            .as_deref(),
            Some("unknown-session")
        );
    }

    #[test]
    fn deadline_zero_times_out_but_daemon_survives() {
        let s = server();
        let r = call(
            &s,
            r#"{"op":"analyze","source":"(fn x => x) (fn y => y)","deadline_ms":0}"#,
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            r.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("timeout")
        );
        // The daemon keeps serving afterwards.
        let ok = call(&s, r#"{"op":"analyze","source":"(fn x => x) (fn y => y)"}"#);
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn evicted_snapshot_is_reported_stale() {
        let s = server();
        let r = call(&s, r#"{"op":"analyze","source":"(fn a => a) (fn b => b)"}"#);
        let digest = r
            .get("result")
            .and_then(|res| res.get("snapshot"))
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        let e = call(&s, &format!(r#"{{"op":"evict","snapshot":"{digest}"}}"#));
        assert_eq!(
            e.get("result").and_then(|res| res.get("evicted")),
            Some(&Json::Bool(true))
        );
        let q = call(
            &s,
            &format!(r#"{{"op":"query","kind":"label-set","snapshot":"{digest}"}}"#),
        );
        assert_eq!(
            q.get("error")
                .and_then(|err| err.get("kind"))
                .and_then(Json::as_str),
            Some("stale-snapshot")
        );
    }

    #[test]
    fn pipeline_orders_responses_and_drains_on_shutdown() {
        let s = server();
        let input = concat!(
            r#"{"id":0,"op":"analyze","source":"(fn x => x) (fn y => y)"}"#,
            "\n",
            r#"{"id":1,"op":"query","kind":"label-set","source":"(fn x => x) (fn y => y)"}"#,
            "\n",
            r#"{"id":2,"op":"shutdown"}"#,
            "\n",
        );
        let mut out = Vec::new();
        s.serve(io::Cursor::new(input.to_owned()), &mut out)
            .unwrap();
        let lines: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(
                line.get("id").and_then(Json::as_u64),
                Some(i as u64),
                "order"
            );
            assert_eq!(line.get("ok"), Some(&Json::Bool(true)));
        }
        assert!(s.is_stopping());
    }

    /// A writer whose client vanished: the first `allow` writes succeed,
    /// every later one reports a broken pipe.
    struct BrokenPipe {
        allow: usize,
    }

    impl Write for BrokenPipe {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.allow == 0 {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "client gone"));
            }
            self.allow -= 1;
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writer_error_mid_burst_drains_instead_of_hanging() {
        let s = server();
        // More requests than workers, so responses keep arriving after
        // the write error; the drain must still terminate.
        let input: String = (0..8)
            .map(|i| format!(r#"{{"id":{i},"op":"analyze","source":"(fn x => x) (fn y => y)"}}"#))
            .map(|l| l + "\n")
            .collect();
        let err = s
            .serve(io::Cursor::new(input), BrokenPipe { allow: 1 })
            .expect_err("the write failure must surface");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn session_open_update_query_close_round_trip() {
        let s = server();
        let open = call(
            &s,
            r#"{"v":2,"id":1,"op":"session/open","session":"w","modules":[{"name":"util","source":"fun id x = x;"},{"name":"main","source":"id (fn u => u)"}]}"#,
        );
        assert_eq!(
            open.get("ok"),
            Some(&Json::Bool(true)),
            "{}",
            open.to_line()
        );
        assert_eq!(open.get("v").and_then(Json::as_u64), Some(2));
        let result = open.get("result").unwrap();
        let digest = result
            .get("digest")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        assert_eq!(result.get("relinked").and_then(Json::as_u64), Some(2));
        let modules = result.get("modules").and_then(Json::as_arr).unwrap();
        assert_eq!(
            modules[1].get("imports").and_then(Json::as_arr).unwrap()[0].as_str(),
            Some("util")
        );

        // Default query target: the trailing value of the last module.
        let q = call(
            &s,
            r#"{"v":2,"op":"session/query","session":"w","kind":"label-set"}"#,
        );
        let qr = q.get("result").unwrap();
        assert_eq!(
            qr.get("count").and_then(Json::as_u64),
            Some(1),
            "{}",
            q.to_line()
        );

        // Querying a top-level binder by name.
        let qn = call(
            &s,
            r#"{"v":2,"op":"session/query","session":"w","kind":"label-set","name":"id"}"#,
        );
        assert_eq!(qn.get("ok"), Some(&Json::Bool(true)), "{}", qn.to_line());

        // The pinned snapshot refuses eviction while the session is open.
        let ev = call(&s, &format!(r#"{{"op":"evict","snapshot":"{digest}"}}"#));
        assert_eq!(
            ev.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("pinned-snapshot")
        );

        // An update of the last module reuses the first one's checkpoint.
        let up = call(
            &s,
            r#"{"v":2,"op":"session/update","session":"w","modules":[{"name":"main","source":"id (fn v => v) "}]}"#,
        );
        let ur = up.get("result").unwrap();
        assert_eq!(
            ur.get("reused").and_then(Json::as_u64),
            Some(1),
            "{}",
            up.to_line()
        );
        assert_eq!(ur.get("relinked").and_then(Json::as_u64), Some(1));

        // Close releases the pin; the old digest was already unpinned by
        // the update, so both generations are now evictable.
        let close = call(&s, r#"{"v":2,"op":"session/close","session":"w"}"#);
        assert_eq!(
            close
                .get("result")
                .and_then(|r| r.get("closed"))
                .and_then(Json::as_bool),
            Some(true)
        );
        let ev2 = call(&s, &format!(r#"{{"op":"evict","snapshot":"{digest}"}}"#));
        assert_eq!(ev2.get("ok"), Some(&Json::Bool(true)), "{}", ev2.to_line());
    }

    #[test]
    fn failed_session_update_rolls_back_and_keeps_serving() {
        let s = server();
        let open = call(
            &s,
            r#"{"v":2,"op":"session/open","session":"w","modules":[{"name":"a","source":"fun f x = x;"},{"name":"b","source":"f (fn u => u)"}]}"#,
        );
        assert_eq!(
            open.get("ok"),
            Some(&Json::Bool(true)),
            "{}",
            open.to_line()
        );
        let bad = call(
            &s,
            r#"{"v":2,"op":"session/update","session":"w","modules":[{"name":"b","source":"nosuchname 3"}]}"#,
        );
        assert_eq!(
            bad.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("parse")
        );
        assert!(
            bad.to_line().contains("module `b`"),
            "the error names the module: {}",
            bad.to_line()
        );
        // The session still answers from the pre-update snapshot.
        let q = call(
            &s,
            r#"{"v":2,"op":"session/query","session":"w","kind":"label-set","name":"f"}"#,
        );
        assert_eq!(q.get("ok"), Some(&Json::Bool(true)), "{}", q.to_line());
        // Stats count the open session and its pin.
        let stats = call(&s, r#"{"op":"stats"}"#);
        let result = stats.get("result").unwrap();
        assert_eq!(result.get("sessions").and_then(Json::as_u64), Some(1));
        let cache = result.get("cache").unwrap();
        assert_eq!(cache.get("pinned").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn session_transcripts_are_thread_count_independent() {
        let input = concat!(
            r#"{"v":2,"id":0,"op":"session/open","session":"w","modules":[{"name":"a","source":"fun f x = x;"},{"name":"b","source":"f (fn u => u)"}]}"#,
            "\n",
            r#"{"v":2,"id":1,"op":"session/query","session":"w","kind":"label-set"}"#,
            "\n",
            r#"{"v":2,"id":2,"op":"session/update","session":"w","modules":[{"name":"b","source":"f (fn v => v)"}]}"#,
            "\n",
            r#"{"v":2,"id":3,"op":"session/query","session":"w","kind":"label-set"}"#,
            "\n",
            r#"{"v":2,"id":4,"op":"session/lint","session":"w"}"#,
            "\n",
            r#"{"v":2,"id":5,"op":"session/close","session":"w"}"#,
            "\n",
            r#"{"id":6,"op":"shutdown"}"#,
            "\n",
        );
        let mut transcripts = Vec::new();
        for threads in [1, 2, 8] {
            let s = Server::new(ServerOptions {
                threads,
                ..Default::default()
            });
            let mut out = Vec::new();
            s.serve(io::Cursor::new(input.to_owned()), &mut out)
                .unwrap();
            transcripts.push(String::from_utf8(out).unwrap());
        }
        assert_eq!(transcripts[0], transcripts[1]);
        assert_eq!(transcripts[0], transcripts[2]);
        assert_eq!(transcripts[0].lines().count(), 7);
    }

    #[test]
    fn lint_reports_diagnostics_over_the_snapshot() {
        let s = server();
        let r = call(&s, r#"{"op":"lint","source":"fun ghost x = x;\n(1, 2) 3"}"#);
        let result = r.get("result").expect("ok response");
        assert!(result.get("count").and_then(Json::as_u64).unwrap() >= 2);
        let rendered = r.to_line();
        assert!(rendered.contains("STCFA002"), "{rendered}");
        assert!(rendered.contains("STCFA006"), "{rendered}");
    }
}
