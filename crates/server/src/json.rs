//! A minimal JSON value type, parser and writer — just enough for the
//! line-delimited request/response protocol, with zero dependencies.
//!
//! Design constraints inherited from the protocol:
//!
//! - **Deterministic output.** Objects serialize in insertion order and
//!   numbers in a canonical form, so a response's bytes are a pure
//!   function of its value — the thread-invariance tests compare raw
//!   transcript bytes.
//! - **Bounded parsing.** Input depth is limited (64 levels) so a
//!   malicious request line cannot overflow the worker's stack; any
//!   parse failure is a recoverable [`JsonError`], never a panic.
//! - **Integer-exact ids.** Numbers are stored as `f64` but written as
//!   integers whenever they are integral and within the safe `i64`
//!   range, so request ids round-trip byte-identically.

use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see the module docs for integer formatting).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved and significant for output.
    Obj(Vec<(String, Json)>),
}

/// A recoverable parse failure, with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input line.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from an unsigned integer.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Looks up `key` in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Serializes to the canonical single-line form (no added whitespace).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                // Canonical: integral safe values print without a dot.
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{token}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if self.peek() != Some(b':') {
                        return Err(self.err("expected `:` after object key"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected byte 0x{b:02x}"))),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected a string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // past the low 'u' digit block start
                                self.eat("\\u")
                                    .map_err(|_| self.err("unpaired UTF-16 surrogate"))?;
                                self.pos -= 1; // hex4 advances from the digits
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Reads the 4 hex digits after a `\u` escape; `self.pos` is on the
    /// `u` when called and on the last digit when returning.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            self.pos += 1;
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let line = r#"{"v":1,"id":42,"op":"analyze","source":"fun id x = x;","deadline_ms":250}"#;
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("analyze"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(42));
        assert_eq!(v.to_line(), line, "canonical form round-trips");
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#"{"s":"a\"b\\c\nd\u00e9\ud83d\ude00"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\\c\ndé😀"));
        // Output escapes control characters but passes unicode through.
        assert_eq!(Json::str("x\ny").to_line(), r#""x\ny""#);
        assert_eq!(Json::str("dé").to_line(), "\"dé\"");
    }

    #[test]
    fn rejects_malformed_input_without_panicking() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "nul",
            "-",
            "\"\\q\"",
            "\"\\ud800x\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err(), "must not recurse unboundedly");
    }

    #[test]
    fn numbers_canonicalize() {
        assert_eq!(Json::parse("3.0").unwrap().to_line(), "3");
        assert_eq!(Json::parse("-7").unwrap().to_line(), "-7");
        assert_eq!(Json::parse("2.5").unwrap().to_line(), "2.5");
        assert_eq!(Json::Num(f64::NAN).to_line(), "null");
        assert_eq!(Json::parse("1e3").unwrap().to_line(), "1000");
    }

    #[test]
    fn object_lookup_and_order() {
        let v = Json::obj(vec![("b", Json::num(2)), ("a", Json::num(1))]);
        assert_eq!(v.to_line(), r#"{"b":2,"a":1}"#, "insertion order preserved");
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("missing"), None);
    }
}
