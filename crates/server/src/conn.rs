//! Per-connection state for the event-loop transport: incremental line
//! framing over a nonblocking stream, a buffered ordered writer, and the
//! per-connection sequence gate that keeps transcripts byte-identical at
//! any shard/worker count.
//!
//! A [`Conn`] owns one client stream and never blocks on it: reads and
//! writes stop at `WouldBlock` and resume on the next event-loop sweep.
//! Every framed request line gets the next sequence number; responses
//! are appended to the write buffer strictly in that order regardless of
//! which shard worker finished first. Order-sensitive lines (the
//! stateful `session/*` ops and `evict`) are *held* inside the
//! connection until every earlier request has been answered, and only
//! then dispatched — the same observable semantics as the stdio
//! pipeline's sequence gate, but enforced at dispatch time so shard
//! workers never block on each other (a blocking gate can deadlock a
//! pool where every worker waits on a task queued behind it).
//!
//! Backpressure is the absence of a read: once the connection has
//! [`ConnLimits::conn_inflight`] unanswered requests, or its write
//! buffer exceeds [`ConnLimits::wbuf_soft_cap`] because the client reads
//! slowly, [`Conn::wants_read`] goes false and the event loop simply
//! stops pulling bytes. The kernel's TCP window does the rest.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::time::Instant;

/// Read chunk size per `read(2)` attempt.
const READ_CHUNK: usize = 16 * 1024;

/// Per-sweep read budget, so one fire-hosing connection cannot starve
/// the rest of the loop.
const READ_BUDGET: usize = 256 * 1024;

/// A request line longer than this is refused (the connection is marked
/// broken): the fleet's buffers are bounded by construction.
pub const MAX_LINE: usize = 32 * 1024 * 1024;

/// Admission limits applied by the event loop through [`Conn`].
#[derive(Clone, Copy, Debug)]
pub struct ConnLimits {
    /// Maximum framed-but-unanswered requests per connection before the
    /// loop stops reading from it.
    pub conn_inflight: usize,
    /// Write-buffer size past which the loop stops reading (slow-reader
    /// backpressure): the client must drain responses to submit more.
    pub wbuf_soft_cap: usize,
}

impl Default for ConnLimits {
    fn default() -> ConnLimits {
        ConnLimits {
            conn_inflight: 64,
            wbuf_soft_cap: 1 << 20,
        }
    }
}

/// One framed request line, ready for admission control and dispatch.
#[derive(Debug)]
pub struct Frame {
    /// Per-connection sequence number (0-based over non-blank lines).
    pub seq: u64,
    /// The trimmed request line.
    pub line: String,
    /// When the line was framed (anchors the request deadline).
    pub received: Instant,
}

/// What one read sweep produced.
#[derive(Debug, Default)]
pub struct Pumped {
    /// Lines that may dispatch immediately (order-insensitive, or
    /// order-sensitive with nothing in front of them).
    pub dispatch: Vec<Frame>,
    /// Whether any bytes moved (resets the loop's backoff).
    pub progressed: bool,
}

/// Per-connection state: stream, framing buffers, and the ordered
/// response path. Generic over the stream so unit tests can inject
/// `WouldBlock`, partial reads/writes, and hard errors.
pub struct Conn<S> {
    stream: S,
    /// Stable identity for the event loop's tables and for completions.
    pub id: u64,
    rbuf: Vec<u8>,
    /// Frame scan resume offset: bytes before this contain no newline.
    scan: usize,
    wbuf: Vec<u8>,
    /// Next sequence number to assign to a framed line.
    next_seq: u64,
    /// Next sequence number to append to the write buffer: every seq
    /// below this has been answered and emitted, in order.
    emit_next: u64,
    /// Finished responses waiting for their turn in the write buffer.
    ready: BTreeMap<u64, String>,
    /// Order-sensitive lines waiting for `emit_next` to reach them.
    held: BTreeMap<u64, Frame>,
    /// Client sent EOF (or a read error): no more frames will arrive.
    read_closed: bool,
    /// The write side failed (or the line cap tripped): the connection
    /// is beyond use and should be reaped without further I/O.
    dead: bool,
}

impl<S: Read + Write> Conn<S> {
    /// Wraps an already-nonblocking stream.
    pub fn new(stream: S, id: u64) -> Conn<S> {
        Conn {
            stream,
            id,
            rbuf: Vec::new(),
            scan: 0,
            wbuf: Vec::new(),
            next_seq: 0,
            emit_next: 0,
            ready: BTreeMap::new(),
            held: BTreeMap::new(),
            read_closed: false,
            dead: false,
        }
    }

    /// Framed-but-unanswered request count (dispatched, held, or ready
    /// but not yet emitted).
    pub fn inflight(&self) -> usize {
        (self.next_seq - self.emit_next) as usize
    }

    /// Unflushed response bytes.
    pub fn wbuf_len(&self) -> usize {
        self.wbuf.len()
    }

    /// Whether the event loop should pull bytes from this connection:
    /// false once the client is gone, the connection broke, or either
    /// backpressure limit is hit.
    pub fn wants_read(&self, limits: &ConnLimits) -> bool {
        !self.read_closed
            && !self.dead
            && self.inflight() < limits.conn_inflight.max(1)
            && self.wbuf.len() < limits.wbuf_soft_cap.max(1)
    }

    /// Reads until `WouldBlock`, EOF, or the per-sweep budget, framing
    /// complete lines. Order-insensitive frames come back for immediate
    /// dispatch; order-sensitive ones are held internally until their
    /// turn (see [`Conn::complete`]). Respects the limits *between*
    /// chunks so a single sweep cannot blow far past `conn_inflight`.
    pub fn pump_read(&mut self, limits: &ConnLimits, order_sensitive: fn(&str) -> bool) -> Pumped {
        let mut out = Pumped::default();
        if self.dead || self.read_closed {
            return out;
        }
        let mut budget = READ_BUDGET;
        loop {
            if !self.wants_read(limits) || budget == 0 {
                break;
            }
            let old_len = self.rbuf.len();
            if old_len >= MAX_LINE {
                // A frame longer than the cap: the client is broken or
                // hostile; refuse the connection rather than buffer
                // without bound.
                self.dead = true;
                break;
            }
            self.rbuf.resize(old_len + READ_CHUNK.min(budget), 0);
            match self.stream.read(&mut self.rbuf[old_len..]) {
                Ok(0) => {
                    self.rbuf.truncate(old_len);
                    self.read_closed = true;
                    out.progressed = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.truncate(old_len + n);
                    budget = budget.saturating_sub(n);
                    out.progressed = true;
                    self.extract_frames(&mut out, order_sensitive);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.rbuf.truncate(old_len);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    self.rbuf.truncate(old_len);
                }
                Err(_) => {
                    self.rbuf.truncate(old_len);
                    // Hard read error: treat as EOF — answer what was
                    // framed, then reap.
                    self.read_closed = true;
                    out.progressed = true;
                    break;
                }
            }
        }
        out
    }

    /// Splits complete lines out of the read buffer. Blank lines are
    /// keep-alives and consume no sequence number (matching the stdio
    /// reader); lines are trimmed. Invalid UTF-8 is passed through
    /// lossily — the JSON parser turns it into a structured `proto`
    /// error, which is still a well-formed transcript entry.
    fn extract_frames(&mut self, out: &mut Pumped, order_sensitive: fn(&str) -> bool) {
        let mut start = 0;
        while let Some(nl) =
            find_byte(&self.rbuf[self.scan.max(start)..], b'\n').map(|i| i + self.scan.max(start))
        {
            let raw = &self.rbuf[start..nl];
            let line = String::from_utf8_lossy(raw);
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                let frame = Frame {
                    seq: self.next_seq,
                    line: trimmed.to_owned(),
                    received: Instant::now(),
                };
                self.next_seq += 1;
                if order_sensitive(trimmed) && frame.seq != self.emit_next {
                    self.held.insert(frame.seq, frame);
                } else {
                    out.dispatch.push(frame);
                }
            }
            start = nl + 1;
            self.scan = start;
        }
        if start > 0 {
            self.rbuf.drain(..start);
            self.scan = self.rbuf.len();
        } else {
            self.scan = self.rbuf.len();
        }
    }

    /// Records the response for `seq` and advances the ordered emit
    /// point, appending every now-unblocked response to the write
    /// buffer. Returns the next *held* order-sensitive frame if this
    /// completion made it dispatchable.
    pub fn complete(&mut self, seq: u64, response: String) -> Option<Frame> {
        debug_assert!(seq >= self.emit_next && seq < self.next_seq);
        self.ready.insert(seq, response);
        while let Some(response) = self.ready.remove(&self.emit_next) {
            if !self.dead {
                self.wbuf.extend_from_slice(response.as_bytes());
                self.wbuf.push(b'\n');
            }
            self.emit_next += 1;
        }
        match self.held.first_key_value() {
            Some((&s, _)) if s == self.emit_next => self.held.remove(&s),
            _ => None,
        }
    }

    /// Flushes as much of the write buffer as the socket accepts.
    /// Returns whether any bytes moved. A hard write error (client
    /// vanished) marks the connection dead; like the stdio writer,
    /// remaining responses are discarded rather than blocking the
    /// daemon.
    pub fn pump_write(&mut self) -> bool {
        if self.dead || self.wbuf.is_empty() {
            return false;
        }
        let mut written = 0;
        while written < self.wbuf.len() {
            match self.stream.write(&self.wbuf[written..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.dead {
            self.wbuf.clear();
            return written > 0;
        }
        if written > 0 {
            self.wbuf.drain(..written);
            let _ = self.stream.flush();
            return true;
        }
        false
    }

    /// Every framed request answered (its response emitted to the write
    /// buffer), flushed or not.
    pub fn emit_done(&self) -> bool {
        self.emit_next == self.next_seq
    }

    /// Every framed request answered and every response byte flushed.
    pub fn drained(&self) -> bool {
        self.emit_done() && self.wbuf.is_empty()
    }

    /// Requests still executing or queued on a shard (not held here):
    /// the event loop must wait for these completions before reaping.
    pub fn outstanding_dispatched(&self) -> usize {
        self.inflight() - self.held.len() - self.ready.len()
    }

    /// The connection can be dropped: it broke, or the client hung up
    /// and everything it asked for has been answered and flushed.
    pub fn reapable(&self) -> bool {
        (self.dead || (self.read_closed && self.drained())) && self.outstanding_dispatched() == 0
    }

    /// Whether the write side failed (responses are being discarded).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Whether the client has closed its write half.
    pub fn is_read_closed(&self) -> bool {
        self.read_closed
    }
}

fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    haystack.iter().position(|&b| b == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A scripted stream: reads serve queued chunks then `WouldBlock`
    /// (or EOF once the queue is empty and `eof` is set); writes spend
    /// `write_window` bytes per *sweep* (replenished by the test), then
    /// `WouldBlock`.
    #[derive(Default)]
    struct FakeStream {
        to_read: VecDeque<Vec<u8>>,
        eof: bool,
        written: Vec<u8>,
        write_window: Option<usize>,
        write_broken: bool,
    }

    impl Read for FakeStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.to_read.pop_front() {
                Some(chunk) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        self.to_read.push_front(chunk[n..].to_vec());
                    }
                    Ok(n)
                }
                None if self.eof => Ok(0),
                None => Err(io::Error::from(io::ErrorKind::WouldBlock)),
            }
        }
    }

    impl Write for FakeStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.write_broken {
                return Err(io::Error::from(io::ErrorKind::BrokenPipe));
            }
            let n = match self.write_window {
                Some(0) => return Err(io::Error::from(io::ErrorKind::WouldBlock)),
                Some(w) => w.min(buf.len()),
                None => buf.len(),
            };
            if let Some(w) = self.write_window.as_mut() {
                *w -= n;
            }
            self.written.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn never_ordered(_: &str) -> bool {
        false
    }

    fn session_ordered(line: &str) -> bool {
        line.contains("\"session/")
    }

    #[test]
    fn frames_split_across_chunks_and_blank_lines_take_no_seq() {
        let mut stream = FakeStream::default();
        stream.to_read.push_back(b"{\"a\":1}\n\r\n{\"b\"".to_vec());
        stream.to_read.push_back(b":2}\n  \n{\"c\":3}\n".to_vec());
        let mut conn = Conn::new(stream, 0);
        let limits = ConnLimits::default();
        let pumped = conn.pump_read(&limits, never_ordered);
        assert!(pumped.progressed);
        let got: Vec<(u64, &str)> = pumped
            .dispatch
            .iter()
            .map(|f| (f.seq, f.line.as_str()))
            .collect();
        assert_eq!(
            got,
            vec![(0, "{\"a\":1}"), (1, "{\"b\":2}"), (2, "{\"c\":3}")],
            "blank/whitespace lines must not consume sequence numbers"
        );
        // The half-line "{\"c\"" case: an incomplete frame stays pending
        // without a response and without blocking.
        let mut stream = FakeStream::default();
        stream.to_read.push_back(b"{\"partial\"".to_vec());
        let mut conn = Conn::new(stream, 1);
        let pumped = conn.pump_read(&limits, never_ordered);
        assert!(pumped.dispatch.is_empty());
        assert_eq!(conn.inflight(), 0);
        assert!(!conn.is_read_closed());
    }

    #[test]
    fn responses_emit_in_seq_order_regardless_of_completion_order() {
        let mut stream = FakeStream::default();
        stream
            .to_read
            .push_back(b"{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n".to_vec());
        let mut conn = Conn::new(stream, 0);
        let limits = ConnLimits::default();
        let pumped = conn.pump_read(&limits, never_ordered);
        assert_eq!(pumped.dispatch.len(), 3);
        assert_eq!(conn.inflight(), 3);
        // Finish out of order: 2, 0, 1.
        assert!(conn.complete(2, "r2".into()).is_none());
        assert_eq!(conn.wbuf_len(), 0, "seq 2 must wait for 0 and 1");
        assert!(conn.complete(0, "r0".into()).is_none());
        assert!(conn.complete(1, "r1".into()).is_none());
        assert!(conn.pump_write());
        assert_eq!(conn.stream.written, b"r0\nr1\nr2\n");
        assert!(conn.drained());
    }

    #[test]
    fn order_sensitive_frames_hold_until_predecessors_complete() {
        let mut stream = FakeStream::default();
        stream
            .to_read
            .push_back(b"{\"q\":0}\n{\"op\":\"session/open\"}\n{\"q\":2}\n".to_vec());
        let mut conn = Conn::new(stream, 0);
        let limits = ConnLimits::default();
        let pumped = conn.pump_read(&limits, session_ordered);
        // The session op (seq 1) is held; 0 and 2 dispatch immediately.
        let seqs: Vec<u64> = pumped.dispatch.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 2]);
        assert_eq!(conn.outstanding_dispatched(), 2);
        // Completing 2 first does not release the held frame.
        assert!(conn.complete(2, "r2".into()).is_none());
        // Completing 0 does: the held op is now next in line.
        let released = conn.complete(0, "r0".into()).expect("hold must release");
        assert_eq!(released.seq, 1);
        assert!(conn.complete(1, "r1".into()).is_none());
        assert!(conn.pump_write());
        assert_eq!(conn.stream.written, b"r0\nr1\nr2\n");
        // An order-sensitive frame with nothing in front dispatches
        // immediately (no hold round-trip).
        let mut stream = FakeStream::default();
        stream
            .to_read
            .push_back(b"{\"op\":\"session/query\"}\n".to_vec());
        let mut conn = Conn::new(stream, 1);
        let pumped = conn.pump_read(&limits, session_ordered);
        assert_eq!(pumped.dispatch.len(), 1);
    }

    #[test]
    fn backpressure_stops_reading_at_inflight_and_wbuf_caps() {
        // Inflight cap: with conn_inflight=2, the third line stays in
        // the kernel (here: in the fake's queue).
        let mut stream = FakeStream::default();
        stream.to_read.push_back(b"{\"a\":1}\n{\"b\":2}\n".to_vec());
        stream.to_read.push_back(b"{\"c\":3}\n".to_vec());
        let mut conn = Conn::new(stream, 0);
        let limits = ConnLimits {
            conn_inflight: 2,
            wbuf_soft_cap: 1 << 20,
        };
        let pumped = conn.pump_read(&limits, never_ordered);
        assert_eq!(pumped.dispatch.len(), 2);
        assert!(!conn.wants_read(&limits), "at the cap: reads must stop");
        assert_eq!(conn.stream.to_read.len(), 1, "third chunk left unread");
        // Answering frees the slot and the loop reads again.
        conn.complete(0, "r0".into());
        conn.complete(1, "r1".into());
        assert!(conn.wants_read(&limits));
        let pumped = conn.pump_read(&limits, never_ordered);
        assert_eq!(pumped.dispatch.len(), 1);

        // Slow-reader cap: an unflushable write buffer past the soft cap
        // also stops reads.
        let mut stream = FakeStream {
            write_window: Some(0),
            ..Default::default()
        };
        stream.to_read.push_back(b"{\"a\":1}\n".to_vec());
        let mut conn = Conn::new(stream, 1);
        let limits = ConnLimits {
            conn_inflight: 64,
            wbuf_soft_cap: 4,
        };
        conn.pump_read(&limits, never_ordered);
        conn.complete(0, "a-long-response".into());
        assert!(!conn.pump_write(), "window 0: nothing flushes");
        assert!(!conn.wants_read(&limits), "wbuf over cap: reads must stop");
        // The client drains; reads resume.
        conn.stream.write_window = Some(1024);
        assert!(conn.pump_write());
        assert!(conn.wants_read(&limits));
    }

    #[test]
    fn partial_writes_resume_and_broken_pipe_discards() {
        let mut stream = FakeStream {
            write_window: Some(3),
            ..Default::default()
        };
        stream.to_read.push_back(b"{\"a\":1}\n".to_vec());
        let mut conn = Conn::new(stream, 0);
        let limits = ConnLimits::default();
        conn.pump_read(&limits, never_ordered);
        conn.complete(0, "0123456789".into());
        // 3 bytes of socket budget per sweep: several sweeps to drain
        // 11 bytes, each resuming exactly where the last stopped.
        let mut sweeps = 0;
        while !conn.drained() {
            conn.stream.write_window = Some(3);
            assert!(conn.pump_write(), "must make progress every sweep");
            sweeps += 1;
            assert!(sweeps < 16, "flush loop ran away");
        }
        assert_eq!(conn.stream.written, b"0123456789\n");
        assert!(sweeps >= 3);

        // Broken pipe: dead, buffer discarded, reapable once dispatched
        // work is back.
        let mut stream = FakeStream::default();
        stream.to_read.push_back(b"{\"a\":1}\n".to_vec());
        let mut conn = Conn::new(stream, 1);
        conn.pump_read(&limits, never_ordered);
        conn.stream.write_broken = true;
        assert!(!conn.reapable(), "one request still dispatched");
        conn.complete(0, "r0".into());
        conn.pump_write();
        assert!(conn.is_dead());
        assert_eq!(conn.wbuf_len(), 0, "dead connections hold no bytes");
        assert!(conn.reapable());
    }

    #[test]
    fn eof_with_outstanding_work_reaps_only_after_completion() {
        let mut stream = FakeStream::default();
        stream.to_read.push_back(b"{\"a\":1}\n".to_vec());
        stream.eof = true;
        let mut conn = Conn::new(stream, 0);
        let limits = ConnLimits::default();
        let pumped = conn.pump_read(&limits, never_ordered);
        assert_eq!(pumped.dispatch.len(), 1);
        assert!(conn.is_read_closed());
        assert!(
            !conn.reapable(),
            "mid-burst disconnect: the dispatched request must finish first"
        );
        conn.complete(0, "r0".into());
        conn.pump_write();
        assert!(conn.drained());
        assert!(conn.reapable(), "answered and flushed: slot must free");
    }

    #[test]
    fn oversized_line_kills_the_connection_instead_of_buffering() {
        let mut stream = FakeStream::default();
        // Feed newline-free garbage forever.
        for _ in 0..((MAX_LINE / (1 << 14)) + 4) {
            stream.to_read.push_back(vec![b'x'; 1 << 14]);
        }
        let mut conn = Conn::new(stream, 0);
        let limits = ConnLimits::default();
        let mut sweeps = 0;
        while !conn.is_dead() {
            conn.pump_read(&limits, never_ordered);
            sweeps += 1;
            assert!(sweeps < 4096, "line cap never tripped");
        }
        assert!(conn.reapable());
    }
}
