//! The sharded worker pool behind the event-loop transport.
//!
//! Requests carry an *affinity digest* (the snapshot content address
//! when one is derivable, a session-id hash for `session/*` ops, zero
//! when stateless). The digest picks the shard queue, so requests for
//! the same snapshot land on the same queue back-to-back and re-use
//! whatever that worker's caches (store LRU position, engine memo
//! tables, allocator locality) already hold — the CFL-reachability
//! economics: individual queries are cheap, so throughput comes from
//! affinity, not per-query cleverness.
//!
//! Workers never block on ordering: the per-connection gate lives in
//! [`crate::conn::Conn`], which only dispatches a task once it is
//! allowed to run. A worker loop is therefore just: pop, execute, post
//! the completion, wake the event loop. Shard and worker counts are
//! independent — each shard queue is owned by exactly one worker
//! (`shard % workers`), and surplus workers double up on queues — so
//! every queue always has a consumer and no configuration can deadlock
//! or starve.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::poll::Parker;

/// One unit of work: a framed request line plus its routing digest.
#[derive(Debug)]
pub struct Task {
    /// Owning connection (event-loop table key).
    pub conn: u64,
    /// Per-connection sequence number.
    pub seq: u64,
    /// The request line.
    pub line: String,
    /// Deadline anchor (when the line was framed).
    pub received: Instant,
    /// Routing digest: snapshot key, session hash, or 0 for stateless
    /// ops (round-robin).
    pub affinity: u64,
}

/// One finished task: the response, addressed back to its connection.
#[derive(Debug)]
pub struct Completion {
    /// Owning connection.
    pub conn: u64,
    /// Per-connection sequence number.
    pub seq: u64,
    /// The response line (no trailing newline).
    pub response: String,
}

/// Observable fleet counters, shared between the transport and the
/// `stats` op (rendered under the `fleet` key).
#[derive(Debug, Default)]
pub struct FleetStats {
    /// Shard queue count.
    pub shards: AtomicU64,
    /// Worker thread count.
    pub workers: AtomicU64,
    /// Connections currently open.
    pub connections: AtomicU64,
    /// Connections accepted over the fleet's lifetime.
    pub connections_total: AtomicU64,
    /// Tasks handed to shard queues.
    pub dispatched: AtomicU64,
    /// Dispatches whose affinity digest was recently served by the same
    /// shard (the cache-affinity win rate).
    pub shard_hits: AtomicU64,
    /// Requests refused with the structured `overloaded` error.
    pub overloaded_total: AtomicU64,
}

/// How many recent digests each shard remembers for the `shard_hits`
/// counter (direct-mapped, low bits index).
const RECENT_DIGESTS: usize = 256;

struct ShardQueue {
    tasks: Mutex<ShardState>,
}

struct ShardState {
    queue: VecDeque<Task>,
    /// Direct-mapped table of digests recently routed here.
    recent: Box<[u64; RECENT_DIGESTS]>,
}

/// The pool: shard queues, per-worker parkers, and the completion
/// mailbox the event loop drains. Workers are *not* spawned here — the
/// transport runs [`ShardPool::worker_loop`] on scoped threads so the
/// handler can borrow the server without `'static` gymnastics.
pub struct ShardPool {
    shards: Vec<ShardQueue>,
    /// One parker per worker.
    parkers: Vec<Arc<Parker>>,
    /// `shard -> workers to wake on push` (precomputed; usually one).
    watchers: Vec<Vec<usize>>,
    /// `worker -> shards it serves` (every shard appears somewhere).
    assignments: Vec<Vec<usize>>,
    completions: Mutex<Vec<Completion>>,
    /// Wakes the event loop when a completion posts.
    notify: Arc<Parker>,
    stop: AtomicBool,
    /// Dispatched-but-not-completed, fleet-wide (the admission gauge).
    inflight: AtomicU64,
    /// Round-robin cursor for affinity-less tasks.
    spray: AtomicU64,
    stats: Arc<FleetStats>,
}

impl ShardPool {
    /// A pool with `shards` queues and `workers` consumers (both clamped
    /// to ≥ 1). `notify` is the event loop's parker.
    pub fn new(
        shards: usize,
        workers: usize,
        notify: Arc<Parker>,
        stats: Arc<FleetStats>,
    ) -> ShardPool {
        let shards = shards.max(1);
        let workers = workers.max(1);
        stats.shards.store(shards as u64, Ordering::Relaxed);
        stats.workers.store(workers as u64, Ordering::Relaxed);
        // Partition shards over workers: shard s belongs to worker
        // s % workers; a worker with no shard of its own doubles up on
        // shard (worker % shards).
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for s in 0..shards {
            assignments[s % workers].push(s);
        }
        for (w, owned) in assignments.iter_mut().enumerate() {
            if owned.is_empty() {
                owned.push(w % shards);
            }
        }
        let mut watchers: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (w, owned) in assignments.iter().enumerate() {
            for &s in owned {
                watchers[s].push(w);
            }
        }
        ShardPool {
            shards: (0..shards)
                .map(|_| ShardQueue {
                    tasks: Mutex::new(ShardState {
                        queue: VecDeque::new(),
                        recent: Box::new([0; RECENT_DIGESTS]),
                    }),
                })
                .collect(),
            parkers: (0..workers).map(|_| Arc::new(Parker::new())).collect(),
            watchers,
            assignments,
            completions: Mutex::new(Vec::new()),
            notify,
            stop: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            spray: AtomicU64::new(0),
            stats,
        }
    }

    /// Worker count (one `worker_loop` call each).
    pub fn workers(&self) -> usize {
        self.parkers.len()
    }

    /// Dispatched-but-not-completed tasks, fleet-wide.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Routes a task to its shard queue and wakes the consumer.
    pub fn dispatch(&self, task: Task) {
        let shard = if task.affinity != 0 {
            (task.affinity % self.shards.len() as u64) as usize
        } else {
            (self.spray.fetch_add(1, Ordering::Relaxed) % self.shards.len() as u64) as usize
        };
        self.inflight.fetch_add(1, Ordering::SeqCst);
        self.stats.dispatched.fetch_add(1, Ordering::Relaxed);
        {
            let mut state = self.shards[shard].tasks.lock().expect("shard poisoned");
            if task.affinity != 0 {
                let slot = (task.affinity as usize) % RECENT_DIGESTS;
                if state.recent[slot] == task.affinity {
                    self.stats.shard_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    state.recent[slot] = task.affinity;
                }
            }
            state.queue.push_back(task);
        }
        for &w in &self.watchers[shard] {
            self.parkers[w].wake();
        }
    }

    /// Posts a completion without consuming a dispatch slot — used by
    /// the transport for synthesized responses (admission rejections)
    /// that never touched a shard. Exists so every response flows
    /// through one mailbox and the transcript stays ordered.
    pub fn post(&self, completion: Completion) {
        self.completions
            .lock()
            .expect("completions poisoned")
            .push(completion);
        self.notify.wake();
    }

    /// Drains every completion posted since the last call.
    pub fn drain_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().expect("completions poisoned"))
    }

    /// Latches stop and wakes every worker. Workers exit once their
    /// queues are empty, so already-dispatched tasks still complete
    /// (the drain guarantee).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for p in &self.parkers {
            p.wake();
        }
    }

    /// The consumer loop for worker `w`: run on a scoped thread. `run`
    /// executes one request line and returns the response line.
    pub fn worker_loop(&self, w: usize, run: &(dyn Fn(&str, Instant) -> String + Sync)) {
        let parker = &self.parkers[w];
        let owned = &self.assignments[w];
        loop {
            let mut executed = false;
            for &s in owned {
                loop {
                    let task = {
                        let mut state = self.shards[s].tasks.lock().expect("shard poisoned");
                        state.queue.pop_front()
                    };
                    let Some(task) = task else { break };
                    executed = true;
                    let response = run(&task.line, task.received);
                    self.inflight.fetch_sub(1, Ordering::SeqCst);
                    self.post(Completion {
                        conn: task.conn,
                        seq: task.seq,
                        response,
                    });
                }
            }
            if executed {
                continue;
            }
            if self.stop.load(Ordering::SeqCst) {
                // Queues were empty on the last pass and stop is
                // latched; a task dispatched after the stop check would
                // have latched our parker, so re-check once.
                let drained = owned.iter().all(|&s| {
                    self.shards[s]
                        .tasks
                        .lock()
                        .expect("shard poisoned")
                        .queue
                        .is_empty()
                });
                if drained && !parker.wait(Some(std::time::Duration::from_millis(1))) {
                    break;
                }
                continue;
            }
            parker.wait(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::time::Duration;

    fn task(conn: u64, seq: u64, line: &str, affinity: u64) -> Task {
        Task {
            conn,
            seq,
            line: line.to_owned(),
            received: Instant::now(),
            affinity,
        }
    }

    fn run_pool(
        shards: usize,
        workers: usize,
        tasks: Vec<Task>,
    ) -> (Vec<Completion>, Arc<FleetStats>) {
        let notify = Arc::new(Parker::new());
        let stats = Arc::new(FleetStats::default());
        let pool = ShardPool::new(shards, workers, Arc::clone(&notify), Arc::clone(&stats));
        let expected = tasks.len();
        let mut out = Vec::new();
        std::thread::scope(|scope| {
            for w in 0..pool.workers() {
                let pool = &pool;
                scope.spawn(move || {
                    pool.worker_loop(w, &|line, _| format!("echo:{line}"));
                });
            }
            for t in tasks {
                pool.dispatch(t);
            }
            let deadline = Instant::now() + Duration::from_secs(30);
            while out.len() < expected {
                notify.wait(Some(Duration::from_millis(50)));
                out.extend(pool.drain_completions());
                assert!(Instant::now() < deadline, "pool lost a task");
            }
            pool.stop();
        });
        assert_eq!(pool.inflight(), 0, "inflight gauge must return to zero");
        (out, stats)
    }

    #[test]
    fn every_task_completes_exactly_once_at_any_geometry() {
        for &(shards, workers) in &[(1, 1), (2, 1), (1, 4), (8, 2), (3, 8)] {
            let tasks: Vec<Task> = (0..64)
                .map(|i| task(i % 4, i / 4, &format!("req-{i}"), i * 977 + 1))
                .collect();
            let (completions, _) = run_pool(shards, workers, tasks);
            assert_eq!(completions.len(), 64, "geometry ({shards},{workers})");
            let mut seen = BTreeMap::new();
            for c in &completions {
                *seen.entry((c.conn, c.seq)).or_insert(0u32) += 1;
                assert!(c.response.starts_with("echo:req-"));
            }
            assert!(
                seen.values().all(|&n| n == 1),
                "duplicate or lost completion at ({shards},{workers})"
            );
        }
    }

    #[test]
    fn same_affinity_repeats_count_as_shard_hits() {
        let tasks: Vec<Task> = (0..32).map(|i| task(0, i, "q", 0xfeed)).collect();
        let (completions, stats) = run_pool(8, 2, tasks);
        assert_eq!(completions.len(), 32);
        assert_eq!(
            stats.shard_hits.load(Ordering::Relaxed),
            31,
            "every repeat after the first must hit the shard's recent table"
        );
        assert_eq!(stats.dispatched.load(Ordering::Relaxed), 32);
        // Affinity-less tasks spray round-robin and never count as hits.
        let tasks: Vec<Task> = (0..32).map(|i| task(0, i, "q", 0)).collect();
        let (_, stats) = run_pool(8, 2, tasks);
        assert_eq!(stats.shard_hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn stop_drains_queued_tasks_before_workers_exit() {
        let notify = Arc::new(Parker::new());
        let stats = Arc::new(FleetStats::default());
        let pool = ShardPool::new(4, 1, Arc::clone(&notify), stats);
        std::thread::scope(|scope| {
            // Queue everything *before* the worker exists, then stop
            // immediately: the worker must still answer all of it.
            for i in 0..16 {
                pool.dispatch(task(0, i, "late", i + 1));
            }
            pool.stop();
            let pool_ref = &pool;
            scope.spawn(move || {
                pool_ref.worker_loop(0, &|line, _| line.to_owned());
            });
            let deadline = Instant::now() + Duration::from_secs(30);
            let mut got = 0;
            while got < 16 {
                notify.wait(Some(Duration::from_millis(20)));
                got += pool.drain_completions().len();
                assert!(Instant::now() < deadline, "stop dropped queued tasks");
            }
        });
    }
}
