//! Readiness primitives for the event-loop transport: a wakeable parker,
//! an adaptive spin/park backoff, and a blocking acceptor thread that can
//! be released without `poll(2)`.
//!
//! The fleet transport is zero-dependency by design: no `libc`, no `mio`,
//! no FFI. Readiness therefore cannot come from `epoll`; instead the
//! event loop *attempts* nonblocking I/O (`WouldBlock` = not ready) and
//! paces itself with [`Backoff`] — spin while traffic is hot, park on a
//! [`Parker`] with an escalating timeout when it is not. Everything that
//! can produce work without the loop noticing on its own (a finished
//! worker, a fresh connection) holds a [`Parker`] handle and wakes it, so
//! the escalated timeout is a *bound* on discovery latency for the one
//! signal nobody can deliver: bytes arriving on an already-open socket.
//!
//! The accept path needs no polling at all: [`Acceptor`] parks a
//! dedicated thread inside blocking `accept(2)` (zero CPU while idle) and
//! is released on shutdown by a loopback self-connect — the classic
//! self-pipe trick, with a TCP connection standing in for the pipe.

use std::collections::VecDeque;
use std::io;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A wakeable one-shot parker: `wait` blocks until the timeout elapses or
/// someone calls `wake`. A wake that arrives while nobody is waiting is
/// latched, so the next `wait` returns immediately — no lost wakeups.
#[derive(Default)]
pub struct Parker {
    woken: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    /// A fresh parker with no pending wake.
    pub fn new() -> Parker {
        Parker::default()
    }

    /// Latches a wake and releases the current (or next) waiter.
    pub fn wake(&self) {
        let mut woken = self.woken.lock().expect("parker poisoned");
        *woken = true;
        self.cv.notify_one();
    }

    /// Parks until woken or until `timeout` elapses (`None` = forever).
    /// Consumes the wake latch. Returns whether a wake was received.
    pub fn wait(&self, timeout: Option<Duration>) -> bool {
        let mut woken = self.woken.lock().expect("parker poisoned");
        match timeout {
            Some(t) => {
                let deadline = std::time::Instant::now() + t;
                while !*woken {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, _) = self
                        .cv
                        .wait_timeout(woken, deadline - now)
                        .expect("parker poisoned");
                    woken = guard;
                }
            }
            None => {
                while !*woken {
                    woken = self.cv.wait(woken).expect("parker poisoned");
                }
            }
        }
        std::mem::replace(&mut *woken, false)
    }
}

/// Adaptive sweep pacing for the event loop: stay hot (no park) for a few
/// sweeps after the last progress, then park with a timeout that
/// escalates toward `cap`. Reset on every productive sweep.
#[derive(Debug)]
pub struct Backoff {
    idle_sweeps: u32,
}

/// Sweeps after the last progress during which the loop does not park at
/// all (bursty pipelines stay at syscall latency).
const HOT_SWEEPS: u32 = 16;

/// First park duration once the hot window is exhausted.
const PARK_FLOOR: Duration = Duration::from_micros(50);

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff::new()
    }
}

impl Backoff {
    /// A backoff in the hot state.
    pub fn new() -> Backoff {
        Backoff { idle_sweeps: 0 }
    }

    /// Call after a sweep that made progress: back to the hot state.
    pub fn reset(&mut self) {
        self.idle_sweeps = 0;
    }

    /// Call after a sweep that found nothing to do. Returns how long to
    /// park before the next sweep: `None` while hot (spin again), then
    /// an exponentially escalating duration clamped to `cap`.
    pub fn next_park(&mut self, cap: Duration) -> Option<Duration> {
        self.idle_sweeps = self.idle_sweeps.saturating_add(1);
        if self.idle_sweeps <= HOT_SWEEPS {
            std::hint::spin_loop();
            return None;
        }
        let steps = (self.idle_sweeps - HOT_SWEEPS).min(20);
        let park = PARK_FLOOR.saturating_mul(1u32 << steps.min(16));
        Some(park.min(cap))
    }
}

/// The accept thread's hand-off queue plus its shutdown latch.
struct AcceptShared {
    /// Accepted streams, in arrival order.
    queue: Mutex<VecDeque<TcpStream>>,
    /// Signalled on every push (for blocking consumers).
    cv: Condvar,
    /// Latched by [`Acceptor::shutdown`]; the accept thread drops the
    /// wake connection and exits when it sees this.
    stop: AtomicBool,
    /// Woken on every push (for the event loop).
    notify: Arc<Parker>,
}

/// A dedicated thread parked in blocking `accept(2)`: zero CPU while no
/// client is connecting, no accept-poll sleep, and shutdown releases it
/// with a loopback self-connect instead of a timeout.
pub struct Acceptor {
    shared: Arc<AcceptShared>,
    local: SocketAddr,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Acceptor {
    /// Spawns the accept thread over an already-bound listener. `notify`
    /// is woken every time a fresh connection lands in the queue.
    pub fn spawn(listener: TcpListener, notify: Arc<Parker>) -> io::Result<Acceptor> {
        // Blocking accepts on purpose: the thread consumes nothing while
        // idle. (The listener may arrive nonblocking from an older
        // caller; normalize.)
        listener.set_nonblocking(false)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(AcceptShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            notify,
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("stcfa-accept".to_owned())
            .spawn(move || accept_loop(listener, thread_shared))?;
        Ok(Acceptor {
            shared,
            local,
            handle: Mutex::new(Some(handle)),
        })
    }

    /// The listener's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Drains every connection accepted since the last call (never
    /// blocks).
    pub fn drain(&self) -> Vec<TcpStream> {
        let mut queue = self.shared.queue.lock().expect("accept queue poisoned");
        queue.drain(..).collect()
    }

    /// Blocks until a connection arrives or [`Acceptor::shutdown`] runs.
    /// `None` means the acceptor is stopping and the queue is drained.
    pub fn recv(&self) -> Option<TcpStream> {
        let mut queue = self.shared.queue.lock().expect("accept queue poisoned");
        loop {
            if let Some(stream) = queue.pop_front() {
                return Some(stream);
            }
            if self.shared.stop.load(Ordering::SeqCst) {
                return None;
            }
            queue = self.shared.cv.wait(queue).expect("accept queue poisoned");
        }
    }

    /// Latches stop and releases the blocked `accept(2)` by connecting to
    /// the listener from loopback. Joins the accept thread. Idempotent.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // The self-connect gives accept() something to return; the thread
        // then observes `stop` and exits. If the connect fails (exotic
        // bind address, fd exhaustion) fall back to letting the thread
        // die with the process — the queue consumers are already
        // released via the condvar below.
        let _ = TcpStream::connect_timeout(&self.wake_addr(), Duration::from_millis(500));
        self.shared.cv.notify_all();
        self.shared.notify.wake();
        let handle = self.handle.lock().expect("accept handle poisoned").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// Where the wake connection goes: the bound address, with
    /// unspecified IPs (0.0.0.0 / ::) rewritten to loopback.
    fn wake_addr(&self) -> SocketAddr {
        let ip = match self.local.ip() {
            IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
            ip => ip,
        };
        SocketAddr::new(ip, self.local.port())
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<AcceptShared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    // The wake connection (or a client racing shutdown):
                    // refuse and exit.
                    drop(stream);
                    break;
                }
                let mut queue = shared.queue.lock().expect("accept queue poisoned");
                queue.push_back(stream);
                shared.cv.notify_one();
                drop(queue);
                shared.notify.wake();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Transient accept failures (aborted handshake, fd
                // pressure): never take the daemon down, never spin.
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::time::Instant;

    #[test]
    fn parker_latches_wakes_and_times_out() {
        let p = Parker::new();
        // A pre-delivered wake is not lost.
        p.wake();
        assert!(p.wait(Some(Duration::from_secs(5))));
        // The latch was consumed: now a timeout.
        let t = Instant::now();
        assert!(!p.wait(Some(Duration::from_millis(20))));
        assert!(t.elapsed() >= Duration::from_millis(15));
        // Cross-thread wake releases a parked waiter promptly.
        let p = Arc::new(Parker::new());
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            p2.wake();
        });
        let t = Instant::now();
        assert!(p.wait(Some(Duration::from_secs(10))));
        assert!(t.elapsed() < Duration::from_secs(5));
        h.join().unwrap();
    }

    #[test]
    fn backoff_spins_hot_then_escalates_to_cap() {
        let cap = Duration::from_millis(5);
        let mut b = Backoff::new();
        for _ in 0..HOT_SWEEPS {
            assert_eq!(b.next_park(cap), None, "hot window must spin");
        }
        let first = b.next_park(cap).expect("parks after the hot window");
        assert!(first >= PARK_FLOOR && first < cap);
        let mut last = first;
        for _ in 0..64 {
            last = b.next_park(cap).unwrap();
        }
        assert_eq!(last, cap, "escalation clamps at the cap");
        b.reset();
        assert_eq!(b.next_park(cap), None, "reset returns to hot");
    }

    #[test]
    fn acceptor_delivers_connections_and_shutdown_releases_accept() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let notify = Arc::new(Parker::new());
        let acceptor = Acceptor::spawn(listener, Arc::clone(&notify)).unwrap();
        let addr = acceptor.local_addr();

        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"hello").unwrap();
        assert!(notify.wait(Some(Duration::from_secs(10))), "no accept wake");
        let got = acceptor.drain();
        assert_eq!(got.len(), 1);
        assert!(acceptor.drain().is_empty(), "drain consumes");

        // Shutdown returns promptly even though accept(2) is blocking.
        let t = Instant::now();
        acceptor.shutdown();
        assert!(
            t.elapsed() < Duration::from_secs(5),
            "shutdown hung on the blocked accept"
        );
    }

    #[test]
    fn acceptor_recv_blocks_until_connection_or_stop() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let acceptor = Acceptor::spawn(listener, Arc::new(Parker::new())).unwrap();
        let addr = acceptor.local_addr();
        std::thread::scope(|scope| {
            let h = scope.spawn(|| acceptor.recv().is_some());
            std::thread::sleep(Duration::from_millis(20));
            let _client = TcpStream::connect(addr).unwrap();
            assert!(h.join().unwrap(), "recv missed the connection");
            // After shutdown, recv drains to None.
            let h = scope.spawn(|| acceptor.recv().is_none());
            std::thread::sleep(Duration::from_millis(20));
            acceptor.shutdown();
            assert!(h.join().unwrap(), "recv did not observe stop");
        });
    }
}
