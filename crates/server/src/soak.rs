//! A many-connection soak driver for the TCP transport, shared by the
//! `stcfa soak` CLI subcommand, `benches/server.rs`, and the CI smoke
//! stage.
//!
//! The driver opens N connections, pipelines bursty batches of
//! `label-set` queries down each (write the whole burst, then drain the
//! responses), and verifies on the way out that every response carries
//! the expected `id` *in order* — a reordered transcript is a hard
//! failure, not a statistic. Because every connection issues the same
//! request sequence against a warm cache, the full per-connection
//! transcripts must also be byte-identical across connections; the
//! report says whether they were. Latency is stamped per response from
//! the start of its burst (pipeline latency, the number a batching
//! client actually experiences) and summarized as p50/p99.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::json::Json;

/// Soak shape: how many connections, how hard each one pushes.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Concurrent connections. The default scales with the host — 8 per
    /// available core, capped at 64 — because each connection is a
    /// client-side OS thread: a fixed 64 would oversubscribe a
    /// single-core host with the load generator alone, drowning the
    /// daemon the soak is supposed to exercise.
    pub connections: usize,
    /// Bursts per connection.
    pub bursts: usize,
    /// Requests pipelined per burst.
    pub burst: usize,
    /// Source text every query analyzes (warmed once up front unless
    /// `warm` is false).
    pub source: String,
    /// Pre-warm the daemon's cache with one `analyze` before the clock
    /// starts, so the soak measures transport + cache-hit costs.
    pub warm: bool,
    /// Per-read timeout — a response that takes longer than this counts
    /// the connection as hung (and fails the soak).
    pub read_timeout: Duration,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            addr: String::new(),
            connections: std::thread::available_parallelism()
                .map_or(1, |p| p.get())
                .saturating_mul(8)
                .min(64),
            bursts: 4,
            burst: 8,
            source: "(fn x => x) (fn y => y)".to_owned(),
            warm: true,
            read_timeout: Duration::from_secs(60),
        }
    }
}

/// What a soak run observed.
#[derive(Clone, Debug, Default)]
pub struct SoakReport {
    /// Connections driven.
    pub connections: usize,
    /// Responses received (all connections).
    pub requests: u64,
    /// Responses carrying a non-`overloaded` error.
    pub errors: u64,
    /// Responses carrying the structured `overloaded` rejection.
    pub overloaded: u64,
    /// Responses with the wrong or out-of-order `id` (must be zero).
    pub reordered: u64,
    /// Connections that hung, died, or failed to connect.
    pub failed_connections: u64,
    /// Wall-clock for the whole soak.
    pub elapsed_ns: u64,
    /// Pipeline latency percentiles across every response.
    pub p50_ns: u64,
    /// 99th percentile pipeline latency.
    pub p99_ns: u64,
    /// Worst single response.
    pub max_ns: u64,
    /// Responses per second over the wall clock.
    pub throughput_rps: u64,
    /// Whether every connection's transcript was byte-identical.
    pub transcript_identical: bool,
}

impl SoakReport {
    /// The report as one canonical JSON line (CI parses this).
    pub fn to_json_line(&self) -> String {
        Json::obj(vec![
            ("connections", Json::num(self.connections as u64)),
            ("requests", Json::num(self.requests)),
            ("errors", Json::num(self.errors)),
            ("overloaded", Json::num(self.overloaded)),
            ("reordered", Json::num(self.reordered)),
            ("failed_connections", Json::num(self.failed_connections)),
            ("elapsed_ns", Json::num(self.elapsed_ns)),
            ("p50_ns", Json::num(self.p50_ns)),
            ("p99_ns", Json::num(self.p99_ns)),
            ("max_ns", Json::num(self.max_ns)),
            ("throughput_rps", Json::num(self.throughput_rps)),
            (
                "transcript_identical",
                Json::Bool(self.transcript_identical),
            ),
        ])
        .to_line()
    }

    /// A soak is clean when nothing hung, errored, reordered, or was
    /// shed — the CI smoke gate.
    pub fn clean(&self) -> bool {
        self.errors == 0
            && self.overloaded == 0
            && self.reordered == 0
            && self.failed_connections == 0
            && self.transcript_identical
    }
}

/// One connection's outcome.
struct ConnRun {
    latencies_ns: Vec<u64>,
    errors: u64,
    overloaded: u64,
    reordered: u64,
    transcript: String,
    failed: bool,
}

/// Runs the soak. Connect errors and hangs are folded into the report
/// (`failed_connections`), not returned: the caller always gets numbers.
pub fn run_soak(config: &SoakConfig) -> SoakReport {
    let query = |id: u64| {
        Json::obj(vec![
            ("id", Json::num(id)),
            ("op", Json::str("query")),
            ("kind", Json::str("label-set")),
            ("source", Json::str(&config.source)),
        ])
        .to_line()
    };
    if config.warm {
        let _ = warm_cache(config);
    }
    let started = Instant::now();
    let mut runs: Vec<ConnRun> = Vec::with_capacity(config.connections);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections)
            .map(|_| scope.spawn(|| drive_connection(config, &query)))
            .collect();
        for h in handles {
            runs.push(h.join().unwrap_or_else(|_| ConnRun {
                latencies_ns: Vec::new(),
                errors: 0,
                overloaded: 0,
                reordered: 0,
                transcript: String::new(),
                failed: true,
            }));
        }
    });
    let elapsed_ns = started.elapsed().as_nanos() as u64;

    let mut latencies: Vec<u64> = Vec::new();
    let mut report = SoakReport {
        connections: config.connections,
        elapsed_ns,
        transcript_identical: true,
        ..SoakReport::default()
    };
    let mut reference: Option<&str> = None;
    for run in &runs {
        report.requests += run.latencies_ns.len() as u64;
        report.errors += run.errors;
        report.overloaded += run.overloaded;
        report.reordered += run.reordered;
        if run.failed {
            report.failed_connections += 1;
            continue;
        }
        latencies.extend_from_slice(&run.latencies_ns);
        match reference {
            None => reference = Some(&run.transcript),
            Some(r) if r != run.transcript => report.transcript_identical = false,
            Some(_) => {}
        }
    }
    latencies.sort_unstable();
    report.p50_ns = percentile(&latencies, 50.0);
    report.p99_ns = percentile(&latencies, 99.0);
    report.max_ns = latencies.last().copied().unwrap_or(0);
    if elapsed_ns > 0 {
        report.throughput_rps = (report.requests as u128 * 1_000_000_000 / elapsed_ns as u128)
            .min(u64::MAX as u128) as u64;
    }
    report
}

/// One `analyze` round-trip so the measured soak hits a warm cache.
fn warm_cache(config: &SoakConfig) -> io::Result<()> {
    let stream = TcpStream::connect(&config.addr)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let request = Json::obj(vec![
        ("op", Json::str("analyze")),
        ("source", Json::str(&config.source)),
    ])
    .to_line();
    writeln!(writer, "{request}")?;
    writer.flush()?;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(())
}

fn drive_connection(config: &SoakConfig, query: &dyn Fn(u64) -> String) -> ConnRun {
    let mut run = ConnRun {
        latencies_ns: Vec::new(),
        errors: 0,
        overloaded: 0,
        reordered: 0,
        transcript: String::new(),
        failed: false,
    };
    let stream = match TcpStream::connect(&config.addr) {
        Ok(s) => s,
        Err(_) => {
            run.failed = true;
            return run;
        }
    };
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(config.read_timeout)).is_err() {
        run.failed = true;
        return run;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            run.failed = true;
            return run;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut next_id = 0u64;
    for _ in 0..config.bursts {
        // Bursty on purpose: the whole batch hits the daemon at once.
        let mut batch = String::new();
        let first_id = next_id;
        for _ in 0..config.burst {
            batch.push_str(&query(next_id));
            batch.push('\n');
            next_id += 1;
        }
        let burst_started = Instant::now();
        if writer.write_all(batch.as_bytes()).is_err() || writer.flush().is_err() {
            run.failed = true;
            return run;
        }
        let mut line = String::new();
        for expect in first_id..next_id {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(n) if n > 0 => {}
                _ => {
                    // EOF or timeout mid-burst: the daemon hung or
                    // dropped us.
                    run.failed = true;
                    return run;
                }
            }
            run.latencies_ns
                .push(burst_started.elapsed().as_nanos() as u64);
            let trimmed = line.trim_end();
            run.transcript.push_str(trimmed);
            run.transcript.push('\n');
            match response_id(trimmed) {
                Some(id) if id == expect => {}
                _ => run.reordered += 1,
            }
            if line.contains("\"error\"") {
                if line.contains("\"kind\":\"overloaded\"") {
                    run.overloaded += 1;
                } else {
                    run.errors += 1;
                }
            }
        }
    }
    run
}

/// The numeric `id` a response echoes, if parseable.
fn response_id(line: &str) -> Option<u64> {
    Json::parse(line).ok()?.get("id")?.as_u64()
}

/// Nearest-rank percentile over an already-sorted slice.
pub fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted_ns.len() as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[42], 99.0), 42);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn report_json_line_is_canonical_and_clean_gate_works() {
        let mut r = SoakReport {
            connections: 2,
            requests: 10,
            transcript_identical: true,
            ..SoakReport::default()
        };
        let line = r.to_json_line();
        let parsed = Json::parse(&line).expect("report must be valid JSON");
        assert_eq!(parsed.get("connections").and_then(Json::as_u64), Some(2));
        assert_eq!(
            parsed.get("transcript_identical").and_then(Json::as_bool),
            Some(true)
        );
        assert!(r.clean());
        r.overloaded = 1;
        assert!(!r.clean(), "shed load must fail the clean gate");
    }
}
