//! `stcfa-server` — a long-running analysis daemon over the subtransitive
//! CFA engine.
//!
//! The paper's engine makes *queries* cheap once the linear-time graph is
//! built; the economic unit is therefore the **built analysis**, not the
//! request. This crate amortizes builds across requests and clients:
//!
//! - [`cache`] — a content-addressed snapshot store. Source text plus the
//!   (policy, engine) configuration hashes to a 64-bit digest; each digest
//!   maps to at most one frozen [`QueryEngine`](stcfa_core::QueryEngine),
//!   built exactly once (concurrent requests for the same digest coalesce
//!   onto one build) and shared via `Arc` until byte-accounted LRU
//!   eviction reclaims it.
//! - [`proto`] — the versioned, line-delimited JSON protocol: `analyze`,
//!   `query` (label-set / call-targets / occurrences / reachability),
//!   `lint`, `evict`, `stats`, `shutdown` (v1) plus the stateful
//!   multi-file `session/*` ops (v2), with per-request deadlines and
//!   structured error kinds. Open sessions pin their linked snapshot in
//!   the cache; `evict` refuses pinned digests with a structured
//!   `pinned-snapshot` error.
//! - [`json`] — the zero-dependency JSON reader/writer with canonical
//!   (byte-deterministic) output, so transcripts are identical across
//!   worker-thread counts.
//! - [`server`] — the daemon itself: dispatch, the ordered
//!   reader/worker/writer pipeline, stdio and TCP transports, graceful
//!   drain on `shutdown`.
//! - [`poll`], [`conn`], [`shard`] — the nonblocking event-loop TCP
//!   transport (the *fleet*): a zero-FFI readiness loop over
//!   nonblocking sockets, per-connection incremental framing with an
//!   ordered buffered writer, and a sharded worker pool that routes
//!   requests by snapshot digest so cache-affine work stays on one
//!   worker. Admission control sheds excess load with the structured
//!   `overloaded` error instead of buffering without bound.
//! - [`soak`] — a many-connection pipelined load driver (`stcfa soak`,
//!   `benches/server.rs`, and CI's soak smoke all share it).
//!
//! Start it from the CLI with `stcfa serve --stdio` or
//! `stcfa serve --addr 127.0.0.1:7878`; see `docs/SERVER.md` for the
//! protocol reference.

#![warn(missing_docs)]

pub mod cache;
pub mod conn;
pub mod json;
pub mod poll;
pub mod proto;
pub mod server;
pub mod shard;
pub mod soak;

pub use cache::{Invalidate, LookupError, Snapshot, SnapshotKey, SnapshotStore, StoreStats};
pub use conn::{Conn, ConnLimits};
pub use json::Json;
pub use poll::{Acceptor, Backoff, Parker};
pub use proto::{Deadline, ErrorKind, RequestError, PROTOCOL_VERSION, PROTOCOL_VERSION_SESSION};
pub use server::{fleet_summary_line, Server, ServerOptions};
pub use shard::{FleetStats, ShardPool};
pub use soak::{run_soak, SoakConfig, SoakReport};
