//! Type-boundedness metrics (Sections 2, 4 and 5 of the paper).
//!
//! The paper's complexity result is parameterized by the class `P_k` of
//! programs whose occurrence monotypes have tree size at most `k`; the
//! tighter bound observed in practice is `k_avg · |P|`, where `k_avg` is
//! the *average* type-tree size over program nodes ("One of the principal
//! concerns of our implementation was the size of this constant … typically
//! around 2 or 3").

use stcfa_lambda::Program;

use crate::infer::TypedProgram;
use crate::ty::Ty;

/// Aggregate type-size measures of one program.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TypeMetrics {
    /// Maximum type-tree size over all occurrences: the program is in `P_k`
    /// for every `k ≥ max_size`.
    pub max_size: usize,
    /// Average type-tree size over all occurrences (`k_avg`).
    pub avg_size: f64,
    /// Maximum type order.
    pub max_order: usize,
    /// Maximum curried arity.
    pub max_arity: usize,
    /// Number of occurrences measured.
    pub occurrences: usize,
}

impl TypeMetrics {
    /// Computes the metrics from an inference result.
    pub fn compute(program: &Program, typed: &TypedProgram) -> TypeMetrics {
        let mut max_size = 0usize;
        let mut total = 0usize;
        let mut max_order = 0usize;
        let mut max_arity = 0usize;
        let mut count = 0usize;
        let mut measure = |t: &Ty| {
            let s = t.size();
            max_size = max_size.max(s);
            total += s;
            max_order = max_order.max(t.order());
            max_arity = max_arity.max(t.arity());
            count += 1;
        };
        for e in program.exprs() {
            measure(typed.ty(e));
        }
        for v in program.vars() {
            measure(typed.binder_ty(v));
        }
        TypeMetrics {
            max_size,
            avg_size: if count == 0 {
                0.0
            } else {
                total as f64 / count as f64
            },
            max_order,
            max_arity,
            occurrences: count,
        }
    }

    /// Whether the program is in the bounded-type class `P_k`.
    pub fn is_k_bounded(&self, k: usize) -> bool {
        self.max_size <= k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::Program;

    fn metrics(src: &str) -> TypeMetrics {
        let p = Program::parse(src).unwrap();
        let t = TypedProgram::infer(&p).unwrap();
        TypeMetrics::compute(&p, &t)
    }

    #[test]
    fn first_order_programs_have_tiny_types() {
        let m = metrics("fun fact n = if n = 0 then 1 else n * fact (n - 1); fact 5");
        assert_eq!(m.max_order, 1);
        assert_eq!(m.max_arity, 1);
        assert!(m.max_size <= 3);
        assert!(m.is_k_bounded(3));
        assert!(!m.is_k_bounded(2));
    }

    #[test]
    fn the_cubic_benchmark_is_type_bounded() {
        // The paper's point: this family is in P_k for a *constant* k even
        // as it grows, yet the standard algorithm is cubic on it.
        let gen = |n: usize| {
            let mut src = String::from("fun fs x = x;\nfun bs x = x;\n");
            for i in 1..=n {
                src.push_str(&format!(
                    "fun f{i} x = x;\nfun b{i} x = x;\nval x{i} = b{i} (fs f{i});\nval y{i} = (bs b{i}) f{i};\n"
                ));
            }
            src.push('0');
            src
        };
        let small = metrics(&gen(2));
        let large = metrics(&gen(16));
        assert_eq!(
            small.max_size, large.max_size,
            "max type size must not grow with program size"
        );
        assert!(large.is_k_bounded(small.max_size));
        assert!(
            large.avg_size < 6.0,
            "k_avg {} should be a small constant (paper: 2–3)",
            large.avg_size
        );
    }

    #[test]
    fn higher_order_increases_order() {
        let m = metrics("fun twice f = fn x => f (f x); twice (fn n => n + 1) 0");
        assert!(m.max_order >= 2);
        assert!(m.max_arity >= 2);
    }

    #[test]
    fn average_tracks_occurrences() {
        let m = metrics("1");
        assert_eq!(m.occurrences, 1);
        assert_eq!(m.avg_size, 1.0);
    }
}
