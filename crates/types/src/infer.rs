//! Hindley–Milner type inference with let-polymorphism.
//!
//! The subtransitive analysis never consults types ("our algorithm only
//! needs to know that the appropriate types exist — it does not need to
//! know what they are", Section 4); this module exists for everything
//! *around* the algorithm: establishing that a workload really is a
//! bounded-type program, computing the `k`/`k_avg` constants of
//! Sections 4–5, and validating generated benchmark programs.
//!
//! Standard Algorithm-W machinery: mutable unification variables with
//! level-based generalization at `let`, monomorphic recursion at `letrec`
//! (generalized in the body, as in ML), and deferred resolution for record
//! projections (`#j e` needs `e`'s tuple type to be determined elsewhere,
//! since the system has no row polymorphism).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

use stcfa_lambda::{ExprId, ExprKind, Literal, PrimOp, Program, TyExpr, VarId};

use crate::ty::Ty;

/// A type error with a human-readable description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeError {
    /// The expression the error is attached to.
    pub at: ExprId,
    /// Description.
    pub message: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at {:?}: {}", self.at, self.message)
    }
}

impl Error for TypeError {}

/// The result of inference: a monotype for every occurrence and binder.
///
/// For a let-polymorphic binder the recorded type is the generalized body
/// type (quantified variables appear as [`Ty::Var`]); each *use* records
/// its instantiation, which is exactly the "induced monotypes in the
/// let-expansion" that McAllester-style boundedness measures (Section 5).
#[derive(Clone, Debug)]
pub struct TypedProgram {
    /// Type of each expression occurrence.
    pub expr_tys: Vec<Ty>,
    /// Type of each binder.
    pub binder_tys: Vec<Ty>,
}

impl TypedProgram {
    /// Infers types for `program`.
    pub fn infer(program: &Program) -> Result<TypedProgram, TypeError> {
        Infer::new(program).run()
    }

    /// The type of an expression occurrence.
    pub fn ty(&self, e: ExprId) -> &Ty {
        &self.expr_tys[e.index()]
    }

    /// The type of a binder.
    pub fn binder_ty(&self, v: VarId) -> &Ty {
        &self.binder_tys[v.index()]
    }
}

/// Internal unification reference.
type TRef = u32;

#[derive(Clone, Debug)]
enum TyNode {
    Unbound { level: u32 },
    Link(TRef),
    Int,
    Bool,
    Unit,
    Data(stcfa_lambda::DataId),
    Arrow(TRef, TRef),
    Tuple(Vec<TRef>),
}

/// A type scheme: quantified unification variables plus a body reference.
#[derive(Clone, Debug)]
struct Scheme {
    vars: Vec<TRef>,
    body: TRef,
}

struct Infer<'a> {
    program: &'a Program,
    store: Vec<TyNode>,
    level: u32,
    schemes: Vec<Option<Scheme>>,
    expr_refs: Vec<TRef>,
    binder_refs: Vec<TRef>,
    /// Deferred projection constraints: (at, tuple, index, result).
    projections: Vec<(ExprId, TRef, u32, TRef)>,
}

impl<'a> Infer<'a> {
    fn new(program: &'a Program) -> Self {
        Infer {
            program,
            store: Vec::new(),
            level: 0,
            schemes: vec![None; program.var_count()],
            expr_refs: vec![0; program.size()],
            binder_refs: vec![0; program.var_count()],
            projections: Vec::new(),
        }
    }

    fn fresh(&mut self) -> TRef {
        let r = self.store.len() as TRef;
        self.store.push(TyNode::Unbound { level: self.level });
        r
    }

    fn mk(&mut self, node: TyNode) -> TRef {
        let r = self.store.len() as TRef;
        self.store.push(node);
        r
    }

    fn resolve(&self, mut r: TRef) -> TRef {
        while let TyNode::Link(next) = self.store[r as usize] {
            r = next;
        }
        r
    }

    fn err<T>(&self, at: ExprId, message: impl Into<String>) -> Result<T, TypeError> {
        Err(TypeError {
            at,
            message: message.into(),
        })
    }

    fn unify(&mut self, at: ExprId, a: TRef, b: TRef) -> Result<(), TypeError> {
        let (ra, rb) = (self.resolve(a), self.resolve(b));
        if ra == rb {
            return Ok(());
        }
        match (
            self.store[ra as usize].clone(),
            self.store[rb as usize].clone(),
        ) {
            (TyNode::Unbound { level }, _) => {
                self.occurs(at, ra, rb, level)?;
                self.store[ra as usize] = TyNode::Link(rb);
                Ok(())
            }
            (_, TyNode::Unbound { level }) => {
                self.occurs(at, rb, ra, level)?;
                self.store[rb as usize] = TyNode::Link(ra);
                Ok(())
            }
            (TyNode::Int, TyNode::Int)
            | (TyNode::Bool, TyNode::Bool)
            | (TyNode::Unit, TyNode::Unit) => Ok(()),
            (TyNode::Data(d1), TyNode::Data(d2)) if d1 == d2 => Ok(()),
            (TyNode::Arrow(a1, b1), TyNode::Arrow(a2, b2)) => {
                self.unify(at, a1, a2)?;
                self.unify(at, b1, b2)
            }
            (TyNode::Tuple(p1), TyNode::Tuple(p2)) if p1.len() == p2.len() => {
                for (x, y) in p1.into_iter().zip(p2) {
                    self.unify(at, x, y)?;
                }
                Ok(())
            }
            (x, y) => self.err(
                at,
                format!(
                    "cannot unify {} with {}",
                    self.describe(&x),
                    self.describe(&y)
                ),
            ),
        }
    }

    fn describe(&self, node: &TyNode) -> String {
        match node {
            TyNode::Unbound { .. } | TyNode::Link(_) => "_".into(),
            TyNode::Int => "int".into(),
            TyNode::Bool => "bool".into(),
            TyNode::Unit => "unit".into(),
            TyNode::Data(d) => self
                .program
                .interner()
                .resolve(self.program.data_env().data(*d).name)
                .to_owned(),
            TyNode::Arrow(..) => "a function type".into(),
            TyNode::Tuple(parts) => format!("a {}-tuple", parts.len()),
        }
    }

    /// Occurs check plus level adjustment when binding `var := t`.
    fn occurs(&mut self, at: ExprId, var: TRef, t: TRef, var_level: u32) -> Result<(), TypeError> {
        let r = self.resolve(t);
        if r == var {
            return self.err(at, "infinite (recursive) type");
        }
        match self.store[r as usize].clone() {
            TyNode::Unbound { level } => {
                if level > var_level {
                    self.store[r as usize] = TyNode::Unbound { level: var_level };
                }
                Ok(())
            }
            TyNode::Arrow(a, b) => {
                self.occurs(at, var, a, var_level)?;
                self.occurs(at, var, b, var_level)
            }
            TyNode::Tuple(parts) => {
                for p in parts {
                    self.occurs(at, var, p, var_level)?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn generalize(&self, t: TRef, vars: &mut Vec<TRef>, forbidden: &HashMap<TRef, ()>) {
        let r = self.resolve(t);
        match self.store[r as usize].clone() {
            TyNode::Unbound { level }
                if level > self.level && !vars.contains(&r) && !forbidden.contains_key(&r) =>
            {
                vars.push(r);
            }
            TyNode::Arrow(a, b) => {
                self.generalize(a, vars, forbidden);
                self.generalize(b, vars, forbidden);
            }
            TyNode::Tuple(parts) => {
                for p in parts {
                    self.generalize(p, vars, forbidden);
                }
            }
            _ => {}
        }
    }

    /// Variables that must not be quantified: anything still entangled in a
    /// pending projection constraint. Quantifying them would disconnect
    /// later resolutions from earlier instantiations.
    fn projection_locked_vars(&self) -> HashMap<TRef, ()> {
        let mut out = HashMap::new();
        for &(_, tuple, _, result) in &self.projections {
            self.collect_unbound(tuple, &mut out);
            self.collect_unbound(result, &mut out);
        }
        out
    }

    fn collect_unbound(&self, t: TRef, out: &mut HashMap<TRef, ()>) {
        let r = self.resolve(t);
        match self.store[r as usize].clone() {
            TyNode::Unbound { .. } => {
                out.insert(r, ());
            }
            TyNode::Arrow(a, b) => {
                self.collect_unbound(a, out);
                self.collect_unbound(b, out);
            }
            TyNode::Tuple(parts) => {
                for p in parts {
                    self.collect_unbound(p, out);
                }
            }
            _ => {}
        }
    }

    /// Resolves the projection constraints whose tuple type is now known;
    /// keeps the rest pending (they may resolve later). Called before each
    /// generalization and, strictly, at the end of inference.
    fn try_solve_projections(&mut self, strict: bool) -> Result<(), TypeError> {
        let mut remaining = std::mem::take(&mut self.projections);
        loop {
            let mut progress = false;
            let mut next = Vec::new();
            for (at, tuple, index, result) in remaining {
                let r = self.resolve(tuple);
                match self.store[r as usize].clone() {
                    TyNode::Tuple(parts) => {
                        match parts.get(index as usize) {
                            Some(&field) => self.unify(at, result, field)?,
                            None => {
                                return self.err(
                                    at,
                                    format!(
                                        "projection #{} out of range for a {}-tuple",
                                        index + 1,
                                        parts.len()
                                    ),
                                )
                            }
                        }
                        progress = true;
                    }
                    TyNode::Unbound { .. } => next.push((at, tuple, index, result)),
                    other => {
                        return self.err(
                            at,
                            format!("projection from non-record {}", self.describe(&other)),
                        )
                    }
                }
            }
            if next.is_empty() {
                self.projections = next;
                return Ok(());
            }
            if !progress {
                if strict {
                    let (at, ..) = next[0];
                    return self.err(
                        at,
                        "ambiguous record projection: the tuple's type is never determined",
                    );
                }
                self.projections = next;
                return Ok(());
            }
            remaining = next;
        }
    }

    fn instantiate(&mut self, scheme: &Scheme) -> TRef {
        if scheme.vars.is_empty() {
            return scheme.body;
        }
        let mut map: HashMap<TRef, TRef> = HashMap::new();
        for &v in &scheme.vars {
            let f = self.fresh();
            map.insert(v, f);
        }
        self.copy(scheme.body, &map)
    }

    fn copy(&mut self, t: TRef, map: &HashMap<TRef, TRef>) -> TRef {
        let r = self.resolve(t);
        if let Some(&m) = map.get(&r) {
            return m;
        }
        match self.store[r as usize].clone() {
            TyNode::Arrow(a, b) => {
                let a2 = self.copy(a, map);
                let b2 = self.copy(b, map);
                self.mk(TyNode::Arrow(a2, b2))
            }
            TyNode::Tuple(parts) => {
                let parts2: Vec<TRef> = parts.into_iter().map(|p| self.copy(p, map)).collect();
                self.mk(TyNode::Tuple(parts2))
            }
            _ => r,
        }
    }

    fn tyexpr_ref(&mut self, t: &TyExpr) -> TRef {
        match t {
            TyExpr::Int => self.mk(TyNode::Int),
            TyExpr::Bool => self.mk(TyNode::Bool),
            TyExpr::Unit => self.mk(TyNode::Unit),
            TyExpr::Data(d) => self.mk(TyNode::Data(*d)),
            TyExpr::Arrow(a, b) => {
                let a2 = self.tyexpr_ref(a);
                let b2 = self.tyexpr_ref(b);
                self.mk(TyNode::Arrow(a2, b2))
            }
            TyExpr::Tuple(parts) => {
                let parts2: Vec<TRef> = parts.iter().map(|p| self.tyexpr_ref(p)).collect();
                self.mk(TyNode::Tuple(parts2))
            }
        }
    }

    fn run(mut self) -> Result<TypedProgram, TypeError> {
        let root = self.program.root();
        let root_ref = self.infer(root)?;
        let _ = root_ref;
        self.try_solve_projections(true)?;
        // Extract final monotypes.
        let mut var_names: HashMap<TRef, u32> = HashMap::new();
        let expr_tys: Vec<Ty> = (0..self.program.size())
            .map(|i| self.extract(self.expr_refs[i], &mut var_names))
            .collect();
        let binder_tys: Vec<Ty> = (0..self.program.var_count())
            .map(|i| self.extract(self.binder_refs[i], &mut var_names))
            .collect();
        Ok(TypedProgram {
            expr_tys,
            binder_tys,
        })
    }

    fn extract(&self, t: TRef, var_names: &mut HashMap<TRef, u32>) -> Ty {
        let r = self.resolve(t);
        match self.store[r as usize].clone() {
            TyNode::Unbound { .. } => {
                let next = var_names.len() as u32;
                Ty::Var(*var_names.entry(r).or_insert(next))
            }
            TyNode::Link(_) => unreachable!("resolved"),
            TyNode::Int => Ty::Int,
            TyNode::Bool => Ty::Bool,
            TyNode::Unit => Ty::Unit,
            TyNode::Data(d) => Ty::Data(d),
            TyNode::Arrow(a, b) => Ty::Arrow(
                Rc::new(self.extract(a, var_names)),
                Rc::new(self.extract(b, var_names)),
            ),
            TyNode::Tuple(parts) => Ty::Tuple(
                parts
                    .into_iter()
                    .map(|p| self.extract(p, var_names))
                    .collect::<Vec<_>>()
                    .into(),
            ),
        }
    }

    fn bind_mono(&mut self, v: VarId, r: TRef) {
        self.binder_refs[v.index()] = r;
        self.schemes[v.index()] = Some(Scheme {
            vars: Vec::new(),
            body: r,
        });
    }

    fn infer(&mut self, e: ExprId) -> Result<TRef, TypeError> {
        let t = self.infer_kind(e)?;
        self.expr_refs[e.index()] = t;
        Ok(t)
    }

    fn infer_kind(&mut self, e: ExprId) -> Result<TRef, TypeError> {
        match self.program.kind(e).clone() {
            ExprKind::Lit(Literal::Int(_)) => Ok(self.mk(TyNode::Int)),
            ExprKind::Lit(Literal::Bool(_)) => Ok(self.mk(TyNode::Bool)),
            ExprKind::Lit(Literal::Unit) => Ok(self.mk(TyNode::Unit)),
            ExprKind::Var(v) => {
                let scheme = self.schemes[v.index()]
                    .clone()
                    .unwrap_or_else(|| panic!("binder {v:?} used before bound"));
                Ok(self.instantiate(&scheme))
            }
            ExprKind::Lam { param, body, .. } => {
                let p = self.fresh();
                self.bind_mono(param, p);
                let b = self.infer(body)?;
                Ok(self.mk(TyNode::Arrow(p, b)))
            }
            ExprKind::App { func, arg } => {
                let f = self.infer(func)?;
                let a = self.infer(arg)?;
                let r = self.fresh();
                let want = self.mk(TyNode::Arrow(a, r));
                self.unify(e, f, want)?;
                Ok(r)
            }
            ExprKind::Let { binder, rhs, body } => {
                self.level += 1;
                let r = self.infer(rhs)?;
                self.level -= 1;
                self.try_solve_projections(false)?;
                let forbidden = self.projection_locked_vars();
                let mut vars = Vec::new();
                self.generalize(r, &mut vars, &forbidden);
                self.binder_refs[binder.index()] = r;
                self.schemes[binder.index()] = Some(Scheme { vars, body: r });
                self.infer(body)
            }
            ExprKind::LetRec {
                binder,
                lambda,
                body,
            } => {
                self.level += 1;
                let f = self.fresh();
                self.bind_mono(binder, f);
                let l = self.infer(lambda)?;
                self.unify(e, f, l)?;
                self.level -= 1;
                self.try_solve_projections(false)?;
                let forbidden = self.projection_locked_vars();
                let mut vars = Vec::new();
                self.generalize(f, &mut vars, &forbidden);
                self.schemes[binder.index()] = Some(Scheme { vars, body: f });
                self.infer(body)
            }
            ExprKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.infer(cond)?;
                let bool_t = self.mk(TyNode::Bool);
                self.unify(e, c, bool_t)?;
                let t = self.infer(then_branch)?;
                let f = self.infer(else_branch)?;
                self.unify(e, t, f)?;
                Ok(t)
            }
            ExprKind::Record(items) => {
                let parts: Vec<TRef> = items
                    .iter()
                    .map(|&i| self.infer(i))
                    .collect::<Result<_, _>>()?;
                Ok(self.mk(TyNode::Tuple(parts)))
            }
            ExprKind::Proj { index, tuple } => {
                let t = self.infer(tuple)?;
                let r = self.fresh();
                self.projections.push((e, t, index, r));
                Ok(r)
            }
            ExprKind::Con { con, args } => {
                let info = self.program.data_env().con(con).clone();
                for (i, &a) in args.iter().enumerate() {
                    let at = self.infer(a)?;
                    let want = self.tyexpr_ref(&info.arg_tys[i]);
                    self.unify(e, at, want)?;
                }
                Ok(self.mk(TyNode::Data(info.data)))
            }
            ExprKind::Case {
                scrutinee,
                arms,
                default,
            } => {
                let s = self.infer(scrutinee)?;
                let result = self.fresh();
                if let Some(arm) = arms.first() {
                    let d = self.program.data_env().con(arm.con).data;
                    let want = self.mk(TyNode::Data(d));
                    self.unify(e, s, want)?;
                }
                for arm in arms.iter() {
                    let info = self.program.data_env().con(arm.con).clone();
                    for (i, &b) in arm.binders.iter().enumerate() {
                        let t = self.tyexpr_ref(&info.arg_tys[i]);
                        self.bind_mono(b, t);
                    }
                    let bt = self.infer(arm.body)?;
                    self.unify(e, result, bt)?;
                }
                if let Some(d) = default {
                    let dt = self.infer(d)?;
                    self.unify(e, result, dt)?;
                }
                Ok(result)
            }
            ExprKind::Prim { op, args } => {
                let arg_refs: Vec<TRef> = args
                    .iter()
                    .map(|&a| self.infer(a))
                    .collect::<Result<_, _>>()?;
                let (wants, result): (Vec<TyNode>, TyNode) = match op {
                    PrimOp::Add | PrimOp::Sub | PrimOp::Mul | PrimOp::Div => {
                        (vec![TyNode::Int, TyNode::Int], TyNode::Int)
                    }
                    PrimOp::Lt | PrimOp::Leq | PrimOp::IntEq => {
                        (vec![TyNode::Int, TyNode::Int], TyNode::Bool)
                    }
                    PrimOp::Not => (vec![TyNode::Bool], TyNode::Bool),
                    PrimOp::Print => (vec![TyNode::Int], TyNode::Unit),
                    PrimOp::ReadInt => (Vec::new(), TyNode::Int),
                };
                for (&got, want) in arg_refs.iter().zip(wants) {
                    let w = self.mk(want);
                    self.unify(e, got, w)?;
                }
                Ok(self.mk(result))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::Program;

    fn infer_root(src: &str) -> Ty {
        let p = Program::parse(src).unwrap();
        let t = TypedProgram::infer(&p).unwrap_or_else(|e| panic!("{src:?}: {e}"));
        t.ty(p.root()).clone()
    }

    #[test]
    fn literals_and_arithmetic() {
        assert_eq!(infer_root("1 + 2"), Ty::Int);
        assert_eq!(infer_root("1 < 2"), Ty::Bool);
        assert_eq!(infer_root("()"), Ty::Unit);
        assert_eq!(infer_root("print 3"), Ty::Unit);
    }

    #[test]
    fn lambda_and_application() {
        assert_eq!(infer_root("(fn x => x + 1) 2"), Ty::Int);
        let t = infer_root("fn x => x + 1");
        assert_eq!(t, Ty::arrow(Ty::Int, Ty::Int));
    }

    #[test]
    fn let_polymorphism() {
        // id used at two different types — requires generalization.
        assert_eq!(
            infer_root("let val id = fn x => x in (id (fn b => b)) (id 1) end"),
            Ty::Int
        );
        assert_eq!(
            infer_root("fun id x = x; val n = id 1; val b = id true; n"),
            Ty::Int
        );
    }

    #[test]
    fn monomorphic_lambda_params_reject_polymorphic_use() {
        // λ-bound variables are monomorphic: f used at two types fails.
        let p = Program::parse("(fn f => (f 1, f true)) (fn x => x)").unwrap();
        assert!(TypedProgram::infer(&p).is_err());
    }

    #[test]
    fn occurs_check_rejects_self_application() {
        let p = Program::parse("fn x => x x").unwrap();
        assert!(TypedProgram::infer(&p).is_err());
    }

    #[test]
    fn recursion() {
        assert_eq!(
            infer_root("fun fact n = if n = 0 then 1 else n * fact (n - 1); fact 5"),
            Ty::Int
        );
    }

    #[test]
    fn records_and_projection() {
        assert_eq!(infer_root("#2 (1, true)"), Ty::Bool);
        assert_eq!(infer_root("(fn p => #1 p) (1, true)"), Ty::Int);
    }

    #[test]
    fn ambiguous_projection_is_an_error() {
        let p = Program::parse("fn p => #1 p").unwrap();
        assert!(TypedProgram::infer(&p).is_err());
    }

    #[test]
    fn out_of_range_projection_is_an_error() {
        let p = Program::parse("#3 (1, 2)").unwrap();
        assert!(TypedProgram::infer(&p).is_err());
    }

    #[test]
    fn datatypes() {
        let src = "datatype intlist = Nil | Cons of int * intlist;\n\
                   fun sum xs = case xs of Cons(h, t) => h + sum t | Nil => 0;\n\
                   sum (Cons(1, Nil))";
        assert_eq!(infer_root(src), Ty::Int);
    }

    #[test]
    fn case_arm_mismatch_is_an_error() {
        let src = "datatype t = A | B; case A of A => 1 | B => true";
        let p = Program::parse(src).unwrap();
        assert!(TypedProgram::infer(&p).is_err());
    }

    #[test]
    fn if_branches_must_agree() {
        let p = Program::parse("if true then 1 else false").unwrap();
        assert!(TypedProgram::infer(&p).is_err());
    }

    #[test]
    fn binder_types_are_recorded() {
        let p = Program::parse("fun id x = x; id 3").unwrap();
        let t = TypedProgram::infer(&p).unwrap();
        // id's recorded (generalized) type is 'a -> 'a.
        let id_binder = p.vars().find(|&v| p.var_name(v) == "id").unwrap();
        match t.binder_ty(id_binder) {
            Ty::Arrow(a, b) => assert_eq!(a, b),
            other => panic!("expected arrow, got {other:?}"),
        }
    }

    #[test]
    fn projections_resolve_before_generalization() {
        // Regression: a binding whose type contains a *pending* projection
        // constraint (here: the `and` desugaring's `#1 ($pack 0)` wrappers,
        // whose tuple type is determined only later) used to be generalized
        // over the constraint's variables, disconnecting later resolution
        // from earlier instantiations — `r` came out as a free type
        // variable instead of `bool`.
        let p = Program::parse(
            "fun even n = if n = 0 then true else odd (n - 1)\n\
             and odd n = if n = 0 then false else even (n - 1);\n\
             val r = even 4; r",
        )
        .unwrap();
        let t = TypedProgram::infer(&p).unwrap();
        assert_eq!(*t.ty(p.root()), Ty::Bool);
        let r = p.vars().find(|&v| p.var_name(v) == "r").unwrap();
        assert_eq!(*t.binder_ty(r), Ty::Bool);
    }

    #[test]
    fn polymorphic_instantiations_differ_per_use() {
        let p = Program::parse("fun id x = x; val a = id 1; val b = id true; ()").unwrap();
        let t = TypedProgram::infer(&p).unwrap();
        // Find the two `id` occurrences and check their instantiated types.
        let id_binder = p.vars().find(|&v| p.var_name(v) == "id").unwrap();
        let uses: Vec<Ty> = p
            .exprs()
            .filter(|&e| matches!(p.kind(e), ExprKind::Var(v) if *v == id_binder))
            .map(|e| t.ty(e).clone())
            .collect();
        assert_eq!(uses.len(), 2);
        assert!(uses.contains(&Ty::arrow(Ty::Int, Ty::Int)));
        assert!(uses.contains(&Ty::arrow(Ty::Bool, Ty::Bool)));
    }
}
