//! Hindley–Milner types and type-boundedness metrics for subtransitive CFA.
//!
//! Types play a peculiar role in the paper: the analysis itself never looks
//! at them, but their *existence* bounds the node construction and hence
//! yields the linear-time result for bounded-type programs (Sections 4–5).
//! This crate provides the machinery to *measure* that: full let-polymorphic
//! inference ([`TypedProgram`]), the size/order/arity measures on types
//! ([`Ty`]), and program-level aggregates ([`TypeMetrics`]) including the
//! `k_avg` constant the paper reports as "typically around 2 or 3".
//!
//! ```
//! use stcfa_lambda::Program;
//! use stcfa_types::{TypedProgram, TypeMetrics};
//!
//! let p = Program::parse("fun id x = x; id (fn b => b)").unwrap();
//! let typed = TypedProgram::infer(&p).unwrap();
//! let m = TypeMetrics::compute(&p, &typed);
//! assert!(m.is_k_bounded(8));
//! ```

#![warn(missing_docs)]

pub mod infer;
pub mod metrics;
pub mod ty;

pub use infer::{TypeError, TypedProgram};
pub use metrics::TypeMetrics;
pub use ty::Ty;
