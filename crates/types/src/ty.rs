//! Monotypes and the size/order/arity measures of Section 2 and Section 4.

use std::fmt;
use std::rc::Rc;

use stcfa_lambda::{DataId, Program};

/// A monotype. Type variables that remain after inference are implicitly
/// universally quantified (they came from a generalized `let`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Ty {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `unit`
    Unit,
    /// A declared datatype.
    Data(DataId),
    /// `t₁ -> t₂`
    Arrow(Rc<Ty>, Rc<Ty>),
    /// `t₁ * … * tₙ`
    Tuple(Rc<[Ty]>),
    /// A type variable.
    Var(u32),
}

impl Ty {
    /// Builds an arrow type.
    pub fn arrow(a: Ty, b: Ty) -> Ty {
        Ty::Arrow(Rc::new(a), Rc::new(b))
    }

    /// The *tree size* of the type — the measure the paper bounds by `k`
    /// for bounded-type programs. Leaves (base types, datatypes, variables)
    /// count 1; `->` and tuple constructors count 1 plus their children.
    pub fn size(&self) -> usize {
        match self {
            Ty::Int | Ty::Bool | Ty::Unit | Ty::Data(_) | Ty::Var(_) => 1,
            Ty::Arrow(a, b) => 1 + a.size() + b.size(),
            Ty::Tuple(parts) => 1 + parts.iter().map(Ty::size).sum::<usize>(),
        }
    }

    /// The *order* of the type: base types have order 0, and
    /// `order(a -> b) = max(order(a) + 1, order(b))`. The paper's
    /// bounded-type class can equivalently bound order and arity.
    pub fn order(&self) -> usize {
        match self {
            Ty::Int | Ty::Bool | Ty::Unit | Ty::Data(_) | Ty::Var(_) => 0,
            Ty::Arrow(a, b) => (a.order() + 1).max(b.order()),
            Ty::Tuple(parts) => parts.iter().map(Ty::order).max().unwrap_or(0),
        }
    }

    /// The *arity* of the type, counted so that "currying increases
    /// argument count rather than order" (paper, Section 1): the length of
    /// the maximal arrow spine, recursively maximized over components.
    pub fn arity(&self) -> usize {
        fn spine(t: &Ty) -> usize {
            match t {
                Ty::Arrow(_, b) => 1 + spine(b),
                _ => 0,
            }
        }
        let here = spine(self);
        let inner = match self {
            Ty::Arrow(a, b) => a.arity().max(b.arity_under_spine()),
            Ty::Tuple(parts) => parts.iter().map(Ty::arity).max().unwrap_or(0),
            _ => 0,
        };
        here.max(inner)
    }

    fn arity_under_spine(&self) -> usize {
        match self {
            Ty::Arrow(a, b) => a.arity().max(b.arity_under_spine()),
            other => other.arity(),
        }
    }

    /// Renders the type using the program's datatype names.
    pub fn display<'a>(&'a self, program: &'a Program) -> TyDisplay<'a> {
        TyDisplay { ty: self, program }
    }
}

/// Helper for rendering types with datatype names resolved.
pub struct TyDisplay<'a> {
    ty: &'a Ty,
    program: &'a Program,
}

impl fmt::Display for TyDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(t: &Ty, program: &Program, f: &mut fmt::Formatter<'_>, atom: bool) -> fmt::Result {
            match t {
                Ty::Int => write!(f, "int"),
                Ty::Bool => write!(f, "bool"),
                Ty::Unit => write!(f, "unit"),
                Ty::Var(v) => write!(f, "'t{v}"),
                Ty::Data(d) => {
                    write!(
                        f,
                        "{}",
                        program.interner().resolve(program.data_env().data(*d).name)
                    )
                }
                Ty::Arrow(a, b) => {
                    if atom {
                        write!(f, "(")?;
                    }
                    go(a, program, f, true)?;
                    write!(f, " -> ")?;
                    go(b, program, f, false)?;
                    if atom {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Ty::Tuple(parts) => {
                    write!(f, "(")?;
                    for (i, p) in parts.iter().enumerate() {
                        if i > 0 {
                            write!(f, " * ")?;
                        }
                        go(p, program, f, false)?;
                    }
                    write!(f, ")")
                }
            }
        }
        go(self.ty, self.program, f, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i() -> Ty {
        Ty::Int
    }

    #[test]
    fn size_counts_tree_nodes() {
        assert_eq!(i().size(), 1);
        assert_eq!(Ty::arrow(i(), i()).size(), 3);
        // (int -> int) -> int list-ish: ((int -> int) -> (int -> int))
        let t = Ty::arrow(Ty::arrow(i(), i()), Ty::arrow(i(), i()));
        assert_eq!(t.size(), 7);
        let tup = Ty::Tuple(vec![i(), i(), i()].into());
        assert_eq!(tup.size(), 4);
    }

    #[test]
    fn order_counts_arrow_nesting_on_the_left() {
        assert_eq!(i().order(), 0);
        assert_eq!(Ty::arrow(i(), i()).order(), 1);
        // (int -> int) -> int has order 2.
        assert_eq!(Ty::arrow(Ty::arrow(i(), i()), i()).order(), 2);
        // int -> (int -> int) stays order 1 (currying).
        assert_eq!(Ty::arrow(i(), Ty::arrow(i(), i())).order(), 1);
    }

    #[test]
    fn arity_counts_curried_arguments() {
        // The paper's example: (Int -> Int) -> Int list -> Int list has
        // arity 2 and order 2 (we use plain Int for the list type here).
        let map_ty = Ty::arrow(Ty::arrow(i(), i()), Ty::arrow(i(), i()));
        assert_eq!(map_ty.arity(), 2);
        assert_eq!(map_ty.order(), 2);
        assert_eq!(i().arity(), 0);
        assert_eq!(Ty::arrow(i(), i()).arity(), 1);
    }
}
