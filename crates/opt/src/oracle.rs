//! The differential oracle: the CBV evaluator run on both programs.
//!
//! The rewrite passes argue soundness statically; this module checks it
//! dynamically, the way the analysis itself is checked against the
//! evaluator's ground-truth call traces. Values are compared structurally
//! rather than by `==` because labels renumber across rebuilds: two
//! closures agree as closures, everything else must match exactly.
//!
//! Fuel and depth are *monotone* under the rewrites — an optimized
//! program performs a subset of the original's work (elided sites never
//! ran, an inlined `let` costs no more than the application it replaces,
//! a pruned argument was a value) — which fixes the asymmetric exhaustion
//! policy: an original that exhausts its budget licenses anything, an
//! optimized program that exhausts a budget the original lived within is
//! a real disagreement.

use stcfa_lambda::eval::{eval, EvalError, EvalOptions, Value};
use stcfa_lambda::Program;

/// How the two runs agreed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Agreement {
    /// Both succeeded with structurally equal values and identical
    /// outputs.
    Values,
    /// Both failed with the same kind of error.
    Errors,
    /// The original exhausted its fuel or depth budget; the optimized
    /// program is allowed any outcome (it got further on the same
    /// budget).
    OriginalExhausted,
}

/// Runs both programs under the same options and compares outcomes.
/// `Err` carries a human-readable description of the disagreement.
pub fn check(
    original: &Program,
    optimized: &Program,
    options: &EvalOptions,
) -> Result<Agreement, String> {
    let a = eval(original, options.clone());
    let b = eval(optimized, options.clone());
    match (a, b) {
        (Ok(a), Ok(b)) => {
            if !values_agree(&a.value, &b.value) {
                Err(format!(
                    "values differ: original {:?}, optimized {:?}",
                    a.value, b.value
                ))
            } else if a.outputs != b.outputs {
                Err(format!(
                    "outputs differ: original {:?}, optimized {:?}",
                    a.outputs, b.outputs
                ))
            } else {
                Ok(Agreement::Values)
            }
        }
        (Err(ea), Err(eb)) => {
            if error_kind(&ea) == error_kind(&eb) {
                Ok(Agreement::Errors)
            } else if exhausted(&ea) {
                Ok(Agreement::OriginalExhausted)
            } else {
                Err(format!("errors differ: original {ea}, optimized {eb}"))
            }
        }
        (Err(ea), Ok(_)) if exhausted(&ea) => Ok(Agreement::OriginalExhausted),
        (Err(ea), Ok(_)) => Err(format!(
            "original failed ({ea}) but the optimized program succeeded"
        )),
        (Ok(_), Err(eb)) => Err(format!(
            "optimized program failed ({eb}) where the original succeeded"
        )),
    }
}

/// Structural value equality, label-blind for closures.
pub fn values_agree(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Unit, Value::Unit) => true,
        (Value::Closure(_), Value::Closure(_)) => true,
        (Value::Record(xs), Value::Record(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| values_agree(x, y))
        }
        (Value::Con { con: ca, args: xs }, Value::Con { con: cb, args: ys }) => {
            ca == cb
                && xs.len() == ys.len()
                && xs.iter().zip(ys.iter()).all(|(x, y)| values_agree(x, y))
        }
        _ => false,
    }
}

fn exhausted(e: &EvalError) -> bool {
    matches!(e, EvalError::OutOfFuel | EvalError::DepthExceeded(_))
}

fn error_kind(e: &EvalError) -> &'static str {
    match e {
        EvalError::OutOfFuel | EvalError::DepthExceeded(_) => "exhausted",
        EvalError::TypeError { .. } => "type-error",
        EvalError::DivByZero(_) => "div-by-zero",
        EvalError::MatchFailure(_) => "match-failure",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        Program::parse(src).expect("parses")
    }

    #[test]
    fn identical_programs_agree() {
        let p = parse("(fn x => x + 1) 41");
        assert_eq!(
            check(&p, &p, &EvalOptions::default()),
            Ok(Agreement::Values)
        );
    }

    #[test]
    fn closures_agree_regardless_of_label() {
        let a = parse("fn x => x");
        let b = parse("let val u = fn y => y in fn x => x end");
        assert_eq!(
            check(&a, &b, &EvalOptions::default()),
            Ok(Agreement::Values)
        );
    }

    #[test]
    fn differing_values_are_reported() {
        let a = parse("1 + 1");
        let b = parse("1 + 2");
        assert!(check(&a, &b, &EvalOptions::default()).is_err());
    }

    #[test]
    fn original_exhaustion_licenses_anything() {
        let spin = parse("fun spin n = spin n; spin 0");
        let done = parse("42");
        let opts = EvalOptions {
            fuel: 1_000,
            ..EvalOptions::default()
        };
        assert_eq!(check(&spin, &done, &opts), Ok(Agreement::OriginalExhausted));
        assert_eq!(check(&spin, &spin, &opts), Ok(Agreement::Errors));
        // The other direction is a genuine disagreement.
        assert!(check(&done, &spin, &opts).is_err());
    }

    #[test]
    fn matching_error_kinds_agree() {
        let a = parse("1 div 0");
        let b = parse("2 div 0");
        assert_eq!(
            check(&a, &b, &EvalOptions::default()),
            Ok(Agreement::Errors)
        );
    }
}
