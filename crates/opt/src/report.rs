//! Pass identifiers, skip bookkeeping, and the per-run [`OptReport`].
//!
//! Every pass invocation records what it *planned*, what it actually
//! *performed* during the rebuild, and every candidate it declined with a
//! machine-readable reason — so a run with zero rewrites still explains
//! itself. The JSON renderer is a pure function of the report, matching
//! the determinism discipline of the lint renderers.

use std::fmt::Write as _;

use stcfa_lambda::{ExprId, Label};

/// One lowering pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Replace oracle-confirmed flow-dead, provably-unevaluated
    /// applications with `()` (acts on `STCFA001` evidence).
    DeadApp,
    /// Beta-reduce applications of functions the engine proves called
    /// exactly once (acts on `STCFA003` evidence).
    InlineOnce,
    /// Replace arguments that flow only into unused parameters with `()`
    /// (acts on `STCFA004` evidence).
    PruneParams,
    /// Report-only: mark applications whose operator has a singleton
    /// target set as direct calls (no rewrite, metadata for a backend).
    DirectCalls,
}

impl Pass {
    /// The stable kebab-case name used on the CLI and in reports.
    pub fn name(self) -> &'static str {
        match self {
            Pass::DeadApp => "dead-app",
            Pass::InlineOnce => "inline-once",
            Pass::PruneParams => "prune-params",
            Pass::DirectCalls => "direct-calls",
        }
    }

    /// Parses a pass name as written on the CLI.
    pub fn from_name(name: &str) -> Option<Pass> {
        Pass::all().into_iter().find(|p| p.name() == name)
    }

    /// All passes, in pipeline order.
    pub fn all() -> [Pass; 4] {
        [
            Pass::DeadApp,
            Pass::InlineOnce,
            Pass::PruneParams,
            Pass::DirectCalls,
        ]
    }
}

/// A set of enabled passes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PassSet(u8);

impl PassSet {
    /// No passes enabled (the optimizer becomes an expensive identity).
    pub fn empty() -> PassSet {
        PassSet(0)
    }

    /// Every pass enabled — the default pipeline.
    pub fn all() -> PassSet {
        Pass::all()
            .into_iter()
            .fold(PassSet::empty(), PassSet::with)
    }

    /// Exactly one pass enabled.
    pub fn only(pass: Pass) -> PassSet {
        PassSet::empty().with(pass)
    }

    /// This set plus `pass`.
    pub fn with(self, pass: Pass) -> PassSet {
        PassSet(self.0 | 1 << pass as u8)
    }

    /// This set minus `pass`.
    pub fn without(self, pass: Pass) -> PassSet {
        PassSet(self.0 & !(1 << pass as u8))
    }

    /// Whether `pass` is enabled.
    pub fn contains(self, pass: Pass) -> bool {
        self.0 & 1 << pass as u8 != 0
    }
}

impl Default for PassSet {
    fn default() -> Self {
        PassSet::all()
    }
}

/// Why a candidate rewrite was declined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkipReason {
    /// Dead-app: the reachability analysis cannot prove the site is never
    /// evaluated, so deleting it could suppress a runtime error or a
    /// divergence.
    MayEvaluate,
    /// The cubic CFA oracle does not confirm the engine's evidence.
    OracleDisputed,
    /// Inline: the operator is neither the abstraction itself nor a
    /// variable bound directly to it by an enclosing `let`/`letrec`.
    NotDirectOperator,
    /// Inline: the bound variable occurs elsewhere too, so the binding
    /// cannot be dropped and inlining would duplicate the body.
    MultipleUses,
    /// Prune: the argument is not a value form (variable, literal,
    /// abstraction), so replacing it could drop effects or divergence.
    ArgNotValue,
    /// Prune: the argument is already `()` — nothing to do.
    ArgAlreadyUnit,
    /// The per-pass rewrite budget for this round is exhausted.
    Budget,
}

impl SkipReason {
    /// The stable kebab-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SkipReason::MayEvaluate => "may-evaluate",
            SkipReason::OracleDisputed => "oracle-disputed",
            SkipReason::NotDirectOperator => "not-direct-operator",
            SkipReason::MultipleUses => "multiple-uses",
            SkipReason::ArgNotValue => "arg-not-value",
            SkipReason::ArgAlreadyUnit => "arg-already-unit",
            SkipReason::Budget => "budget-exhausted",
        }
    }
}

/// One declined candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Skip {
    /// The occurrence the rewrite would have touched.
    pub at: ExprId,
    /// Why it was declined.
    pub reason: SkipReason,
}

/// What one pass invocation (one pass in one round) did.
#[derive(Clone, Debug)]
pub struct PassReport {
    /// Which pass ran.
    pub pass: Pass,
    /// Which fixpoint round it ran in (1-based).
    pub round: usize,
    /// Rewrites planned from the evidence (an inline counts once, even
    /// though it also drops the binding).
    pub planned: usize,
    /// Rewrites actually performed during the rebuild. Can be smaller
    /// than `planned` when one rewrite subsumes another (a dead
    /// application nested inside a larger dead application).
    pub performed: usize,
    /// Candidates declined, with reasons, in evidence order.
    pub skipped: Vec<Skip>,
}

/// A report-only direct-call fact from the final snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirectCall {
    /// The application.
    pub app: ExprId,
    /// The single abstraction that can be called there.
    pub target: Label,
}

/// The full record of one optimizer run.
#[derive(Clone, Debug)]
pub struct OptReport {
    /// Occurrence count of the input program.
    pub nodes_before: usize,
    /// Occurrence count of the optimized program.
    pub nodes_after: usize,
    /// Abstraction count of the input program.
    pub labels_before: usize,
    /// Abstraction count of the optimized program.
    pub labels_after: usize,
    /// Fixpoint rounds executed (a round that performs nothing still
    /// counts — it is the evidence the pipeline converged).
    pub rounds: usize,
    /// One entry per pass invocation, in execution order.
    pub passes: Vec<PassReport>,
    /// Direct-call facts from the final snapshot (empty unless the
    /// `direct-calls` pass is enabled).
    pub direct_calls: Vec<DirectCall>,
}

impl OptReport {
    /// Total rewrites performed across all passes and rounds.
    pub fn performed_total(&self) -> usize {
        self.passes.iter().map(|p| p.performed).sum()
    }

    /// Renders the report as a single JSON object (stable key order),
    /// terminated by a newline.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"nodes_before\":{},\"nodes_after\":{},\"labels_before\":{},\"labels_after\":{},\"rounds\":{},\"passes\":[",
            self.nodes_before, self.nodes_after, self.labels_before, self.labels_after, self.rounds
        );
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"pass\":\"{}\",\"round\":{},\"planned\":{},\"performed\":{},\"skipped\":[",
                p.pass.name(),
                p.round,
                p.planned,
                p.performed
            );
            for (j, s) in p.skipped.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"at\":{},\"reason\":\"{}\"}}",
                    s.at.index(),
                    s.reason.name()
                );
            }
            out.push_str("]}");
        }
        out.push_str("],\"direct_calls\":[");
        for (i, d) in self.direct_calls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"app\":{},\"target\":{}}}",
                d.app.index(),
                d.target.index()
            );
        }
        out.push_str("]}\n");
        out
    }

    /// Renders a short human-readable summary, one pass invocation per
    /// line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "opt: {} -> {} nodes, {} -> {} abstractions, {} round{}",
            self.nodes_before,
            self.nodes_after,
            self.labels_before,
            self.labels_after,
            self.rounds,
            if self.rounds == 1 { "" } else { "s" }
        );
        for p in &self.passes {
            let _ = writeln!(
                out,
                "  round {} {}: {} performed, {} skipped",
                p.round,
                p.pass.name(),
                p.performed,
                p.skipped.len()
            );
        }
        if !self.direct_calls.is_empty() {
            let _ = writeln!(out, "  direct calls: {}", self.direct_calls.len());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_names_round_trip() {
        for p in Pass::all() {
            assert_eq!(Pass::from_name(p.name()), Some(p));
        }
        assert_eq!(Pass::from_name("no-such-pass"), None);
    }

    #[test]
    fn pass_set_algebra() {
        let s = PassSet::all();
        for p in Pass::all() {
            assert!(s.contains(p));
            assert!(!s.without(p).contains(p));
            assert!(PassSet::only(p).contains(p));
        }
        assert!(!PassSet::empty().contains(Pass::DeadApp));
    }

    #[test]
    fn json_shape_is_stable() {
        let report = OptReport {
            nodes_before: 10,
            nodes_after: 8,
            labels_before: 2,
            labels_after: 1,
            rounds: 2,
            passes: vec![PassReport {
                pass: Pass::DeadApp,
                round: 1,
                planned: 1,
                performed: 1,
                skipped: vec![Skip {
                    at: ExprId::from_index(7),
                    reason: SkipReason::MayEvaluate,
                }],
            }],
            direct_calls: vec![DirectCall {
                app: ExprId::from_index(3),
                target: Label::from_index(1),
            }],
        };
        let json = report.to_json();
        assert_eq!(
            json,
            "{\"nodes_before\":10,\"nodes_after\":8,\"labels_before\":2,\"labels_after\":1,\
             \"rounds\":2,\"passes\":[{\"pass\":\"dead-app\",\"round\":1,\"planned\":1,\
             \"performed\":1,\"skipped\":[{\"at\":7,\"reason\":\"may-evaluate\"}]}],\
             \"direct_calls\":[{\"app\":3,\"target\":1}]}\n"
        );
        assert_eq!(report.performed_total(), 1);
        assert!(report.to_text().contains("round 1 dead-app"));
    }
}
