//! Per-pass planners: evidence in, [`RewritePlan`] plus skips out.
//!
//! All evidence comes from [`stcfa_lint::evidence`] — the same functions
//! the lint rules report from — so a finding and the rewrite it licenses
//! can never disagree. On top of the shared evidence each planner applies
//! the pass's own soundness gates (reachability for elision, the direct
//! sole-occurrence binding restriction for inlining, value-form arguments
//! for pruning), and every gate refusal is recorded as a [`Skip`].

use std::collections::HashMap;

use stcfa_cfa0::{Cfa0, LiveCfa0};
use stcfa_core::{Answer, Query, QueryEngine};
use stcfa_lambda::{ExprId, ExprKind, Label, Literal, Program};
use stcfa_lint::evidence;

use crate::report::{Skip, SkipReason};
use crate::rewrite::{Action, RewritePlan};

/// One pass's planning outcome.
#[derive(Debug, Default)]
pub struct PassPlan {
    /// The edits to apply (empty when nothing is provable).
    pub plan: RewritePlan,
    /// Candidates declined, with reasons, in evidence order.
    pub skipped: Vec<Skip>,
}

impl PassPlan {
    fn skip(&mut self, at: ExprId, reason: SkipReason) {
        self.skipped.push(Skip { at, reason });
    }
}

/// Plans dead-application elision (`STCFA001` evidence). A site is
/// elided only when the engine proves its operator flow-dead, the cubic
/// oracle confirms it, *and* the reachability analysis proves the site is
/// never evaluated — a reachable flow-dead application still raises a
/// dynamic type error (or diverges in its operator) at runtime, so
/// deleting it would change behaviour.
pub fn dead_apps(
    program: &Program,
    engine: &QueryEngine,
    cfa: &Cfa0,
    live: &LiveCfa0,
    threads: usize,
    budget: usize,
) -> PassPlan {
    let mut out = PassPlan::default();
    let ev = evidence::app_evidence(program, engine, threads);
    let confirmed = evidence::confirm_flow_dead(program, cfa, &ev.flow_dead);
    for c in &ev.flow_dead {
        if !confirmed.contains(c) {
            out.skip(c.app, SkipReason::OracleDisputed);
        }
    }
    for c in confirmed {
        if live.is_live(c.app) {
            out.skip(c.app, SkipReason::MayEvaluate);
        } else if out.plan.rewrites() >= budget {
            out.skip(c.app, SkipReason::Budget);
        } else {
            out.plan.insert(c.app, Action::ElideApp);
        }
    }
    out
}

/// Plans called-once inlining (`STCFA003` evidence). Two shapes are
/// accepted:
///
/// - a direct redex `(fn x => body) arg`, where beta-reduction is
///   unconditionally sound; and
/// - `f arg` where `f` is bound *directly* to the called-once abstraction
///   by an enclosing `let`/`letrec` and occurs nowhere else in the whole
///   program. The body is copied to the site and the binding dropped in
///   the same rebuild, so no subtree is ever duplicated. Immutable
///   bindings plus program-wide unique binders make the move sound even
///   when the site sits under a different abstraction: the body's free
///   variables are bound by binders enclosing the binding, hence the
///   site, and every activation sees the same values.
///
/// Anything subtler (the operator is a projection, a conditional, a
/// re-bound variable…) is skipped: flow evidence alone cannot justify
/// moving the body when closures cross activations.
pub fn inline_once(program: &Program, engine: &QueryEngine, cfa: &Cfa0, budget: usize) -> PassPlan {
    let mut out = PassPlan::default();
    let ev = evidence::called_once_evidence(program, engine);
    if ev.is_empty() {
        return out;
    }
    // binder -> (binding node, bound abstraction), for the Var case.
    let mut binding_of: HashMap<usize, (ExprId, ExprId)> = HashMap::new();
    for e in program.exprs() {
        match program.kind(e) {
            ExprKind::Let { binder, rhs, .. }
                if matches!(program.kind(*rhs), ExprKind::Lam { .. }) =>
            {
                binding_of.insert(binder.index(), (e, *rhs));
            }
            ExprKind::LetRec { binder, lambda, .. } => {
                binding_of.insert(binder.index(), (e, *lambda));
            }
            _ => {}
        }
    }
    for (label, site) in ev {
        let ExprKind::App { func, .. } = program.kind(site) else {
            continue;
        };
        let lam = program.lam_of_label(label);
        if out.plan.rewrites() >= budget {
            out.skip(site, SkipReason::Budget);
            continue;
        }
        match program.kind(*func) {
            ExprKind::Lam {
                label: operator, ..
            } if *operator == label => {
                if cfa.call_targets(program, site) == Some(vec![label]) {
                    out.plan.insert(site, Action::InlineRedex);
                } else {
                    out.skip(site, SkipReason::OracleDisputed);
                }
            }
            ExprKind::Var(v) => match binding_of.get(&v.index()) {
                Some(&(binding, bound)) if bound == lam => {
                    if engine.occurrence_count(*v) != 1 {
                        out.skip(site, SkipReason::MultipleUses);
                    } else if cfa.labels(program, *func) != vec![label] {
                        out.skip(site, SkipReason::OracleDisputed);
                    } else if out.plan.insert(site, Action::InlineBound { lam }) {
                        out.plan.insert(binding, Action::DropBinding);
                    }
                }
                _ => out.skip(site, SkipReason::NotDirectOperator),
            },
            _ => out.skip(site, SkipReason::NotDirectOperator),
        }
    }
    out
}

/// Plans useless-parameter pruning (`STCFA004` evidence). An argument is
/// replaced with `()` only when
///
/// - every abstraction in the engine's target set for the site has an
///   unused parameter, and the cubic oracle's (never larger under ≈₁,
///   but independent under `Forget`) target set agrees — so the value
///   provably flows only into parameters nobody reads; and
/// - the argument is a value form (variable, literal, abstraction), so
///   evaluating `()` in its place cannot lose effects, input/output, or
///   divergence; and
/// - the argument is not already `()` (otherwise the pass would claim
///   progress forever).
pub fn prune_params(
    program: &Program,
    engine: &QueryEngine,
    cfa: &Cfa0,
    threads: usize,
    budget: usize,
) -> PassPlan {
    let mut out = PassPlan::default();
    let useless = evidence::useless_param_evidence(program, engine);
    if useless.is_empty() {
        return out;
    }
    let useless_label = |l: &Label| {
        let lam = program.lam_of_label(*l);
        useless.iter().any(|&(e, _)| e == lam)
    };
    let apps = program.app_sites();
    let queries: Vec<Query> = apps
        .iter()
        .map(|&a| Query::call_targets(program, a).expect("app site"))
        .collect();
    let answers = engine.batch(&queries, threads.max(1));
    for (&app, answer) in apps.iter().zip(&answers) {
        let Answer::Labels(targets) = answer else {
            unreachable!("LabelsOf answers Labels")
        };
        if targets.is_empty() || !targets.iter().all(useless_label) {
            continue; // not evidenced at this site; dead sites are the elision pass's business
        }
        let ExprKind::App { arg, .. } = program.kind(app) else {
            unreachable!("app site")
        };
        match program.kind(*arg) {
            ExprKind::Lit(Literal::Unit) => out.skip(app, SkipReason::ArgAlreadyUnit),
            ExprKind::Var(_) | ExprKind::Lit(_) | ExprKind::Lam { .. } => {
                let oracle_agrees = match cfa.call_targets(program, app) {
                    Some(ts) => !ts.is_empty() && ts.iter().all(useless_label),
                    None => false,
                };
                if !oracle_agrees {
                    out.skip(app, SkipReason::OracleDisputed);
                } else if out.plan.rewrites() >= budget {
                    out.skip(app, SkipReason::Budget);
                } else {
                    out.plan.insert(app, Action::UnitArg);
                }
            }
            _ => out.skip(app, SkipReason::ArgNotValue),
        }
    }
    out
}

/// Collects the report-only direct-call facts: applications whose engine
/// target set is a singleton the cubic oracle agrees on. No rewrite —
/// this is the classic CFA client (turning indirect calls direct) as
/// metadata a code generator could consume.
pub fn direct_calls(
    program: &Program,
    engine: &QueryEngine,
    cfa: &Cfa0,
    threads: usize,
) -> Vec<crate::report::DirectCall> {
    engine
        .singleton_call_targets(program, threads)
        .into_iter()
        .filter(|&(app, target)| cfa.call_targets(program, app) == Some(vec![target]))
        .map(|(app, target)| crate::report::DirectCall { app, target })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_core::Analysis;

    fn setup(src: &str) -> (Program, QueryEngine, Cfa0) {
        let p = Program::parse(src).expect("parses");
        let a = Analysis::run(&p).expect("analyzes");
        let e = QueryEngine::freeze(&a);
        let cfa = Cfa0::analyze(&p);
        (p, e, cfa)
    }

    #[test]
    fn reachable_flow_dead_app_is_not_elided() {
        let (p, e, cfa) = setup("let val f = #1 (1, 2) in f 3 end");
        let live = LiveCfa0::analyze(&p);
        let pp = dead_apps(&p, &e, &cfa, &live, 1, usize::MAX);
        assert!(pp.plan.is_empty());
        assert_eq!(pp.skipped.len(), 1);
        assert_eq!(pp.skipped[0].reason, SkipReason::MayEvaluate);
    }

    #[test]
    fn unreachable_flow_dead_app_is_planned() {
        let (p, e, cfa) = setup("let val dead = fn d => (#1 (1, 2)) 3 in 42 end");
        let live = LiveCfa0::analyze(&p);
        let pp = dead_apps(&p, &e, &cfa, &live, 1, usize::MAX);
        assert_eq!(pp.plan.rewrites(), 1);
        assert!(pp.skipped.is_empty());
    }

    #[test]
    fn rebound_operator_is_not_inlined() {
        let (p, e, cfa) = setup("let val f = fn x => x in let val g = f in g 1 end end");
        let pp = inline_once(&p, &e, &cfa, usize::MAX);
        assert!(pp.plan.is_empty());
        assert!(pp
            .skipped
            .iter()
            .any(|s| s.reason == SkipReason::NotDirectOperator));
    }

    #[test]
    fn escaping_function_is_not_inlined() {
        // `f` is called once but also escapes into the record, so the
        // binding cannot be dropped.
        let (p, e, cfa) = setup("let val f = fn x => x in (f, f 1) end");
        let pp = inline_once(&p, &e, &cfa, usize::MAX);
        assert!(pp.plan.is_empty());
        assert!(pp
            .skipped
            .iter()
            .any(|s| s.reason == SkipReason::MultipleUses));
    }

    #[test]
    fn budget_limits_planned_rewrites() {
        let (p, e, cfa) = setup("fun konst a b = a; konst 1 2");
        let pp = prune_params(&p, &e, &cfa, 1, 0);
        assert!(pp.plan.is_empty());
        assert!(pp.skipped.iter().any(|s| s.reason == SkipReason::Budget));
    }

    #[test]
    fn effectful_argument_is_not_pruned() {
        let (p, e, cfa) = setup("fun konst a b = a; konst 1 (print 9)");
        let pp = prune_params(&p, &e, &cfa, 1, usize::MAX);
        assert!(pp.plan.is_empty());
        assert!(pp
            .skipped
            .iter()
            .any(|s| s.reason == SkipReason::ArgNotValue));
    }

    #[test]
    fn direct_calls_are_confirmed_singletons() {
        let (p, e, cfa) = setup("fun id x = x; val a = id 1; val b = id 2; b");
        let facts = direct_calls(&p, &e, &cfa, 1);
        assert_eq!(facts.len(), 2);
    }
}
