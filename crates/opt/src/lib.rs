//! Flow-directed optimizer backend — the lowering pipeline the paper's
//! analyses exist to feed ("Examples of these kinds of applications
//! include inlining and specialization").
//!
//! The pipeline consumes a frozen [`QueryEngine`] snapshot and runs up to
//! four passes over the immutable program arena:
//!
//! - **dead-app** elides applications proven flow-dead (`STCFA001`
//!   evidence) *and* never evaluated;
//! - **inline-once** beta-reduces applications of functions proven
//!   called exactly once (`STCFA003` evidence);
//! - **prune-params** replaces arguments that feed only unused
//!   parameters (`STCFA004` evidence) with `()`;
//! - **direct-calls** records, without rewriting, every application the
//!   engine (oracle-confirmed) resolves to a single target.
//!
//! The rewriting passes run in rounds to a fixpoint: each pass
//! re-analyzes the current program, plans from the shared
//! [`stcfa_lint::evidence`] functions (so a lint finding and the rewrite
//! it licenses can never disagree), and applies its plan in one arena
//! rebuild. A round that performs no rewrite ends the loop. Every
//! decision — applied or declined, with reason — lands in the
//! [`OptReport`].
//!
//! Static soundness arguments live with each planner in [`plan`]; the
//! [`oracle`] module re-checks them dynamically by running the original
//! and optimized programs under the CBV evaluator and comparing outcomes.

pub mod oracle;
pub mod plan;
pub mod report;
pub mod rewrite;

use stcfa_cfa0::{Cfa0, LiveCfa0};
use stcfa_core::{Analysis, QueryEngine};
use stcfa_lambda::Program;

pub use report::{DirectCall, OptReport, Pass, PassReport, PassSet, Skip, SkipReason};

use std::error::Error;
use std::fmt;

/// Optimizer knobs.
#[derive(Clone, Copy, Debug)]
pub struct OptOptions {
    /// Which passes run. Defaults to all of them.
    pub passes: PassSet,
    /// Fixpoint round cap; the pipeline usually converges in two or
    /// three.
    pub max_rounds: usize,
    /// Per-pass, per-round rewrite budget. Candidates past the budget
    /// are skipped (and typically picked up next round).
    pub budget: usize,
    /// Worker threads for the engine's batched evidence queries.
    pub threads: usize,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            passes: PassSet::all(),
            max_rounds: 8,
            budget: 1024,
            threads: 1,
        }
    }
}

/// Why an optimizer run failed. Rewrites themselves cannot fail — these
/// are environment failures (the analysis refusing a program) or broken
/// internal invariants.
#[derive(Clone, Debug)]
pub enum OptError {
    /// The flow analysis failed on the input or an intermediate program.
    Analysis(String),
    /// A rewrite plan violated an invariant during the rebuild.
    Rewrite(String),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Analysis(m) => write!(f, "analysis failed: {m}"),
            OptError::Rewrite(m) => write!(f, "rewrite failed: {m}"),
        }
    }
}

impl Error for OptError {}

/// The result of one optimizer run.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The optimized program (behaviourally equivalent to the input; see
    /// [`oracle::check`]).
    pub program: Program,
    /// The full decision record.
    pub report: OptReport,
}

/// Analyzes `program` and runs the pipeline.
pub fn optimize(program: &Program, options: &OptOptions) -> Result<Optimized, OptError> {
    let analysis = Analysis::run(program).map_err(|e| OptError::Analysis(e.to_string()))?;
    let engine = QueryEngine::freeze(&analysis);
    optimize_with(program, &engine, options)
}

/// Runs the pipeline starting from an existing frozen snapshot of
/// `program` (the daemon reuses its session snapshots this way). Later
/// rounds re-analyze the rewritten programs internally.
pub fn optimize_with(
    program: &Program,
    engine: &QueryEngine,
    options: &OptOptions,
) -> Result<Optimized, OptError> {
    let threads = options.threads.max(1);
    let mut report = OptReport {
        nodes_before: program.size(),
        nodes_after: program.size(),
        labels_before: program.label_count(),
        labels_after: program.label_count(),
        rounds: 0,
        passes: Vec::new(),
        direct_calls: Vec::new(),
    };
    let mut current = program.clone();
    // The caller's engine serves round 1; every rebuild re-freezes.
    let mut owned_engine: Option<QueryEngine> = None;
    let mut cfa: Option<Cfa0> = None;

    let rewriting = [Pass::DeadApp, Pass::InlineOnce, Pass::PruneParams];
    let any_rewriting = rewriting.iter().any(|&p| options.passes.contains(p));
    if any_rewriting {
        for round in 1..=options.max_rounds {
            report.rounds = round;
            let mut performed_this_round = 0;
            for pass in rewriting {
                if !options.passes.contains(pass) {
                    continue;
                }
                let engine = owned_engine.as_ref().unwrap_or(engine);
                let oracle = cfa.get_or_insert_with(|| Cfa0::analyze(&current));
                let pp = match pass {
                    Pass::DeadApp => {
                        let live = LiveCfa0::analyze(&current);
                        plan::dead_apps(&current, engine, oracle, &live, threads, options.budget)
                    }
                    Pass::InlineOnce => plan::inline_once(&current, engine, oracle, options.budget),
                    Pass::PruneParams => {
                        plan::prune_params(&current, engine, oracle, threads, options.budget)
                    }
                    Pass::DirectCalls => unreachable!("not a rewriting pass"),
                };
                let planned = pp.plan.rewrites();
                let mut performed = 0;
                if !pp.plan.is_empty() {
                    let rewritten =
                        rewrite::apply(&current, &pp.plan).map_err(OptError::Rewrite)?;
                    performed = rewritten.performed;
                    current = rewritten.program;
                    let analysis =
                        Analysis::run(&current).map_err(|e| OptError::Analysis(e.to_string()))?;
                    owned_engine = Some(QueryEngine::freeze(&analysis));
                    cfa = None;
                }
                performed_this_round += performed;
                report.passes.push(PassReport {
                    pass,
                    round,
                    planned,
                    performed,
                    skipped: pp.skipped,
                });
            }
            if performed_this_round == 0 {
                break;
            }
        }
    }

    if options.passes.contains(Pass::DirectCalls) {
        let engine = owned_engine.as_ref().unwrap_or(engine);
        let cfa = cfa.get_or_insert_with(|| Cfa0::analyze(&current));
        report.direct_calls = plan::direct_calls(&current, engine, cfa, threads);
    }

    report.nodes_after = current.size();
    report.labels_after = current.label_count();
    Ok(Optimized {
        program: current,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::eval::{eval, EvalOptions, Value};

    fn parse(src: &str) -> Program {
        Program::parse(src).expect("parses")
    }

    fn int_of(p: &Program) -> i64 {
        match eval(p, EvalOptions::default()).expect("evaluates").value {
            Value::Int(n) => n,
            other => panic!("expected int, got {other:?}"),
        }
    }

    #[test]
    fn inline_chain_converges_in_one_rebuild() {
        let p = parse("let val f = fn x => x + 1 in let val g = fn y => f y in g 41 end end");
        let out = optimize(&p, &OptOptions::default()).expect("optimizes");
        assert_eq!(int_of(&out.program), 42);
        assert_eq!(out.program.label_count(), 0, "both functions inlined away");
        assert!(out.program.size() < p.size());
        assert_eq!(
            oracle::check(&p, &out.program, &EvalOptions::default()),
            Ok(oracle::Agreement::Values)
        );
    }

    #[test]
    fn dead_code_program_shrinks() {
        let src = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../corpus/dead_code.ml"
        ))
        .expect("corpus file");
        let p = parse(&src);
        let out = optimize(&p, &OptOptions::default()).expect("optimizes");
        assert!(
            out.program.size() < p.size(),
            "dead_code.ml must get strictly smaller ({} -> {})",
            p.size(),
            out.program.size()
        );
        assert!(out.report.performed_total() > 0);
        assert_eq!(
            oracle::check(&p, &out.program, &EvalOptions::default()),
            Ok(oracle::Agreement::Values)
        );
    }

    #[test]
    fn prune_then_nothing_left_to_do() {
        let p = parse("fun konst a b = a; konst 1 2");
        let opts = OptOptions {
            passes: PassSet::only(Pass::PruneParams),
            ..OptOptions::default()
        };
        let out = optimize(&p, &opts).expect("optimizes");
        assert_eq!(int_of(&out.program), 1);
        let pruned: usize = out
            .report
            .passes
            .iter()
            .filter(|pr| pr.pass == Pass::PruneParams)
            .map(|pr| pr.performed)
            .sum();
        assert_eq!(pruned, 1);
        // Re-running on the already-pruned program performs nothing.
        let again = optimize(&out.program, &opts).expect("optimizes");
        assert_eq!(again.report.performed_total(), 0);
        assert_eq!(again.report.rounds, 1);
    }

    #[test]
    fn empty_pass_set_is_identity() {
        let p = parse("(fn x => x * x) 6");
        let opts = OptOptions {
            passes: PassSet::empty(),
            ..OptOptions::default()
        };
        let out = optimize(&p, &opts).expect("optimizes");
        assert_eq!(out.program.size(), p.size());
        assert_eq!(out.report.rounds, 0);
        assert!(out.report.passes.is_empty());
        assert!(out.report.direct_calls.is_empty());
    }

    #[test]
    fn direct_calls_only_reports_without_rewriting() {
        let p = parse("fun id x = x; val a = id 1; val b = id 2; b");
        let opts = OptOptions {
            passes: PassSet::only(Pass::DirectCalls),
            ..OptOptions::default()
        };
        let out = optimize(&p, &opts).expect("optimizes");
        assert_eq!(out.program.size(), p.size());
        assert_eq!(out.report.direct_calls.len(), 2);
        assert_eq!(out.report.performed_total(), 0);
    }

    #[test]
    fn effects_survive_the_full_pipeline() {
        let p = parse("let val f = fn x => let val u = print x in x + 1 end in f 6 end");
        let before = eval(&p, EvalOptions::default()).expect("evaluates");
        let out = optimize(&p, &OptOptions::default()).expect("optimizes");
        let after = eval(&out.program, EvalOptions::default()).expect("evaluates");
        assert_eq!(before.outputs, after.outputs);
        assert_eq!(
            oracle::check(&p, &out.program, &EvalOptions::default()),
            Ok(oracle::Agreement::Values)
        );
    }
}
