//! The rewrite engine: applies one pass's [`RewritePlan`] in a single
//! arena rebuild.
//!
//! Programs are immutable arenas with program-wide unique binders, so a
//! rewrite is a *copy with edits*: walk the source from the root, rebuild
//! every node through a fresh [`ProgramBuilder`], and substitute at the
//! planned occurrences. Because each pass performs at most one rebuild,
//! every source node is copied at most once and binder freshening can
//! never collide — the property the sound inlining restriction (sole
//! occurrence, binding dropped in the same rebuild) relies on.

use std::collections::HashMap;

use stcfa_lambda::{ExprId, ExprKind, Literal, Program, ProgramBuilder, TyExpr, VarId};

/// One planned edit, keyed by the source occurrence it replaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Replace the application (operator, operand and all) with `()`.
    /// Only planned for sites proven both flow-dead and never evaluated.
    ElideApp,
    /// `(fn x => body) arg` becomes `let x = arg in body end`.
    InlineRedex,
    /// `f arg` (with `f` bound directly to `lam` and occurring nowhere
    /// else) becomes `let x = arg in body end`, copying `lam`'s body here.
    /// Always paired with [`Action::DropBinding`] on the binding node.
    InlineBound {
        /// The abstraction whose body is inlined at the site.
        lam: ExprId,
    },
    /// Replace the operand with `()` (the argument only feeds parameters
    /// proven unused).
    UnitArg,
    /// Replace the `let`/`letrec` with its body, dropping the binding
    /// whose sole use was inlined away.
    DropBinding,
}

/// The edits one pass wants to make, at most one per occurrence.
#[derive(Clone, Debug, Default)]
pub struct RewritePlan {
    actions: HashMap<usize, Action>,
    rewrites: usize,
}

impl RewritePlan {
    /// Records an edit at `at`. Returns `false` (and records nothing) if
    /// the occurrence already has one.
    pub fn insert(&mut self, at: ExprId, action: Action) -> bool {
        if self.actions.contains_key(&at.index()) {
            return false;
        }
        if !matches!(action, Action::DropBinding) {
            self.rewrites += 1;
        }
        self.actions.insert(at.index(), action);
        true
    }

    /// Planned rewrites. Bookkeeping edits ([`Action::DropBinding`]) do
    /// not count: an inline is one rewrite, not two.
    pub fn rewrites(&self) -> usize {
        self.rewrites
    }

    /// Whether the plan has no edits at all.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    fn get(&self, at: ExprId) -> Option<Action> {
        self.actions.get(&at.index()).copied()
    }
}

/// The outcome of applying a plan.
#[derive(Debug)]
pub struct Rewritten {
    /// The rebuilt (validated) program.
    pub program: Program,
    /// Rewrites actually performed. Smaller than planned when one rewrite
    /// subsumes another (a dead application inside a dead application).
    pub performed: usize,
}

/// Applies `plan` to `src` in one rebuild. Errors only on a broken plan
/// invariant (a variable escaping its scope, an action on the wrong node
/// shape) — planning against live evidence never produces one.
pub fn apply(src: &Program, plan: &RewritePlan) -> Result<Rewritten, String> {
    let mut copier = Copier {
        src,
        b: ProgramBuilder::new(),
        var_map: vec![None; src.var_count()],
        plan,
        performed: 0,
        error: None,
    };
    copier.copy_data_env();
    let root = copier.copy(src.root());
    if let Some(e) = copier.error {
        return Err(e);
    }
    let performed = copier.performed;
    let program = copier
        .b
        .finish(root)
        .map_err(|e| format!("rewritten program failed validation: {e}"))?;
    Ok(Rewritten { program, performed })
}

struct Copier<'a> {
    src: &'a Program,
    b: ProgramBuilder,
    var_map: Vec<Option<VarId>>,
    plan: &'a RewritePlan,
    performed: usize,
    error: Option<String>,
}

impl Copier<'_> {
    fn copy_data_env(&mut self) {
        let env = self.src.data_env();
        for d in env.datas() {
            let name = self.src.interner().resolve(env.data(d).name).to_owned();
            let nd = self.b.declare_data(&name);
            debug_assert_eq!(nd, d, "datatype ids are preserved in order");
            for &c in &env.data(d).cons.clone() {
                let cname = self.src.interner().resolve(env.con(c).name).to_owned();
                let tys: Vec<TyExpr> = env.con(c).arg_tys.to_vec();
                let nc = self.b.declare_con(nd, &cname, tys);
                debug_assert_eq!(nc, c, "constructor ids are preserved in order");
            }
        }
    }

    fn fresh_like(&mut self, old: VarId) -> VarId {
        let name = self.src.var_name(old).to_owned();
        let nv = self.b.fresh_var(&name);
        self.var_map[old.index()] = Some(nv);
        nv
    }

    fn fail(&mut self, message: String) -> ExprId {
        if self.error.is_none() {
            self.error = Some(message);
        }
        self.b.unit() // placeholder; the error aborts the result
    }

    fn copy(&mut self, e: ExprId) -> ExprId {
        match self.plan.get(e) {
            Some(Action::ElideApp) => {
                self.performed += 1;
                return self.b.unit();
            }
            Some(Action::InlineRedex) => return self.inline_redex(e),
            Some(Action::InlineBound { lam }) => return self.inline_bound(e, lam),
            Some(Action::UnitArg) => return self.unit_arg(e),
            Some(Action::DropBinding) => return self.drop_binding(e),
            None => {}
        }
        match self.src.kind(e).clone() {
            ExprKind::Var(v) => match self.var_map[v.index()] {
                Some(nv) => self.b.var(nv),
                None => {
                    let name = self.src.var_name(v).to_owned();
                    self.fail(format!("variable `{name}` escaped its scope at {e:?}"))
                }
            },
            ExprKind::Lam { param, body, .. } => {
                let np = self.fresh_like(param);
                let nb = self.copy(body);
                self.b.lam(np, nb)
            }
            ExprKind::App { func, arg } => {
                let nf = self.copy(func);
                let na = self.copy(arg);
                self.b.app(nf, na)
            }
            ExprKind::Let { binder, rhs, body } => {
                let nr = self.copy(rhs);
                let nb = self.fresh_like(binder);
                let nbody = self.copy(body);
                self.b.let_(nb, nr, nbody)
            }
            ExprKind::LetRec {
                binder,
                lambda,
                body,
            } => {
                let nb = self.fresh_like(binder);
                let nl = self.copy(lambda);
                let nbody = self.copy(body);
                self.b.letrec(nb, nl, nbody)
            }
            ExprKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let nc = self.copy(cond);
                let nt = self.copy(then_branch);
                let ne = self.copy(else_branch);
                self.b.if_(nc, nt, ne)
            }
            ExprKind::Record(items) => {
                let nitems: Vec<ExprId> = items.iter().map(|&i| self.copy(i)).collect();
                self.b.record(nitems)
            }
            ExprKind::Proj { index, tuple } => {
                let nt = self.copy(tuple);
                self.b.proj(index, nt)
            }
            ExprKind::Con { con, args } => {
                let nargs: Vec<ExprId> = args.iter().map(|&a| self.copy(a)).collect();
                self.b.con(con, nargs)
            }
            ExprKind::Case {
                scrutinee,
                arms,
                default,
            } => {
                let ns = self.copy(scrutinee);
                let narms: Vec<_> = arms
                    .iter()
                    .map(|arm| {
                        let nbinders: Vec<VarId> =
                            arm.binders.iter().map(|&b| self.fresh_like(b)).collect();
                        let nbody = self.copy(arm.body);
                        (arm.con, nbinders, nbody)
                    })
                    .collect();
                let ndefault = default.map(|d| self.copy(d));
                self.b.case(ns, narms, ndefault)
            }
            ExprKind::Lit(Literal::Int(n)) => self.b.int(n),
            ExprKind::Lit(Literal::Bool(v)) => self.b.bool(v),
            ExprKind::Lit(Literal::Unit) => self.b.unit(),
            ExprKind::Prim { op, args } => {
                let nargs: Vec<ExprId> = args.iter().map(|&a| self.copy(a)).collect();
                self.b.prim(op, nargs)
            }
        }
    }

    /// `(fn x => body) arg` → `let x = arg in body end`. The operator is
    /// the abstraction itself, so no binding is dropped. Evaluation order
    /// is preserved: the abstraction evaluated first in the source, but to
    /// a closure, effect-free.
    fn inline_redex(&mut self, site: ExprId) -> ExprId {
        let ExprKind::App { func, arg } = self.src.kind(site).clone() else {
            return self.fail(format!("inline-redex planned at non-application {site:?}"));
        };
        let ExprKind::Lam { param, body, .. } = self.src.kind(func).clone() else {
            return self.fail(format!(
                "inline-redex operator is not an abstraction: {func:?}"
            ));
        };
        self.performed += 1;
        let narg = self.copy(arg);
        let nparam = self.fresh_like(param);
        let nbody = self.copy(body);
        self.b.let_(nparam, narg, nbody)
    }

    /// `f arg` → `let x = arg in body end`, where `body` is `lam`'s body
    /// copied here — its only copy, because the binding that held `lam` is
    /// dropped in this same rebuild. Free variables of the body are bound
    /// by binders enclosing the (dropped) binding, hence enclosing this
    /// site, hence already mapped.
    fn inline_bound(&mut self, site: ExprId, lam: ExprId) -> ExprId {
        let ExprKind::App { arg, .. } = self.src.kind(site).clone() else {
            return self.fail(format!("inline planned at non-application {site:?}"));
        };
        let ExprKind::Lam { param, body, .. } = self.src.kind(lam).clone() else {
            return self.fail(format!("inline target is not an abstraction: {lam:?}"));
        };
        self.performed += 1;
        let narg = self.copy(arg);
        let nparam = self.fresh_like(param);
        let nbody = self.copy(body);
        self.b.let_(nparam, narg, nbody)
    }

    /// `f arg` → `f ()`. Planned only when the argument is a value form,
    /// so dropping it cannot lose effects or divergence.
    fn unit_arg(&mut self, site: ExprId) -> ExprId {
        let ExprKind::App { func, .. } = self.src.kind(site).clone() else {
            return self.fail(format!("prune planned at non-application {site:?}"));
        };
        self.performed += 1;
        let nf = self.copy(func);
        let na = self.b.unit();
        self.b.app(nf, na)
    }

    /// `let f = … in body end` → `body`. The right-hand side is not
    /// copied here; for an inline pairing, its body is copied at the call
    /// site instead.
    fn drop_binding(&mut self, e: ExprId) -> ExprId {
        match self.src.kind(e).clone() {
            ExprKind::Let { body, .. } | ExprKind::LetRec { body, .. } => self.copy(body),
            _ => self.fail(format!("drop-binding planned at non-binding {e:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::eval::{eval, EvalOptions, Value};

    fn int_of(p: &Program) -> i64 {
        match eval(p, EvalOptions::default()).expect("evaluates").value {
            Value::Int(n) => n,
            other => panic!("expected int, got {other:?}"),
        }
    }

    #[test]
    fn empty_plan_is_an_alpha_renaming() {
        let p = Program::parse("let val f = fn x => x + 1 in f 41 end").unwrap();
        let r = apply(&p, &RewritePlan::default()).unwrap();
        assert_eq!(r.performed, 0);
        assert_eq!(r.program.size(), p.size());
        assert_eq!(int_of(&r.program), 42);
    }

    #[test]
    fn inline_bound_drops_the_binding() {
        let p = Program::parse("let val f = fn x => x + 1 in f 41 end").unwrap();
        let site = p.app_sites()[0];
        let lam = p.lam_of_label(p.all_labels().next().unwrap());
        let letn = p.root();
        let mut plan = RewritePlan::default();
        assert!(plan.insert(site, Action::InlineBound { lam }));
        assert!(plan.insert(letn, Action::DropBinding));
        assert_eq!(plan.rewrites(), 1);
        let r = apply(&p, &plan).unwrap();
        assert_eq!(r.performed, 1);
        assert_eq!(int_of(&r.program), 42);
        assert_eq!(r.program.label_count(), 0);
        assert!(r.program.size() < p.size());
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let p = Program::parse("(fn x => x) 1").unwrap();
        let mut plan = RewritePlan::default();
        assert!(plan.insert(p.root(), Action::InlineRedex));
        assert!(!plan.insert(p.root(), Action::ElideApp));
        assert_eq!(plan.rewrites(), 1);
    }

    #[test]
    fn nested_elisions_are_subsumed() {
        // Both applications inside the never-invoked abstraction are
        // planned; the outer elision swallows the inner one.
        let p = Program::parse("let val dead = fn d => (d 1) 2 in 7 end").unwrap();
        let mut plan = RewritePlan::default();
        let mut apps = p.app_sites();
        apps.sort_by_key(|e| e.index());
        for a in &apps {
            plan.insert(*a, Action::ElideApp);
        }
        assert_eq!(plan.rewrites(), 2);
        let r = apply(&p, &plan).unwrap();
        assert_eq!(r.performed, 1);
        assert_eq!(int_of(&r.program), 7);
    }
}
