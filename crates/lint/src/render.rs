//! Diagnostic renderers: human-readable text and machine-readable JSON.
//!
//! Both renderers are pure functions of the diagnostic list, so output is
//! byte-identical whenever the diagnostics are — the determinism tests
//! compare rendered bytes across thread counts.

use std::fmt::Write as _;

use crate::diag::Diagnostic;

/// Renders one line per diagnostic:
///
/// ```text
/// 3:12: warning[STCFA004]: parameter `b` is never used
/// ```
///
/// Diagnostics without a span (builder-constructed programs) render the
/// occurrence id in place of `line:col`.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        match d.span {
            Some(s) => {
                let _ = write!(out, "{}:{}", s.start.line, s.start.col);
            }
            None => {
                let _ = write!(out, "e{}", d.expr.index());
            }
        }
        let _ = writeln!(out, ": {}[{}]: {}", d.severity, d.code, d.message);
    }
    out
}

/// Renders the diagnostics as a JSON array (one object per diagnostic,
/// stable key order), terminated by a newline:
///
/// ```json
/// [
///   {"code":"STCFA004","severity":"warning","confidence":"proven","fixable":true,"expr":7,"span":{"line":3,"col":12,"end_line":3,"end_col":13},"message":"parameter `b` is never used"}
/// ]
/// ```
///
/// `span` is `null` when the program carries no source positions.
/// `confidence` is `"proven"` when the finding holds under full cubic
/// CFA (oracle-confirmed, syntactic, or certified by the degradation
/// detector) and `"likely"` otherwise — see
/// [`Confidence`](crate::diag::Confidence). `fixable` appears (always
/// `true`) exactly on the findings a `stcfa opt` pass can act on — see
/// [`RuleCode::fixable`](crate::diag::RuleCode::fixable).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let fixable = if d.code.fixable() {
            "\"fixable\":true,"
        } else {
            ""
        };
        let _ = write!(
            out,
            "  {{\"code\":\"{}\",\"severity\":\"{}\",\"confidence\":\"{}\",{}\"expr\":{},\"span\":",
            d.code,
            d.severity,
            d.confidence,
            fixable,
            d.expr.index()
        );
        match d.span {
            Some(s) => {
                let _ = write!(
                    out,
                    "{{\"line\":{},\"col\":{},\"end_line\":{},\"end_col\":{}}}",
                    s.start.line, s.start.col, s.end.line, s.end.col
                );
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"message\":\"{}\"}}", escape_json(&d.message));
    }
    out.push_str(if diags.is_empty() { "]\n" } else { "\n]\n" });
    out
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{RuleCode, Severity};
    use stcfa_lambda::ExprId;

    fn sample(span: Option<stcfa_lambda::Span>) -> Diagnostic {
        Diagnostic {
            code: RuleCode::UselessParameter,
            severity: Severity::Warning,
            confidence: crate::diag::Confidence::Proven,
            expr: ExprId::from_index(7),
            span,
            message: "parameter `b` is never used".to_string(),
        }
    }

    #[test]
    fn text_renders_position_or_expr_id() {
        let p = stcfa_lambda::Program::parse("fun konst a b = a; konst 1 2").unwrap();
        let lam = p
            .exprs()
            .find(|&e| matches!(p.kind(e), stcfa_lambda::ExprKind::Lam { .. }))
            .unwrap();
        let with_span = sample(p.span(lam));
        let text = render_text(&[with_span]);
        assert!(text.contains("warning[STCFA004]"), "{text}");
        assert!(text.starts_with(|c: char| c.is_ascii_digit()), "{text}");
        let text = render_text(&[sample(None)]);
        assert!(text.starts_with("e7: "), "{text}");
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut d = sample(None);
        d.message = "tricky \"quote\" and \\ backslash\nnewline".to_string();
        let json = render_json(&[d]);
        assert!(json.contains(r#"\"quote\""#), "{json}");
        assert!(json.contains(r#"\\ backslash\nnewline"#), "{json}");
        assert!(json.contains("\"span\":null"), "{json}");
        assert!(
            json.contains(
                "\"severity\":\"warning\",\"confidence\":\"proven\",\"fixable\":true,\"expr\":7"
            ),
            "{json}"
        );
        assert!(json.ends_with("]\n"), "{json}");
        assert_eq!(render_json(&[]), "[]\n");
    }
}
