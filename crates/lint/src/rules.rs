//! The flow-powered rules.
//!
//! Every rule consumes the frozen [`QueryEngine`] snapshot — one summary
//! sweep shared across all rules — instead of re-running a BFS per
//! question. The only non-linear work is the cubic-CFA cross-check for
//! `STCFA001`, and it runs lazily: only when at least one flow-dead
//! candidate exists, and only to *suppress* findings the oracle disputes
//! (so the rule stays sound even under under-approximating analysis
//! policies such as `Forget`).

use std::cell::OnceCell;

use stcfa_apps::called_once::{CallSites, CalledOnce};
use stcfa_apps::effects::effects;
use stcfa_cfa0::Cfa0;
use stcfa_core::{Analysis, QueryEngine};
use stcfa_lambda::{ExprId, ExprKind, Label, Program};
use stcfa_precision::SuspicionIndex;
use stcfa_rules::{dominated_redundant, mixed_purity, ExtDb};

use crate::diag::{Diagnostic, RuleCode};
use crate::evidence;

/// Knobs for one lint run.
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// Worker threads for the batched engine queries. Defaults to
    /// [`QueryEngine::default_threads`] (the `STCFA_QUERY_THREADS`
    /// environment variable, else available parallelism). Output is
    /// byte-identical at any setting.
    pub threads: usize,
}

impl Default for LintOptions {
    fn default() -> LintOptions {
        LintOptions {
            threads: QueryEngine::default_threads(),
        }
    }
}

/// A display name for the abstraction with label `l`: `λ<param>#<index>`.
pub(crate) fn lam_name(program: &Program, l: Label) -> String {
    let lam = program.lam_of_label(l);
    match program.kind(lam) {
        ExprKind::Lam { param, .. } => {
            format!("λ{}#{}", program.var_name(*param), l.index())
        }
        _ => format!("λ#{}", l.index()),
    }
}

/// A short source location for cross-references inside messages.
pub(crate) fn place(program: &Program, e: ExprId) -> String {
    match program.span(e) {
        Some(s) => format!("{}:{}", s.start.line, s.start.col),
        None => format!("occurrence {}", e.index()),
    }
}

/// The STCFA002 diagnostic for label `l`. Shared by the hand-fused
/// linter and the rule-engine backend so the two are byte-identical by
/// construction; the differential test then checks the *logic* agrees.
/// Proven when the whole snapshot is suspicion-free: the engine then
/// equals the exact analysis, so absence of call sites is exact absence
/// (under `Forget` the engine can also *cut* flow, so engine-absence
/// alone does not prove anything).
pub(crate) fn diag_never_invoked(
    program: &Program,
    suspicion: &SuspicionIndex,
    l: Label,
) -> Diagnostic {
    let lam = program.lam_of_label(l);
    let d = Diagnostic::at(
        RuleCode::NeverInvokedAbstraction,
        lam,
        program,
        format!("abstraction {} is never invoked", lam_name(program, l)),
    );
    if suspicion.all_exact() {
        d.proven()
    } else {
        d
    }
}

/// The STCFA004 diagnostic for parameter `param` of abstraction `lam`.
pub(crate) fn diag_useless_param(
    program: &Program,
    param: stcfa_lambda::VarId,
    lam: ExprId,
) -> Diagnostic {
    Diagnostic::at(
        RuleCode::UselessParameter,
        lam,
        program,
        format!("parameter `{}` is never used", program.var_name(param)),
    )
}

/// The STCFA005 diagnostic for label `l`. Proven when the program
/// result's cone is suspicion-free: "escapes" was read off `L(root)`,
/// and a certified-exact root set cannot carry a spurious label.
pub(crate) fn diag_escaping_effectful(
    program: &Program,
    engine: &QueryEngine,
    suspicion: &SuspicionIndex,
    l: Label,
) -> Diagnostic {
    let lam = program.lam_of_label(l);
    let d = Diagnostic::at(
        RuleCode::EscapingEffectfulClosure,
        lam,
        program,
        format!(
            "effectful closure {} escapes to the program result",
            lam_name(program, l)
        ),
    );
    if suspicion.of_expr(engine, program.root()) == 0 {
        d.proven()
    } else {
        d
    }
}

/// Runs every rule and returns the diagnostics sorted by occurrence id,
/// then rule code — deterministic for a given program regardless of
/// thread count.
///
/// `engine` must be frozen from `analysis` (the effects colouring walks
/// the analysis graph directly; everything else goes through the
/// snapshot). The degradation detector's index is built here from that
/// matched pair; a caller holding an engine whose node table did *not*
/// come from `analysis` — a disk-warmed linked snapshot rebuilds its
/// analysis from the replayed program, which does not reproduce the
/// incrementally linked node table — must use [`lint_with_suspicion`]
/// and supply the index that was persisted alongside the engine.
pub fn lint(
    program: &Program,
    analysis: &Analysis,
    engine: &QueryEngine,
    opts: &LintOptions,
) -> Vec<Diagnostic> {
    let suspicion = SuspicionIndex::build(analysis, engine);
    lint_with_suspicion(program, analysis, engine, &suspicion, opts)
}

/// [`lint`] with a caller-supplied detector index. `suspicion` must
/// score `engine`'s condensation (same `comp_count`); `analysis` is
/// consulted only for program-keyed facts (the effects colouring), so
/// it may be a rebuild that does not share `engine`'s node table.
pub fn lint_with_suspicion(
    program: &Program,
    analysis: &Analysis,
    engine: &QueryEngine,
    suspicion: &SuspicionIndex,
    opts: &LintOptions,
) -> Vec<Diagnostic> {
    engine.prepare();
    let mut out: Vec<Diagnostic> = Vec::new();
    let threads = opts.threads.max(1);

    // --- STCFA001 / STCFA006: applications whose operator has an empty
    // label set, split by the shared evidence module (one batch, so the
    // configured thread count is actually exercised; answers are
    // positional, so order is stable).
    let apps = evidence::app_evidence(program, engine, threads);
    for app in apps.stuck {
        out.push(Diagnostic::at(
            RuleCode::StuckApplication,
            app,
            program,
            "stuck application: the operator is a non-function value".to_string(),
        ));
    }
    // Cross-check candidates against the cubic CFA before reporting (see
    // `evidence::confirm_flow_dead` for the soundness argument). The
    // oracle is shared lazily with STCFA007/008 below: at most one cubic
    // run per lint invocation, and none when no rule needs it.
    let cfa_cell: OnceCell<Cfa0> = OnceCell::new();
    if !apps.flow_dead.is_empty() {
        let cfa = cfa_cell.get_or_init(|| Cfa0::analyze(program));
        for c in evidence::confirm_flow_dead(program, cfa, &apps.flow_dead) {
            out.push(Diagnostic::at(
                RuleCode::FlowDeadApplication,
                c.app,
                program,
                "flow-dead application: no abstraction flows to the operator".to_string(),
            ));
        }
    }

    // --- STCFA002 / STCFA003: call-site counts per abstraction, via the
    // engine-backed called-once analysis. Labels that flow to the program
    // result escape to the consumer, so "never invoked" does not apply.
    let sites = CalledOnce::via_engine(program, engine);
    let escaping = engine.labels_of(program.root());
    for l in program.all_labels() {
        // Lambdas introduced by desugaring (`$…` parameters) are not the
        // user's code; neither rule should point at them.
        if evidence::is_machinery(program, program.lam_of_label(l)) {
            continue;
        }
        if matches!(sites.of(l), CallSites::None) && escaping.binary_search(&l).is_err() {
            out.push(diag_never_invoked(program, suspicion, l));
        }
    }
    for (l, site) in evidence::called_once_evidence(program, engine) {
        let mut d = Diagnostic::at(
            RuleCode::CalledOnceInline,
            program.lam_of_label(l),
            program,
            format!(
                "abstraction {} is called exactly once (at {}); inline candidate",
                lam_name(program, l),
                place(program, site)
            ),
        );
        // "Exactly once" is exact when the one site's operator set is
        // certified: the site then really invokes `l` (not a congruence
        // artifact), and over-approximation already rules out unseen
        // extra sites.
        if let ExprKind::App { func, .. } = program.kind(site) {
            if suspicion.of_expr(engine, *func) == 0 {
                d = d.proven();
            }
        }
        out.push(d);
    }

    // --- STCFA004: parameters with no occurrence, exemptions applied by
    // the shared evidence module.
    for (lam, param) in evidence::useless_param_evidence(program, engine) {
        out.push(diag_useless_param(program, param, lam));
    }

    // --- STCFA005: effectful closures escaping to the program result.
    // The linear colouring needs the analysis graph itself; run it only
    // when something escapes at all.
    if !escaping.is_empty() {
        let eff = effects(program, analysis);
        for &l in &escaping {
            let lam = program.lam_of_label(l);
            if let ExprKind::Lam { body, .. } = program.kind(lam) {
                if eff.is_effectful(*body) {
                    out.push(diag_escaping_effectful(program, engine, suspicion, l));
                }
            }
        }
    }

    // --- STCFA007 / STCFA008: the rule-engine analyses. Both fire from
    // the linear rule evaluation and are confirmed against the cubic CFA
    // oracle before reporting, exactly like STCFA001: over-approximated
    // label sets may merge an effectful and a pure abstraction (007) or
    // are still singletons under the exact analysis (008) only when the
    // oracle agrees.
    let db = ExtDb::new(program, analysis, engine);
    let mixed = mixed_purity(&db);
    if !mixed.is_empty() {
        let eff = db.effects();
        let eff_of = |l: Label| match program.kind(program.lam_of_label(l)) {
            ExprKind::Lam { body, .. } => eff.is_effectful(*body),
            _ => false,
        };
        let cfa = cfa_cell.get_or_init(|| Cfa0::analyze(program));
        for (app, func) in mixed {
            let exact = cfa.labels(program, func);
            if !exact.iter().any(|&l| eff_of(l)) || !exact.iter().any(|&l| !eff_of(l)) {
                continue;
            }
            let approx = engine.labels_of(func);
            let effectful = approx.iter().copied().find(|&l| eff_of(l));
            let pure = approx.iter().copied().find(|&l| !eff_of(l));
            let (Some(e), Some(p)) = (effectful, pure) else {
                continue;
            };
            out.push(Diagnostic::at(
                RuleCode::TaintedEffectfulFlow,
                app,
                program,
                format!(
                    "mixed-purity call: the operator may invoke effectful {} or pure {}",
                    lam_name(program, e),
                    lam_name(program, p)
                ),
            ));
        }
    }
    let redundant = dominated_redundant(&db);
    if !redundant.is_empty() {
        let cfa = cfa_cell.get_or_init(|| Cfa0::analyze(program));
        for r in redundant {
            // Desugaring machinery (`$…` parameters) is not the user's
            // code; skip it, matching STCFA002/003.
            let machinery = match program.kind(program.lam_of_label(r.target)) {
                ExprKind::Lam { param, .. } => program.var_name(*param).starts_with('$'),
                _ => false,
            };
            if machinery {
                continue;
            }
            let exact = cfa.labels(program, r.func);
            if exact.is_empty() || exact.iter().any(|&l| l != r.target) {
                continue;
            }
            out.push(Diagnostic::at(
                RuleCode::DominatedRedundantApplication,
                r.app,
                program,
                format!(
                    "dominated-redundant application: every call path already applies {} at {}",
                    lam_name(program, r.target),
                    place(program, r.by_app)
                ),
            ));
        }
    }

    out.sort_by_key(|d| (d.expr.index(), d.code));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn lint_src(src: &str) -> (Program, Vec<Diagnostic>) {
        let p = Program::parse(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}"));
        let a = Analysis::run(&p).expect("analysis");
        let engine = QueryEngine::freeze(&a);
        let diags = lint(&p, &a, &engine, &LintOptions::default());
        (p, diags)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_program_is_quiet() {
        let (_, d) = lint_src("fun double x = x + x; double 21");
        assert!(
            d.iter().all(|x| x.code == RuleCode::CalledOnceInline),
            "unexpected diagnostics: {d:?}"
        );
    }

    #[test]
    fn flow_dead_application_fires() {
        // `f` is a tuple field holding an int, so no abstraction ever
        // flows to the operator of `f 3`.
        let (_, d) = lint_src(
            "let val box = (1, 2) in\n\
             let val f = #1 box in f 3 end end",
        );
        assert!(codes(&d).contains(&"STCFA001"), "got {d:?}");
        let diag = d
            .iter()
            .find(|x| x.code == RuleCode::FlowDeadApplication)
            .unwrap();
        assert_eq!(diag.severity, Severity::Warning);
        assert!(diag.span.is_some(), "parsed programs carry spans");
    }

    #[test]
    fn stuck_application_takes_precedence() {
        let (_, d) = lint_src("let val r = (1, 2) in r 3 end");
        // The operator is a variable bound to a record — flow-dead, not
        // structurally stuck.
        assert!(codes(&d).contains(&"STCFA001"), "got {d:?}");
        // A structurally-stuck operator reports STCFA006 instead.
        let (_, d) = lint_src("(1, 2) 3");
        assert!(codes(&d).contains(&"STCFA006"), "got {d:?}");
        assert!(
            !codes(&d).contains(&"STCFA001"),
            "006 suppresses 001 at the same site: {d:?}"
        );
        let stuck = d
            .iter()
            .find(|x| x.code == RuleCode::StuckApplication)
            .unwrap();
        assert_eq!(stuck.severity, Severity::Error);
    }

    #[test]
    fn never_invoked_abstraction_fires() {
        let (_, d) = lint_src("fun ghost x = x; 1 + 2");
        assert!(codes(&d).contains(&"STCFA002"), "got {d:?}");
    }

    #[test]
    fn escaping_lambda_is_not_never_invoked() {
        // The lambda is the program result: its caller is outside the
        // program, so STCFA002 stays quiet.
        let (_, d) = lint_src("fn x => x + 1");
        assert!(!codes(&d).contains(&"STCFA002"), "got {d:?}");
    }

    #[test]
    fn called_once_inline_candidate_fires() {
        let (p, d) = lint_src("fun once x = x + 1; once 5");
        let inline = d
            .iter()
            .find(|x| x.code == RuleCode::CalledOnceInline)
            .expect("STCFA003");
        assert_eq!(inline.severity, Severity::Info);
        assert!(matches!(p.kind(inline.expr), ExprKind::Lam { .. }));
        assert!(inline.message.contains("exactly once"));
    }

    #[test]
    fn useless_parameter_fires_and_underscore_is_exempt() {
        let (_, d) = lint_src("fun konst a b = a; konst 1 2");
        assert!(codes(&d).contains(&"STCFA004"), "got {d:?}");
        let (_, d) = lint_src("fun konst a _b = a; konst 1 2");
        assert!(!codes(&d).contains(&"STCFA004"), "got {d:?}");
    }

    #[test]
    fn escaping_effectful_closure_fires() {
        let (_, d) = lint_src("fn x => print x");
        assert!(codes(&d).contains(&"STCFA005"), "got {d:?}");
        // A pure escaping closure stays quiet.
        let (_, d) = lint_src("fn x => x + 1");
        assert!(!codes(&d).contains(&"STCFA005"), "got {d:?}");
    }

    #[test]
    fn mixed_purity_call_fires() {
        let (_, d) =
            lint_src("fun pick b = if b then (fn x => print x) else (fn y => y); (pick true) 5");
        let mixed = d
            .iter()
            .find(|x| x.code == RuleCode::TaintedEffectfulFlow)
            .unwrap_or_else(|| panic!("STCFA007 in {d:?}"));
        assert_eq!(mixed.severity, Severity::Warning);
        assert!(mixed.message.contains("effectful"), "{}", mixed.message);
        assert!(mixed.message.contains("pure"), "{}", mixed.message);
        // Single-purity operators stay quiet.
        let (_, d) = lint_src("fun pr x = print x; pr 1");
        assert!(!codes(&d).contains(&"STCFA007"), "got {d:?}");
    }

    #[test]
    fn dominated_redundant_application_fires() {
        let (_, d) = lint_src("fun f x = x; fun g y = f y; val a = f 1; g 2");
        let dup = d
            .iter()
            .find(|x| x.code == RuleCode::DominatedRedundantApplication)
            .unwrap_or_else(|| panic!("STCFA008 in {d:?}"));
        assert_eq!(dup.severity, Severity::Info);
        assert!(dup.message.contains("already applies"), "{}", dup.message);
        // Sibling calls in one encloser do not dominate each other.
        let (_, d) = lint_src("fun f x = x; val a = f 1; val b = f 2; b");
        assert!(!codes(&d).contains(&"STCFA008"), "got {d:?}");
    }

    #[test]
    fn diagnostics_are_sorted_and_thread_stable() {
        let src = "fun ghost x = x;\n\
                   fun konst a b = a;\n\
                   let val r = (1, 2) in\n\
                   let val f = #1 r in (konst 1 2) + (konst 3 4) + f 9 end end";
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).expect("analysis");
        let engine = QueryEngine::freeze(&a);
        let base = lint(&p, &a, &engine, &LintOptions { threads: 1 });
        for threads in [2, 8] {
            let d = lint(&p, &a, &engine, &LintOptions { threads });
            assert_eq!(base, d, "thread count {threads} changed diagnostics");
        }
        let mut sorted = base.clone();
        sorted.sort_by_key(|x| (x.expr.index(), x.code));
        assert_eq!(base, sorted, "output must be input-ordered");
    }
}
