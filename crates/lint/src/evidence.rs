//! Shared rule evidence: the facts behind the *fixable* rules.
//!
//! `STCFA001` (flow-dead application), `STCFA003` (called exactly once)
//! and `STCFA004` (useless parameter) are consumed twice — once by the
//! lint engine to report findings, and once by the `stcfa-opt` lowering
//! passes to rewrite the program. Both callers go through the functions
//! here, so a finding and the rewrite it licenses can never disagree:
//! the predicate is evaluated exactly once, in one place.
//!
//! All evidence is computed against the frozen [`QueryEngine`] snapshot;
//! the STCFA001 candidates additionally require cubic-CFA confirmation
//! ([`confirm_flow_dead`]) before anything acts on them, exactly as the
//! lint rule does.

use stcfa_apps::called_once::{CallSites, CalledOnce};
use stcfa_cfa0::Cfa0;
use stcfa_core::{Answer, Query, QueryEngine};
use stcfa_lambda::{ExprId, ExprKind, Label, Program, VarId};

/// A candidate application whose operator the engine proves flow-dead,
/// before oracle confirmation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowDeadCandidate {
    /// The application occurrence.
    pub app: ExprId,
    /// Its operator occurrence.
    pub func: ExprId,
}

/// The engine-side split of empty-operator applications: structurally
/// stuck sites (`STCFA006`) versus flow-dead candidates (`STCFA001`,
/// still awaiting oracle confirmation).
#[derive(Clone, Debug, Default)]
pub struct AppEvidence {
    /// Applications whose operator is structurally a non-function value.
    pub stuck: Vec<ExprId>,
    /// Applications with an empty engine label set at the operator and a
    /// non-value operator shape.
    pub flow_dead: Vec<FlowDeadCandidate>,
}

/// Classifies every application site by its engine `call_targets` answer,
/// batched at `threads` workers (answers are positional, so the split is
/// deterministic at any thread count).
pub fn app_evidence(program: &Program, engine: &QueryEngine, threads: usize) -> AppEvidence {
    let apps = program.app_sites();
    let queries: Vec<Query> = apps
        .iter()
        .map(|&a| Query::call_targets(program, a).expect("app site"))
        .collect();
    let answers = engine.batch(&queries, threads.max(1));
    let mut out = AppEvidence::default();
    for (&app, answer) in apps.iter().zip(&answers) {
        let Answer::Labels(labels) = answer else {
            unreachable!("LabelsOf answers Labels")
        };
        if !labels.is_empty() {
            continue;
        }
        let ExprKind::App { func, .. } = program.kind(app) else {
            unreachable!("app site")
        };
        match program.kind(*func) {
            ExprKind::Lit(_) | ExprKind::Record(_) | ExprKind::Con { .. } => out.stuck.push(app),
            _ => out.flow_dead.push(FlowDeadCandidate { app, func: *func }),
        }
    }
    out
}

/// Keeps only the flow-dead candidates the cubic CFA oracle agrees on.
/// Under the default ≈₁ policy the engine over-approximates, so an empty
/// engine set implies an empty exact set — but under `Forget` it does
/// not, and this confirmation keeps both the lint rule and the dead-app
/// elision pass sound everywhere.
pub fn confirm_flow_dead(
    program: &Program,
    cfa: &Cfa0,
    candidates: &[FlowDeadCandidate],
) -> Vec<FlowDeadCandidate> {
    candidates
        .iter()
        .copied()
        .filter(|c| cfa.labels(program, c.func).is_empty())
        .collect()
}

/// Whether the abstraction at `lam` is desugaring machinery (a `$…`
/// parameter): not the user's code, exempt from user-facing rules and
/// from rewrites alike.
pub fn is_machinery(program: &Program, lam: ExprId) -> bool {
    match program.kind(lam) {
        ExprKind::Lam { param, .. } => program.var_name(*param).starts_with('$'),
        _ => false,
    }
}

/// The `STCFA003` evidence: every non-machinery abstraction the engine
/// proves invoked from exactly one call site, with that site. Sorted by
/// label index (the program's label order).
pub fn called_once_evidence(program: &Program, engine: &QueryEngine) -> Vec<(Label, ExprId)> {
    let sites = CalledOnce::via_engine(program, engine);
    let mut out = Vec::new();
    for l in program.all_labels() {
        if is_machinery(program, program.lam_of_label(l)) {
            continue;
        }
        if let CallSites::One(site) = sites.of(l) {
            out.push((l, site));
        }
    }
    out
}

/// The `STCFA004` evidence: abstractions whose parameter has no
/// occurrence in the body. Parameters named with a leading `_`
/// (user-declared intent) or `$` (machinery) are exempt, exactly as in
/// the lint rule. Sorted by occurrence id (the `exprs()` order).
pub fn useless_param_evidence(program: &Program, engine: &QueryEngine) -> Vec<(ExprId, VarId)> {
    let mut out = Vec::new();
    for e in program.exprs() {
        if let ExprKind::Lam { param, .. } = program.kind(e) {
            let name = program.var_name(*param);
            if name.starts_with('_') || name.starts_with('$') {
                continue;
            }
            if engine.occurrences_of(*param).next().is_none() {
                out.push((e, *param));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_core::Analysis;

    fn setup(src: &str) -> (Program, QueryEngine) {
        let p = Program::parse(src).expect("parses");
        let a = Analysis::run(&p).expect("analyzes");
        (p, QueryEngine::freeze(&a))
    }

    #[test]
    fn flow_dead_candidates_survive_oracle() {
        let (p, engine) = setup("let val f = #1 (1, 2) in f 3 end");
        let ev = app_evidence(&p, &engine, 1);
        assert_eq!(ev.stuck, Vec::<ExprId>::new());
        assert_eq!(ev.flow_dead.len(), 1);
        let cfa = Cfa0::analyze(&p);
        assert_eq!(confirm_flow_dead(&p, &cfa, &ev.flow_dead).len(), 1);
    }

    #[test]
    fn stuck_sites_are_split_out() {
        let (p, engine) = setup("(1, 2) 3");
        let ev = app_evidence(&p, &engine, 1);
        assert_eq!(ev.stuck.len(), 1);
        assert!(ev.flow_dead.is_empty());
    }

    #[test]
    fn called_once_and_useless_params() {
        let (p, engine) = setup("fun konst a b = a; konst 1 2");
        assert!(!called_once_evidence(&p, &engine).is_empty());
        let useless = useless_param_evidence(&p, &engine);
        assert_eq!(useless.len(), 1);
        assert_eq!(p.var_name(useless[0].1), "b");
    }

    #[test]
    fn underscore_params_are_exempt() {
        let (p, engine) = setup("fun konst a _b = a; konst 1 2");
        assert!(useless_param_evidence(&p, &engine).is_empty());
    }
}
