//! The rule-engine lint backend.
//!
//! STCFA002/004/005 are relational analyses: a join or two over the
//! frozen engine's views, a stratified negation, and a decoding step.
//! This module evaluates exactly those definitions — the declarative
//! programs from [`stcfa_rules::analyses`] — and renders the findings
//! through the same diagnostic constructors the hand-fused linter uses,
//! so the two backends are byte-identical whenever their *logic*
//! agrees. The differential test suite pins that agreement over the
//! corpus and synthesized programs at several thread counts.

use stcfa_core::{Analysis, QueryEngine};
use stcfa_lambda::Program;
use stcfa_rules::{escaping_effectful, never_invoked, useless_param, ExtDb};

use crate::diag::{Diagnostic, RuleCode};
use crate::rules::{diag_escaping_effectful, diag_never_invoked, diag_useless_param};

/// The codes the rule backend covers, in code order.
pub const RULE_BACKED_CODES: [RuleCode; 3] = [
    RuleCode::NeverInvokedAbstraction,
    RuleCode::UselessParameter,
    RuleCode::EscapingEffectfulClosure,
];

/// Runs the rule-engine ports of STCFA002/004/005 and returns their
/// diagnostics sorted by occurrence id then rule code — the same order
/// (and the same bytes) as [`crate::lint`] filtered to those codes.
///
/// The evaluator is single-threaded and deterministic, so unlike the
/// hand-fused path there is no thread knob to hold fixed.
pub fn lint_rule_backed(
    program: &Program,
    analysis: &Analysis,
    engine: &QueryEngine,
) -> Vec<Diagnostic> {
    engine.prepare();
    // Same detector index the hand-fused path grades with, so the two
    // backends agree on `confidence` byte for byte.
    let suspicion = stcfa_precision::SuspicionIndex::build(analysis, engine);
    let db = ExtDb::new(program, analysis, engine);
    let mut out = Vec::new();
    for l in never_invoked(&db) {
        out.push(diag_never_invoked(program, &suspicion, l));
    }
    for (v, lam) in useless_param(&db) {
        out.push(diag_useless_param(program, v, lam));
    }
    for l in escaping_effectful(&db) {
        out.push(diag_escaping_effectful(program, engine, &suspicion, l));
    }
    out.sort_by_key(|d| (d.expr.index(), d.code));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::{render_json, render_text};
    use crate::rules::{lint, LintOptions};

    fn both(src: &str) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
        let p = Program::parse(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}"));
        let a = Analysis::run(&p).expect("analysis");
        let engine = QueryEngine::freeze(&a);
        let hand: Vec<Diagnostic> = lint(&p, &a, &engine, &LintOptions::default())
            .into_iter()
            .filter(|d| RULE_BACKED_CODES.contains(&d.code))
            .collect();
        let rules = lint_rule_backed(&p, &a, &engine);
        (hand, rules)
    }

    #[test]
    fn backends_agree_on_a_mixed_program() {
        let (hand, rules) = both(
            "fun ghost x = x;\n\
             fun konst a b = a;\n\
             (konst 1 2) + (fn q => print q) 0",
        );
        assert!(!hand.is_empty(), "fixture should fire something");
        assert_eq!(hand, rules);
        assert_eq!(render_text(&hand), render_text(&rules));
        assert_eq!(render_json(&hand), render_json(&rules));
    }

    #[test]
    fn backends_agree_on_escaping_effectful() {
        let (hand, rules) = both("fn x => print x");
        assert!(hand
            .iter()
            .any(|d| d.code == RuleCode::EscapingEffectfulClosure));
        assert_eq!(hand, rules);
    }

    #[test]
    fn backends_agree_on_quiet_programs() {
        let (hand, rules) = both("fun double x = x + x; double 21");
        assert_eq!(hand, rules);
        assert!(rules.is_empty(), "{rules:?}");
    }
}
