//! Diagnostic values: stable rule codes, severities, and source positions.

use std::fmt;

use stcfa_lambda::{ExprId, Program, Span};

/// How serious a diagnostic is.
///
/// Ordered: `Info < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only (e.g. an inlining opportunity).
    Info,
    /// Likely a mistake, but the program still runs.
    Warning,
    /// The flagged expression cannot evaluate successfully.
    Error,
}

impl Severity {
    /// The lowercase name used in both renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable rule codes. The numeric part never changes meaning across
/// releases; retired rules leave holes rather than renumbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleCode {
    /// `STCFA001` — flow-dead application: the flow analysis proves no
    /// abstraction reaches the operator of an application, and the cubic
    /// CFA oracle agrees.
    FlowDeadApplication,
    /// `STCFA002` — never-invoked abstraction: no call site anywhere in
    /// the program applies this lambda (and it does not escape to the
    /// program result).
    NeverInvokedAbstraction,
    /// `STCFA003` — called exactly once: the abstraction has a single
    /// call site, making it an inline/specialization candidate.
    CalledOnceInline,
    /// `STCFA004` — useless parameter: the bound variable has no
    /// occurrence in the body.
    UselessParameter,
    /// `STCFA005` — escaping effectful closure: an abstraction with a
    /// side-effecting body flows to the program result, so its effects
    /// run (or not) at the consumer's whim.
    EscapingEffectfulClosure,
    /// `STCFA006` — stuck application: the operator is structurally a
    /// non-function value (literal, record, or constructor), so the
    /// application cannot evaluate.
    StuckApplication,
    /// `STCFA007` — mixed-purity call: both an effectful-bodied and a
    /// pure-bodied abstraction flow to the same operator, so whether the
    /// call performs effects depends on which one arrives (cross-checked
    /// against the cubic CFA oracle).
    TaintedEffectfulFlow,
    /// `STCFA008` — dominated-redundant application: the operator has a
    /// single possible target, and another call site with the same sole
    /// target strictly dominates this one in the call graph — every path
    /// here already applied that abstraction.
    DominatedRedundantApplication,
}

impl RuleCode {
    /// The stable `STCFA0xx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleCode::FlowDeadApplication => "STCFA001",
            RuleCode::NeverInvokedAbstraction => "STCFA002",
            RuleCode::CalledOnceInline => "STCFA003",
            RuleCode::UselessParameter => "STCFA004",
            RuleCode::EscapingEffectfulClosure => "STCFA005",
            RuleCode::StuckApplication => "STCFA006",
            RuleCode::TaintedEffectfulFlow => "STCFA007",
            RuleCode::DominatedRedundantApplication => "STCFA008",
        }
    }

    /// The severity this rule reports at.
    pub fn severity(self) -> Severity {
        match self {
            RuleCode::FlowDeadApplication => Severity::Warning,
            RuleCode::NeverInvokedAbstraction => Severity::Warning,
            RuleCode::CalledOnceInline => Severity::Info,
            RuleCode::UselessParameter => Severity::Warning,
            RuleCode::EscapingEffectfulClosure => Severity::Warning,
            RuleCode::StuckApplication => Severity::Error,
            RuleCode::TaintedEffectfulFlow => Severity::Warning,
            RuleCode::DominatedRedundantApplication => Severity::Info,
        }
    }

    /// Whether `stcfa opt` has a lowering pass that can act on this
    /// finding: dead-application elision for `STCFA001`, called-once
    /// inlining for `STCFA003`, useless-parameter pruning for
    /// `STCFA004`. Fixable findings carry `"fixable":true` in the JSON
    /// report.
    pub fn fixable(self) -> bool {
        matches!(
            self,
            RuleCode::FlowDeadApplication | RuleCode::CalledOnceInline | RuleCode::UselessParameter
        )
    }

    /// All rules, in code order.
    pub fn all() -> [RuleCode; 8] {
        [
            RuleCode::FlowDeadApplication,
            RuleCode::NeverInvokedAbstraction,
            RuleCode::CalledOnceInline,
            RuleCode::UselessParameter,
            RuleCode::EscapingEffectfulClosure,
            RuleCode::StuckApplication,
            RuleCode::TaintedEffectfulFlow,
            RuleCode::DominatedRedundantApplication,
        ]
    }
}

impl fmt::Display for RuleCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How certain the linter is that a finding is real, derived from the
/// degradation detector's certificates — never from heuristics alone.
///
/// `Proven` means the finding holds under full cubic 0CFA: the rule's
/// evidence is structural/syntactic, cross-checked against the cubic
/// oracle, or drawn from engine answers the detector certifies exact
/// (suspicion 0). `Likely` means the evidence passed through an
/// over-approximated label set that escalation did not certify.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Confidence {
    /// Holds under the exact analysis too.
    Proven,
    /// Sound reading of an over-approximate answer; not certified.
    Likely,
}

impl Confidence {
    /// The lowercase name used in the JSON renderer.
    pub fn as_str(self) -> &'static str {
        match self {
            Confidence::Proven => "proven",
            Confidence::Likely => "likely",
        }
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic: a rule firing at one expression occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub code: RuleCode,
    /// Severity (always `code.severity()`; stored so renderers need no
    /// lookup and future per-run overrides stay possible).
    pub severity: Severity,
    /// How certain the finding is (see [`Confidence`]). Defaults from
    /// [`RuleCode::proven_by_construction`]; rules whose evidence rides
    /// on unconfirmed engine answers upgrade via [`Diagnostic::proven`]
    /// only when the detector certifies the relevant cone.
    pub confidence: Confidence,
    /// The flagged occurrence.
    pub expr: ExprId,
    /// Source span of the occurrence, when the program was parsed from
    /// text (builder-constructed programs have none).
    pub span: Option<Span>,
    /// Human-readable explanation.
    pub message: String,
}

impl RuleCode {
    /// Whether this rule's evidence is exact without any detector
    /// certificate: STCFA004/006 are syntactic/structural facts, and
    /// STCFA001/007/008 confirm every finding against the cubic CFA
    /// oracle before reporting. STCFA002/003/005 read raw engine label
    /// sets, so their confidence depends on the queried cones.
    pub fn proven_by_construction(self) -> bool {
        matches!(
            self,
            RuleCode::FlowDeadApplication
                | RuleCode::UselessParameter
                | RuleCode::StuckApplication
                | RuleCode::TaintedEffectfulFlow
                | RuleCode::DominatedRedundantApplication
        )
    }
}

impl Diagnostic {
    /// Builds a diagnostic at `expr`, pulling span, severity and the
    /// baseline confidence from the program and rule.
    pub fn at(code: RuleCode, expr: ExprId, program: &Program, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            confidence: if code.proven_by_construction() {
                Confidence::Proven
            } else {
                Confidence::Likely
            },
            expr,
            span: program.span(expr),
            message,
        }
    }

    /// Upgrades the finding to [`Confidence::Proven`] — the caller holds
    /// a detector certificate for the engine answers the rule consumed.
    pub fn proven(mut self) -> Diagnostic {
        self.confidence = Confidence::Proven;
        self
    }
}
