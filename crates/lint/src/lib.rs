//! Flow-powered lint engine: CFA-backed source diagnostics over the
//! subtransitive graph.
//!
//! Section 8 of Heintze & McAllester (PLDI 1997) argues that the payoff of
//! the subtransitive graph is that CFA-*consuming* analyses run in linear
//! time directly on the graph. This crate turns those analyses into a
//! user-facing diagnostics product: a set of rules with stable codes
//! (`STCFA001`–`STCFA006`), severities, and source spans, all answered
//! through a frozen [`QueryEngine`](stcfa_core::QueryEngine) snapshot —
//! no per-rule BFS, no materialized quadratic closure.
//!
//! # Rules
//!
//! | code | severity | rule |
//! |------|----------|------|
//! | `STCFA001` | warning | flow-dead application (no abstraction reaches the operator; cross-checked against cubic CFA) |
//! | `STCFA002` | warning | never-invoked abstraction (no call site anywhere; result-escaping lambdas exempt) |
//! | `STCFA003` | info    | called exactly once — inline candidate |
//! | `STCFA004` | warning | useless parameter (bound variable has no occurrence) |
//! | `STCFA005` | warning | effectful closure escapes to the program result |
//! | `STCFA006` | error   | stuck application (the operator is structurally a non-function value) |
//! | `STCFA007` | warning | mixed-purity call (both an effectful and a pure abstraction reach the operator; oracle-confirmed) |
//! | `STCFA008` | info    | dominated-redundant application (another call of the same sole target dominates this one) |
//!
//! Output is deterministic and input-ordered at any
//! `STCFA_QUERY_THREADS` setting: diagnostics are sorted by occurrence id
//! then rule code, and every engine query is answered positionally.
//!
//! `STCFA002/004/005` also exist as declarative rule programs evaluated
//! by the [`stcfa_rules`] engine — [`lint_rule_backed`] runs them and is
//! byte-identical to [`lint`] filtered to those codes, and
//! [`explain`](explain()) prints the program behind any code.
//!
//! # Example
//!
//! ```
//! use stcfa_core::{Analysis, QueryEngine};
//! use stcfa_lambda::Program;
//! use stcfa_lint::{lint, LintOptions};
//!
//! let p = Program::parse("fun unused x = x; 1 + 2").expect("parses");
//! let a = Analysis::run(&p).expect("analyzes");
//! let engine = QueryEngine::freeze(&a);
//! let diags = lint(&p, &a, &engine, &LintOptions::default());
//! assert!(diags.iter().any(|d| d.code.as_str() == "STCFA002"));
//! ```

#![warn(missing_docs)]

pub mod diag;
pub mod evidence;
pub mod explain;
pub mod render;
pub mod rules;
pub mod rules_backed;

pub use diag::Confidence;
pub use diag::{Diagnostic, RuleCode, Severity};
pub use explain::explain;
pub use render::{render_json, render_text};
pub use rules::{lint, lint_with_suspicion, LintOptions};
pub use rules_backed::{lint_rule_backed, RULE_BACKED_CODES};
