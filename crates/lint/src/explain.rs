//! `stcfa lint --explain CODE`: the definition behind each rule code.
//!
//! Rule-backed codes print their actual declarative program — the
//! [`stcfa_rules`] source of truth, rendered in Datalog surface syntax —
//! so what the explainer shows is what the evaluator runs. Codes that
//! are structural (STCFA006) or oracle-coupled (STCFA001, STCFA003)
//! get prose instead.

use std::fmt::Write as _;

use stcfa_rules::analyses;

use crate::diag::RuleCode;

/// Returns the explanation for `code` (e.g. `"STCFA004"`; matching is
/// case-insensitive), or `None` when the code is unknown.
pub fn explain(code: &str) -> Option<String> {
    let code = RuleCode::all()
        .into_iter()
        .find(|c| c.as_str().eq_ignore_ascii_case(code))?;
    let mut out = String::new();
    let header = |out: &mut String, title: &str| {
        let _ = writeln!(out, "{} ({}): {}", code.as_str(), code.severity(), title);
        out.push('\n');
    };
    match code {
        RuleCode::FlowDeadApplication => {
            header(&mut out, "flow-dead application");
            out.push_str(
                "The subtransitive flow analysis proves that no abstraction label\n\
                 reaches the operator of this application, and the cubic 0-CFA\n\
                 oracle confirms the exact set is empty too. The call can never\n\
                 apply a function; the expression is dead or a bug.\n\n\
                 Not rule-backed: the finding couples the engine's (possibly\n\
                 under-approximating) answer with a lazily-run exact oracle.\n",
            );
        }
        RuleCode::NeverInvokedAbstraction => {
            header(&mut out, "never-invoked abstraction");
            out.push_str(
                "No application in the program can call this abstraction, and it\n\
                 does not escape to the program result (where an outside caller\n\
                 could apply it). Evaluated from the declarative program:\n\n",
            );
            let _ = write!(out, "{}", analyses::never_invoked_program().0);
        }
        RuleCode::CalledOnceInline => {
            header(&mut out, "called exactly once");
            out.push_str(
                "Exactly one call site anywhere in the program applies this\n\
                 abstraction, so inlining or specializing it cannot duplicate\n\
                 work. Computed by the engine-backed called-once analysis\n\
                 (a per-label site count, not a rule program).\n",
            );
        }
        RuleCode::UselessParameter => {
            header(&mut out, "useless parameter");
            out.push_str(
                "The bound variable has no occurrence in the body. Names starting\n\
                 with `_` (declared intent) or `$` (desugaring machinery) are\n\
                 exempt. Evaluated from the declarative program:\n\n",
            );
            let _ = write!(out, "{}", analyses::useless_param_program().0);
        }
        RuleCode::EscapingEffectfulClosure => {
            header(&mut out, "escaping effectful closure");
            out.push_str(
                "An abstraction whose body performs effects flows to the program\n\
                 result, so whether (and how often) those effects run is decided\n\
                 by the consumer. Evaluated from the declarative program:\n\n",
            );
            let _ = write!(out, "{}", analyses::escaping_effectful_program().0);
        }
        RuleCode::StuckApplication => {
            header(&mut out, "stuck application");
            out.push_str(
                "The operator is structurally a non-function value — a literal,\n\
                 record, or constructor — so the application cannot evaluate.\n\
                 Purely syntactic; no rule program involved.\n",
            );
        }
        RuleCode::TaintedEffectfulFlow => {
            header(&mut out, "mixed-purity call");
            out.push_str(
                "Both an effectful-bodied and a pure-bodied abstraction flow to\n\
                 the same operator: whether the call performs effects depends on\n\
                 which one arrives at run time. Reported only when the cubic CFA\n\
                 oracle confirms the mix is exact. Evaluated from the\n\
                 declarative program:\n\n",
            );
            let _ = write!(out, "{}", analyses::mixed_purity_program().0);
        }
        RuleCode::DominatedRedundantApplication => {
            header(&mut out, "dominated-redundant application");
            out.push_str(
                "This application has a single possible target, and another call\n\
                 site with the same sole target sits in a call-graph node that\n\
                 strictly dominates this one — every path here already applied\n\
                 that abstraction. Built on the dominator relation, itself a\n\
                 stratified rule program (`nd(n, d)` is \"the entry reaches `n`\n\
                 avoiding `d`\"; `dom` is its negation on reachable nodes):\n\n",
            );
            let _ = write!(out, "{}", analyses::dominators_program().0);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_code_has_an_explanation() {
        for code in RuleCode::all() {
            let text = explain(code.as_str()).expect("known code");
            assert!(text.starts_with(code.as_str()), "{text}");
            assert!(
                text.contains(code.severity().as_str()),
                "severity missing: {text}"
            );
        }
    }

    #[test]
    fn rule_backed_codes_print_their_programs() {
        for code in ["STCFA002", "STCFA004", "STCFA005", "STCFA007"] {
            let text = explain(code).unwrap();
            assert!(text.contains(":-"), "{code} should show clauses: {text}");
            assert!(text.contains(".edb "), "{code} should show views: {text}");
        }
        let dom = explain("STCFA008").unwrap();
        assert!(dom.contains("dom(n, d)"), "{dom}");
    }

    #[test]
    fn matching_is_case_insensitive_and_total() {
        assert!(explain("stcfa004").is_some());
        assert!(explain("STCFA999").is_none());
        assert!(explain("").is_none());
    }
}
