-- Mutual recursion via `and` (desugared to a recursive pack).
fun even n = if n = 0 then true else odd (n - 1)
and odd n = if n = 0 then false else even (n - 1);
val u = print (if even 10 then 1 else 0);
even 7
