-- Reachability-aware analysis fodder:
--   stcfa corpus/dead_code.ml --live --called-once
let val unused = fn x => (fn y => y) (x + 1) in
  (fn z => z * z) 6
end
