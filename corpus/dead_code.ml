-- Reachability-aware analysis fodder:
--   stcfa corpus/dead_code.ml --live --called-once
--   stcfa lint corpus/dead_code.ml
-- `unused` is never invoked (STCFA002). `spin` never returns, so no
-- abstraction ever flows to the operator of `(spin 0) 3`: the call is
-- flow-dead (STCFA001) yet still well-typed — exactly the case the
-- flow analysis sees and the type system cannot.
fun spin n = spin n;
val unused = fn x => (fn y => y) (x + 1);
val dead = fn d => (spin 0) 3;
(fn z => z * z) 6
