-- Classic higher-order plumbing: compose, twice, flip.
fun compose f = fn g => fn x => f (g x);
fun twice f = fn x => f (f x);
fun flip f = fn a => fn b => f b a;
val inc = fn n => n + 1;
val dbl = fn n => n * 2;
val mix = compose inc dbl;
val u1 = print (mix 10);          -- 21
val u2 = print (twice mix 3);     -- 15
val u3 = print (flip (fn a => fn b => a - b) 1 10);  -- 9
twice (compose dbl inc) 1          -- dbl(inc(dbl(inc 1))) = 10
