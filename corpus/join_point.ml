-- The Section 2 join-point pattern: the shared identity merges the
-- label sets of everything passed through it. Compare:
--   stcfa corpus/join_point.ml --call-sites --analysis sub
--   stcfa corpus/join_point.ml --call-sites --analysis poly
fun f x = x;
val r1 = f (fn a => a + 1);
val r2 = f (fn b => b * 2);
val r3 = f (fn c => c - 3);
r1 (r2 (r3 100))
