-- Demand locality for the precision scheduler (docs/PRECISION.md):
-- one datatype-backed dispatch cluster — the only suspicious flow in
-- the file — surrounded by independent pure pipelines. The
-- dispatcher's demand cone stays inside its own cluster, so the
-- cone-restricted cubic confirmation prices a fraction of a
-- whole-program cubic run (EXPERIMENTS.md E17):
--   stcfa corpus/dispatch_table.ml --call-sites --precision
datatype handler = H of (int -> int) | Skip;
fun pick h = fn d => case h of H(f) => f | Skip => d;
val table = H(fn a => a + 3);
val fallback = fn z => z * 2;

fun inc x = x + 1;
fun dbl x = x + x;
fun sq x = x * x;
fun sub1 x = x - 1;

fun twice f = fn x => f (f x);
fun quad f = twice (twice f);
val p1 = quad inc 10 + twice inc 3;

fun compose f = fn g => fn x => f (g x);
val p2 = compose dbl inc 5 + compose inc dbl 7;

fun apply3 f = fn x => f (f (f x));
val p3 = apply3 sq 2 + apply3 inc 9;

fun iter f = fn x => f (f x);
val p4 = iter sub1 8 + iter dbl 6;

fun pipe x = fn f => f x;
val p5 = pipe 4 sq + pipe 11 sub1;

fun fold2 f = fn a => fn b => f a + f b;
val p6 = fold2 inc 1 2 + fold2 dbl 3 4;

fun flip f = fn a => fn b => f b a;
fun minus a = fn b => a - b;
val p7 = flip minus 1 9 + flip minus 2 8;

fun add2 a = fn b => a + b;
fun on f = fn g => fn a => fn b => f (g a) (g b);
val p8 = on add2 sq 2 3 + on add2 inc 4 5;

fun chain f = fn g => fn x => g (f (g x));
val p9 = chain inc sq 3 + chain dbl sub1 5;

fun delta x = x;
val p10 = delta delta 12;

fun church2 f = fn x => f (f x);
fun church3 f = fn x => f (church2 f x);
val p11 = church3 inc 0 + church2 sq 2;

fun wrapcall f = fn x => pipe x f;
val p12 = wrapcall inc 41 + wrapcall sq 6;

fun both f = fn x => f x + f (f x);
val p13 = both inc 5 + both dbl 3;

fun ladder f = fn g => fn h => fn x => f (g (h x));
val p14 = ladder inc dbl sq 2 + ladder sq sub1 inc 7;

fun rot f = fn a => fn b => fn c => f c a b;
fun tri a = fn b => fn c => a + b - c;
val p15 = rot tri 1 2 3 + rot tri 4 5 6;

fun dub g = fn x => g (g (g (g x)));
val p16 = dub inc 10 + dub sub1 20;

pick table fallback 10 + p1 + p2 + p3 + p4 + p5 + p6 + p7
  + p8 + p9 + p10 + p11 + p12 + p13 + p14 + p15 + p16
