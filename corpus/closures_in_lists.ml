-- Functions stored in a recursive datatype and extracted again — the
-- Section 6 territory where the datatype congruences (≈1 vs ≈2) differ:
--   stcfa corpus/closures_in_lists.ml --call-sites --policy c1
--   stcfa corpus/closures_in_lists.ml --call-sites --policy c2
datatype flist = FNil | FCons of (int -> int) * flist;
fun head xs = fn d => case xs of FCons(g, t) => g | FNil => d;
val ops = FCons(fn a => a + 1, FCons(fn b => b * 2, FNil));
val other = FCons(fn c => c - 7, FNil);
val u = print (head ops (fn z => z) 10);
head other (fn z => z) 50
