-- The worked example from Section 3 of Heintze & McAllester (PLDI 1997):
-- (λx.(x x)) (λ'y.y). Try:
--   stcfa corpus/paper_example.ml --labels --call-sites --dot
(fn x => x x) (fn y => y)
