-- Effects flow through higher-order calls (Section 8):
--   stcfa corpus/effects.ml --effects --live
fun applyTo x = fn f => f x;
val noisy = fn n => let val u = print n in n end;
val quiet = fn n => n + 1;
val dead = fn n => let val u = print (n * 100) in n end;
applyTo 5 noisy + applyTo 6 quiet
