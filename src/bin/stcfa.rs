//! Command-line front end: run the paper's analyses on a source file.
//!
//! ```text
//! stcfa <FILE|-> [COMMANDS] [OPTIONS]
//!
//! COMMANDS (any combination; default: --summary)
//!   --summary          program and subtransitive-graph statistics
//!   --labels           L(root): the abstractions the program can evaluate to
//!   --call-sites       call targets at every application site
//!   --precision        grade --labels/--call-sites answers through the
//!                      adaptive precision scheduler (docs/PRECISION.md):
//!                      each set is annotated exact|refined|approx with the
//!                      tier that settled it; requires --analysis sub
//!   --precision-budget <n>  escalated-node cap for --precision
//!                      (default 65536)
//!   --effects          the may-have-side-effects report (paper §8)
//!   --k-limited <k>    call targets cut off at k with "many" (paper §9)
//!   --called-once      functions called from exactly one / no call site
//!   --inline           repeatedly inline unique called-once targets; print program
//!   --types            type metrics: k_avg, k_max, order, arity (paper §4–5)
//!   --boundedness      direct vs McAllester (let-expanded) type bounds (§5)
//!   --eval             run the program under call-by-value
//!   --live             reachability report (dead λ-bodies and case arms)
//!   --witness          for each label in L(root): the graph path proving it
//!   --dot              emit the subtransitive graph in Graphviz syntax
//!
//! REPL MODE
//!   --repl             read fragments from stdin (one per line, `;;` to
//!                      submit multi-line input), analyzing incrementally
//!
//! LINT MODE
//!   stcfa lint <FILE|-> [--format text|json] [--threads <n>]
//!                      flow-powered diagnostics (STCFA001–STCFA008) over
//!                      the frozen query engine; see docs/LINT.md
//!   stcfa lint --explain <CODE>
//!                      print the declarative rule definition behind a
//!                      diagnostic code (see docs/RULES.md)
//!
//! OPT MODE
//!   stcfa opt <FILE|-> [--passes name,...] [--emit] [--report text|json]
//!             [--max-rounds <n>] [--budget <n>] [--threads <n>]
//!                      flow-directed lowering over the frozen query
//!                      engine: dead-app elision, called-once inlining,
//!                      useless-parameter pruning, direct-call facts;
//!                      --emit prints the optimized program (report to
//!                      stderr); see docs/OPT.md
//!
//! RULE MODE
//!   stcfa rule <FILE|-> --name dominators|taint [--sources l,l,...]
//!              [--expr <n>]
//!                      evaluate a shipped rule program (docs/RULES.md)
//!                      and print the JSON answer; `--expr` turns taint
//!                      into a single demand query
//!
//! SERVER MODE
//!   stcfa serve [--stdio | --addr HOST:PORT] [--threads <n>]
//!               [--cache-capacity <bytes[k|m|g]>] [--cache-dir <path>]
//!               [--deadline-ms <n>]
//!                      long-running daemon speaking the line-delimited JSON
//!                      protocol of docs/SERVER.md, with a content-addressed
//!                      snapshot cache; --cache-dir adds a persistent disk
//!                      tier that survives daemon restarts (docs/PERSIST.md)
//!   stcfa client --addr HOST:PORT [--request <json>]
//!                      forward stdin lines (or one --request) to a daemon
//!
//! SESSION MODE
//!   stcfa session [FILE...] [--module NAME=PATH]... [--split <n>]
//!                 [--policy ...] [--lint] [--emit-requests [--update-last]]
//!                      link the files as a multi-file analysis session
//!                      (each FILE is a module named by its stem; --split n
//!                      cuts a single file at top-level boundaries into n
//!                      modules) and print the link report; --lint adds
//!                      module-attributed diagnostics; --emit-requests
//!                      prints the equivalent protocol-v2 `session/*`
//!                      request lines instead (pipe into `stcfa serve
//!                      --stdio`); see docs/SESSIONS.md
//!
//! OPTIONS
//!   --analysis <sub|poly|hybrid|cfa0|sba|unify>   engine for label queries (default sub)
//!   --policy <c1|c2|exact|forget>                 datatype congruence (default c1)
//!   --max-nodes <n>                               close-phase node budget
//!   --fuel <n>                                    evaluation step budget (default 10^7)
//!   --version                                     print the version and exit
//! ```
//!
//! Exit codes: 0 success, 1 runtime failure (I/O, parse, analysis), 2 usage
//! error (unknown flag/argument), 3 bad or missing flag value.

use std::io::Read as _;
use std::process::ExitCode;

use stcfa::apps::{effects, find_candidates, inline_once, CallSites, CalledOnce, KLimited};
use stcfa::cfa0::Cfa0;
use stcfa::core::hybrid::HybridCfa;
use stcfa::core::{dot, Analysis, AnalysisOptions, DatatypePolicy, PolyAnalysis, QueryEngine};
use stcfa::lambda::eval::{eval, EvalOptions, Value};
use stcfa::lambda::{ExprId, ExprKind, Label, Program};
use stcfa::sba::Sba;
use stcfa::types::{TypeMetrics, TypedProgram};
use stcfa::unify::UnifyCfa;

/// CLI failures, classified so each class maps to a distinct exit code
/// (scripts can tell "you called me wrong" from "the input was bad").
enum CliError {
    /// Unknown flag/argument or missing positional: exit 2.
    Usage(String),
    /// A flag value that is missing or fails to parse: exit 3.
    BadValue(String),
    /// Everything downstream of a well-formed invocation: exit 1.
    Runtime(String),
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError::Runtime(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> CliError {
        CliError::Runtime(message.to_owned())
    }
}

struct Options {
    path: String,
    commands: Vec<Command>,
    engine: EngineKind,
    policy: DatatypePolicy,
    max_nodes: Option<usize>,
    fuel: u64,
    precision: bool,
    precision_budget: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Command {
    Summary,
    Labels,
    CallSites,
    Effects,
    KLimited(usize),
    CalledOnce,
    Inline,
    Types,
    Boundedness,
    Eval,
    Live,
    Witness,
    Dot,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum EngineKind {
    Sub,
    Poly,
    Hybrid,
    Cfa0,
    Sba,
    Unify,
}

/// Uniform label-query interface over the six engines. The subtransitive
/// variant freezes a [`QueryEngine`] so repeated `labels_of` queries (e.g.
/// `--call-sites`) hit the SCC summary cache instead of re-walking the
/// graph.
enum Engine {
    Sub(QueryEngine),
    Poly(PolyAnalysis),
    Hybrid(HybridCfa),
    Cfa0(Cfa0),
    Sba(Sba),
    Unify(UnifyCfa),
}

impl Engine {
    fn name(&self) -> &'static str {
        match self {
            Engine::Sub(..) => "subtransitive (linear)",
            Engine::Poly(_) => "polyvariant subtransitive",
            Engine::Hybrid(h) => {
                if h.is_linear() {
                    "hybrid → subtransitive"
                } else {
                    "hybrid → cubic fallback"
                }
            }
            Engine::Cfa0(_) => "standard 0-CFA (cubic)",
            Engine::Sba(_) => "set-based analysis",
            Engine::Unify(_) => "equality-based (unification)",
        }
    }

    fn labels_of(&self, program: &Program, e: ExprId) -> Vec<Label> {
        match self {
            Engine::Sub(q) => q.labels_of(e),
            Engine::Poly(a) => a.labels_of(e),
            Engine::Hybrid(h) => h.labels_of(program, e),
            Engine::Cfa0(c) => c.labels(program, e),
            Engine::Sba(s) => s.labels(program, e),
            Engine::Unify(u) => u.labels(e),
        }
    }
}

fn usage() -> &'static str {
    "usage: stcfa <FILE|-> [--summary|--labels|--call-sites|--effects|\
     --k-limited <k>|--called-once|--inline|--types|--boundedness|--eval|--live|--witness|--dot]*\n\
     \t[--analysis sub|poly|hybrid|cfa0|sba|unify] [--policy c1|c2|exact|forget]\n\
     \t[--max-nodes <n>] [--fuel <n>] [--precision [--precision-budget <n>]]\n\
     \tor: stcfa lint <FILE|-> [--format text|json] [--policy ...] [--threads <n>]\n\
     \tor: stcfa lint --explain <CODE>\n\
     \tor: stcfa opt <FILE|-> [--passes name,...] [--emit] [--report text|json] [--max-rounds <n>] [--budget <n>] [--threads <n>]\n\
     \tor: stcfa rule <FILE|-> --name dominators|taint [--sources l,l,...] [--expr <n>] [--policy ...]\n\
     \tor: stcfa serve [--stdio|--addr HOST:PORT] [--threads <n>] [--shards <n>] [--cache-capacity <bytes>] [--cache-dir <path>]\n\
     \t\t[--deadline-ms <n>] [--max-inflight <n>] [--conn-inflight <n>] [--transport fleet|threaded]\n\
     \t\t[--precision-budget <n>] [--summary]\n\
     \tor: stcfa client --addr HOST:PORT [--request <json>]\n\
     \tor: stcfa soak --addr HOST:PORT [--connections <n>] [--bursts <n>] [--burst <n>] [--source-file <path>] [--no-warm]\n\
     \tor: stcfa session [FILE...] [--module NAME=PATH]* [--split <n>] [--policy ...] [--lint] [--emit-requests [--update-last]]\n\
     \tor: stcfa --repl    (incremental session on stdin)\n\
     \tor: stcfa --version"
}

fn parse_args(args: &[String]) -> Result<Options, CliError> {
    let mut path = None;
    let mut commands = Vec::new();
    let mut engine = EngineKind::Sub;
    let mut policy = DatatypePolicy::Congruence1;
    let mut max_nodes = None;
    let mut fuel = 10_000_000u64;
    let mut precision = false;
    let mut precision_budget = stcfa::precision::PrecisionScheduler::DEFAULT_BUDGET;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--summary" => commands.push(Command::Summary),
            "--labels" => commands.push(Command::Labels),
            "--call-sites" => commands.push(Command::CallSites),
            "--effects" => commands.push(Command::Effects),
            "--called-once" => commands.push(Command::CalledOnce),
            "--inline" => commands.push(Command::Inline),
            "--types" => commands.push(Command::Types),
            "--boundedness" => commands.push(Command::Boundedness),
            "--eval" => commands.push(Command::Eval),
            "--live" => commands.push(Command::Live),
            "--witness" => commands.push(Command::Witness),
            "--dot" => commands.push(Command::Dot),
            "--k-limited" => {
                commands.push(Command::KLimited(flag_value(&mut it, "--k-limited")?));
            }
            "--analysis" => {
                engine = match it.next().map(String::as_str) {
                    Some("sub") => EngineKind::Sub,
                    Some("poly") => EngineKind::Poly,
                    Some("hybrid") => EngineKind::Hybrid,
                    Some("cfa0") => EngineKind::Cfa0,
                    Some("sba") => EngineKind::Sba,
                    Some("unify") => EngineKind::Unify,
                    other => return Err(CliError::BadValue(format!("unknown analysis {other:?}"))),
                };
            }
            "--policy" => policy = parse_policy_flag(it.next().map(String::as_str))?,
            "--max-nodes" => max_nodes = Some(flag_value(&mut it, "--max-nodes")?),
            "--fuel" => fuel = flag_value(&mut it, "--fuel")?,
            "--precision" => precision = true,
            "--precision-budget" => {
                precision_budget = flag_value(&mut it, "--precision-budget")?;
            }
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_owned());
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unexpected argument `{other}`\n{}",
                    usage()
                )))
            }
        }
    }
    let path = path.ok_or_else(|| CliError::Usage(usage().to_owned()))?;
    if commands.is_empty() {
        commands.push(Command::Summary);
    }
    if precision && engine != EngineKind::Sub {
        return Err(CliError::BadValue(
            "--precision grades the subtransitive engine's answers; \
             it requires --analysis sub"
                .to_owned(),
        ));
    }
    Ok(Options {
        path,
        commands,
        engine,
        policy,
        max_nodes,
        fuel,
        precision,
        precision_budget,
    })
}

/// Pulls and parses the value of `flag` from the argument iterator;
/// missing or malformed values are [`CliError::BadValue`] (exit 3).
fn flag_value<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<T, CliError>
where
    T::Err: std::fmt::Display,
{
    let raw = it
        .next()
        .ok_or_else(|| CliError::BadValue(format!("{flag} needs a value\n{}", usage())))?;
    raw.parse()
        .map_err(|e| CliError::BadValue(format!("{flag}: {e}\n{}", usage())))
}

/// The shared `--policy` flag.
fn parse_policy_flag(value: Option<&str>) -> Result<DatatypePolicy, CliError> {
    match value {
        Some("c1") => Ok(DatatypePolicy::Congruence1),
        Some("c2") => Ok(DatatypePolicy::Congruence2),
        Some("exact") => Ok(DatatypePolicy::Exact),
        Some("forget") => Ok(DatatypePolicy::Forget),
        other => Err(CliError::BadValue(format!("unknown policy {other:?}"))),
    }
}

/// Parses a byte count with an optional `k`/`m`/`g` (binary) suffix, e.g.
/// `--cache-capacity 256m`.
fn parse_capacity(raw: &str) -> Result<usize, CliError> {
    let (digits, shift) = match raw.as_bytes().last() {
        Some(b'k' | b'K') => (&raw[..raw.len() - 1], 10),
        Some(b'm' | b'M') => (&raw[..raw.len() - 1], 20),
        Some(b'g' | b'G') => (&raw[..raw.len() - 1], 30),
        _ => (raw, 0),
    };
    let n: usize = digits
        .parse()
        .map_err(|e| CliError::BadValue(format!("--cache-capacity: {e}")))?;
    n.checked_shl(shift)
        .filter(|&v| shift == 0 || v >> shift == n)
        .ok_or_else(|| CliError::BadValue(format!("--cache-capacity: `{raw}` overflows")))
}

/// The `--precision` annotation: grade, answering tier, and detector score.
fn grade_str(info: stcfa::precision::PrecisionInfo) -> String {
    format!(
        "{}, tier {}, suspicion {}",
        info.class.as_str(),
        info.tier.level(),
        info.suspicion
    )
}

fn lam_name(program: &Program, l: Label) -> String {
    let lam = program.lam_of_label(l);
    let ExprKind::Lam { param, .. } = program.kind(lam) else {
        unreachable!()
    };
    format!("λ{}#{}", program.var_name(*param), l.index())
}

fn repl() -> Result<(), String> {
    use stcfa::core::incremental::IncrementalAnalysis;
    use stcfa::lambda::session::SessionProgram;

    let mut session = SessionProgram::new();
    let mut analysis = IncrementalAnalysis::new(Default::default());
    let mut buffer = String::new();
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        let n =
            std::io::BufRead::read_line(&mut stdin.lock(), &mut line).map_err(|e| e.to_string())?;
        if n == 0 {
            return Ok(()); // EOF
        }
        let trimmed = line.trim_end();
        // `;;` submits accumulated multi-line input; otherwise each
        // non-empty line is its own fragment.
        if let Some(head) = trimmed.strip_suffix(";;") {
            buffer.push_str(head);
        } else if !buffer.is_empty() {
            buffer.push_str(trimmed);
            buffer.push('\n');
            continue;
        } else {
            buffer.push_str(trimmed);
        }
        let source = std::mem::take(&mut buffer);
        if source.trim().is_empty() {
            continue;
        }
        match session.define(&source) {
            Err(e) => eprintln!("error: {e}"),
            Ok(fragment) => match analysis.update(&session) {
                Err(e) => eprintln!("analysis error: {e}"),
                Ok(delta) => {
                    for b in &fragment.bindings {
                        let n = analysis.labels_of_binder(session.program(), b.binder).len();
                        println!("{} : {} possible function(s)", b.name, n);
                    }
                    if let Some(v) = fragment.value {
                        let labels = analysis.labels_of(session.program(), v);
                        println!("value : {} possible function(s)", labels.len());
                    }
                    println!(
                        "[+{} nodes, +{} edges; total {}]",
                        delta.new_nodes,
                        delta.new_edges,
                        analysis.node_count()
                    );
                }
            },
        }
    }
}

/// Reads the program source from a path or stdin (`-`).
fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| e.to_string())?;
        Ok(s)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

/// `stcfa lint <FILE|-> [--format text|json] [--policy ...] [--max-nodes n]
/// [--threads n]`: run the flow-powered diagnostics and print the report.
/// `stcfa lint --explain CODE` instead prints the declarative definition
/// behind one rule code and exits.
///
/// Always exits 0 when the program parses and analyzes; diagnostics are a
/// report, not a gate (pipe the JSON into a gate if you want one).
fn run_lint(args: &[String]) -> Result<(), CliError> {
    use stcfa::lint::{explain, lint, render_json, render_text, LintOptions};

    let mut path = None;
    let mut json = false;
    let mut policy = DatatypePolicy::Congruence1;
    let mut max_nodes = None;
    let mut threads = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--explain" => {
                let code = it.next().ok_or_else(|| {
                    CliError::BadValue("--explain needs a rule code (e.g. STCFA004)".to_owned())
                })?;
                let text = explain(code).ok_or_else(|| {
                    CliError::BadValue(format!(
                        "unknown rule code `{code}` (expected STCFA001–STCFA008)"
                    ))
                })?;
                print!("{text}");
                return Ok(());
            }
            "--format" => {
                json = match it.next().map(String::as_str) {
                    Some("json") => true,
                    Some("text") => false,
                    other => {
                        return Err(CliError::BadValue(format!("unknown lint format {other:?}")))
                    }
                };
            }
            "--policy" => policy = parse_policy_flag(it.next().map(String::as_str))?,
            "--max-nodes" => max_nodes = Some(flag_value(&mut it, "--max-nodes")?),
            "--threads" => threads = Some(flag_value::<usize>(&mut it, "--threads")?),
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_owned());
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unexpected argument `{other}`\n{}",
                    usage()
                )))
            }
        }
    }
    let path = path.ok_or_else(|| CliError::Usage(usage().to_owned()))?;
    let source = read_source(&path)?;
    let program = Program::parse(&source).map_err(|e| format!("{path}: {e}"))?;
    let analysis = Analysis::run_with(&program, AnalysisOptions { policy, max_nodes })
        .map_err(|e| e.to_string())?;
    let engine = QueryEngine::freeze(&analysis);
    let opts = LintOptions {
        threads: threads.unwrap_or_else(QueryEngine::default_threads),
    };
    let diags = lint(&program, &analysis, &engine, &opts);
    if json {
        print!("{}", render_json(&diags));
    } else {
        // Prefix each line with the file so reports from several files
        // stay attributable.
        for line in render_text(&diags).lines() {
            println!("{path}:{line}");
        }
        if diags.is_empty() {
            eprintln!("{path}: no diagnostics");
        }
    }
    Ok(())
}

/// `stcfa opt <FILE|-> [--passes name,...] [--emit] [--report text|json]
/// [--max-rounds <n>] [--budget <n>] [--threads <n>]`: run the
/// flow-directed lowering pipeline (docs/OPT.md) and print the decision
/// report — or, with `--emit`, the optimized program itself (the report
/// then goes to stderr so stdout stays parseable).
fn run_opt(args: &[String]) -> Result<(), CliError> {
    use stcfa::opt::{optimize, OptOptions, Pass, PassSet};

    let mut path = None;
    let mut passes = PassSet::all();
    let mut emit = false;
    let mut json = false;
    let mut max_rounds = None;
    let mut budget = None;
    let mut threads = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--passes" => {
                let list = it.next().ok_or_else(|| {
                    CliError::BadValue(
                        "--passes needs a comma-separated pass list (e.g. dead-app,inline-once)"
                            .to_owned(),
                    )
                })?;
                let mut set = PassSet::empty();
                for name in list.split(',').filter(|n| !n.is_empty()) {
                    let pass = Pass::from_name(name).ok_or_else(|| {
                        CliError::BadValue(format!(
                            "unknown pass `{name}` (expected one of {})",
                            Pass::all().map(Pass::name).join(", ")
                        ))
                    })?;
                    set = set.with(pass);
                }
                passes = set;
            }
            "--emit" => emit = true,
            "--report" => {
                json = match it.next().map(String::as_str) {
                    Some("json") => true,
                    Some("text") => false,
                    other => {
                        return Err(CliError::BadValue(format!(
                            "unknown report format {other:?}"
                        )))
                    }
                };
            }
            "--max-rounds" => max_rounds = Some(flag_value::<usize>(&mut it, "--max-rounds")?),
            "--budget" => budget = Some(flag_value::<usize>(&mut it, "--budget")?),
            "--threads" => threads = Some(flag_value::<usize>(&mut it, "--threads")?),
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_owned());
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unexpected argument `{other}`\n{}",
                    usage()
                )))
            }
        }
    }
    let path = path.ok_or_else(|| CliError::Usage(usage().to_owned()))?;
    let source = read_source(&path)?;
    let program = Program::parse(&source).map_err(|e| format!("{path}: {e}"))?;
    let defaults = OptOptions::default();
    let options = OptOptions {
        passes,
        max_rounds: max_rounds.unwrap_or(defaults.max_rounds),
        budget: budget.unwrap_or(defaults.budget),
        threads: threads.unwrap_or_else(QueryEngine::default_threads),
    };
    let out = optimize(&program, &options).map_err(|e| e.to_string())?;
    let rendered = if json {
        out.report.to_json()
    } else {
        out.report.to_text()
    };
    if emit {
        print!("{}", out.program.to_source());
        eprint!("{rendered}");
    } else {
        print!("{rendered}");
    }
    Ok(())
}

/// `stcfa rule <FILE|-> --name dominators|taint [--sources l,l,...]
/// [--expr n] [--policy ...]`: evaluate a shipped rule program over the
/// frozen engine and print the JSON answer — the CLI twin of the
/// protocol-2 `rule` op (docs/RULES.md).
fn run_rule(args: &[String]) -> Result<(), CliError> {
    use stcfa::rules::{dominators, expr_is_tainted, tainted_exprs, ExtDb};

    let mut path = None;
    let mut name = None;
    let mut sources: Option<Vec<usize>> = None;
    let mut expr = None;
    let mut policy = DatatypePolicy::Congruence1;
    let mut max_nodes = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--name" => {
                name = Some(
                    it.next()
                        .ok_or_else(|| CliError::BadValue("--name needs a rule name".to_owned()))?
                        .to_owned(),
                );
            }
            "--sources" => {
                let raw = it.next().ok_or_else(|| {
                    CliError::BadValue("--sources needs a comma-separated label list".to_owned())
                })?;
                let mut list = Vec::new();
                for part in raw.split(',').filter(|p| !p.is_empty()) {
                    list.push(part.parse::<usize>().map_err(|_| {
                        CliError::BadValue(format!("--sources: `{part}` is not a label index"))
                    })?);
                }
                sources = Some(list);
            }
            "--expr" => expr = Some(flag_value::<usize>(&mut it, "--expr")?),
            "--policy" => policy = parse_policy_flag(it.next().map(String::as_str))?,
            "--max-nodes" => max_nodes = Some(flag_value(&mut it, "--max-nodes")?),
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_owned());
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unexpected argument `{other}`\n{}",
                    usage()
                )))
            }
        }
    }
    let path = path.ok_or_else(|| CliError::Usage(usage().to_owned()))?;
    let name =
        name.ok_or_else(|| CliError::Usage("rule needs --name dominators|taint".to_owned()))?;
    let source = read_source(&path)?;
    let program = Program::parse(&source).map_err(|e| format!("{path}: {e}"))?;
    let analysis = Analysis::run_with(&program, AnalysisOptions { policy, max_nodes })
        .map_err(|e| e.to_string())?;
    let engine = QueryEngine::freeze(&analysis);
    let db = ExtDb::new(&program, &analysis, &engine);
    let join = |it: &mut dyn Iterator<Item = usize>| -> String {
        it.map(|n| n.to_string()).collect::<Vec<_>>().join(",")
    };
    match name.as_str() {
        "dominators" => {
            let dom = dominators(&db);
            let mut nodes = Vec::new();
            for n in 0..=dom.entry() {
                if dom.is_reachable(n) {
                    let doms = join(&mut dom.doms_of(n).iter().map(|&d| d as usize));
                    nodes.push(format!("{{\"node\":{n},\"doms\":[{doms}]}}"));
                }
            }
            println!(
                "{{\"rule\":\"dominators\",\"entry\":{},\"nodes\":[{}]}}",
                dom.entry(),
                nodes.join(",")
            );
        }
        "taint" => {
            let labels: Vec<Label> = match sources {
                Some(list) => {
                    let mut out = Vec::with_capacity(list.len());
                    for l in list {
                        if l >= program.label_count() {
                            return Err(CliError::BadValue(format!(
                                "--sources: label {l} is out of range (program has {})",
                                program.label_count()
                            )));
                        }
                        out.push(Label::from_index(l));
                    }
                    out.sort_unstable();
                    out.dedup();
                    out
                }
                None => {
                    // Default: every effectful-bodied abstraction.
                    let eff = db.effects();
                    program
                        .all_labels()
                        .filter(|&l| match program.kind(program.lam_of_label(l)) {
                            ExprKind::Lam { body, .. } => eff.is_effectful(*body),
                            _ => false,
                        })
                        .collect()
                }
            };
            let srcs = join(&mut labels.iter().map(|l| l.index()));
            match expr {
                Some(n) => {
                    if n >= program.size() {
                        return Err(CliError::BadValue(format!(
                            "--expr: {n} is out of range (program has {} occurrences)",
                            program.size()
                        )));
                    }
                    let tainted = expr_is_tainted(&db, &labels, ExprId::from_index(n));
                    println!(
                        "{{\"rule\":\"taint\",\"sources\":[{srcs}],\"expr\":{n},\"tainted\":{tainted}}}"
                    );
                }
                None => {
                    let tainted = tainted_exprs(&db, &labels);
                    let list = join(&mut tainted.iter().map(|e| e.index()));
                    println!("{{\"rule\":\"taint\",\"sources\":[{srcs}],\"tainted\":[{list}]}}");
                }
            }
        }
        other => {
            return Err(CliError::BadValue(format!(
                "unknown rule `{other}` (expected dominators|taint)"
            )))
        }
    }
    Ok(())
}

/// `stcfa session [FILE...] [--module NAME=PATH]... [--split n] [--policy ...]
/// [--lint] [--emit-requests [--update-last]]`: link files as a multi-file
/// analysis session and report on the link graph, or emit the equivalent
/// protocol-v2 request lines for `stcfa serve --stdio`.
fn run_session(args: &[String]) -> Result<(), CliError> {
    use stcfa::lint::{lint, LintOptions};
    use stcfa::server::Json;
    use stcfa::session::{split, Workspace};

    let mut files: Vec<String> = Vec::new();
    let mut named: Vec<(String, String)> = Vec::new();
    let mut split_n: Option<usize> = None;
    let mut policy = DatatypePolicy::Congruence1;
    let mut do_lint = false;
    let mut emit_requests = false;
    let mut update_last = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--module" => {
                let raw = it.next().ok_or_else(|| {
                    CliError::BadValue(format!("--module needs NAME=PATH\n{}", usage()))
                })?;
                let (name, path) = raw.split_once('=').ok_or_else(|| {
                    CliError::BadValue(format!("--module expects NAME=PATH, got `{raw}`"))
                })?;
                named.push((name.to_owned(), path.to_owned()));
            }
            "--split" => split_n = Some(flag_value(&mut it, "--split")?),
            "--policy" => policy = parse_policy_flag(it.next().map(String::as_str))?,
            "--lint" => do_lint = true,
            "--emit-requests" => emit_requests = true,
            "--update-last" => update_last = true,
            other if !other.starts_with("--") => files.push(other.to_owned()),
            other => {
                return Err(CliError::Usage(format!(
                    "unexpected argument `{other}`\n{}",
                    usage()
                )))
            }
        }
    }
    if update_last && !emit_requests {
        return Err(CliError::Usage(
            "--update-last only applies with --emit-requests".to_owned(),
        ));
    }

    // Assemble the module list: named --module pairs first (in flag
    // order), then positional files named by their stem; --split cuts a
    // single positional file at top-level boundaries instead.
    let stem = |path: &str| -> String {
        std::path::Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.to_owned())
    };
    let mut modules: Vec<(String, String)> = Vec::new();
    for (name, path) in &named {
        modules.push((name.clone(), read_source(path)?));
    }
    match split_n {
        Some(parts) => {
            if files.len() != 1 || !named.is_empty() {
                return Err(CliError::Usage(
                    "--split expects exactly one FILE and no --module flags".to_owned(),
                ));
            }
            let path = &files[0];
            let source = read_source(path)?;
            let pieces = split::split_even(&source, parts).map_err(CliError::Runtime)?;
            let base = stem(path);
            for (i, piece) in pieces.into_iter().enumerate() {
                modules.push((format!("{base}.{i}"), piece));
            }
        }
        None => {
            for path in &files {
                modules.push((stem(path), read_source(path)?));
            }
        }
    }
    if modules.is_empty() {
        return Err(CliError::Usage(format!(
            "session needs at least one module\n{}",
            usage()
        )));
    }

    if emit_requests {
        // The protocol-v2 conversation equivalent to this invocation,
        // one request per line (the ci.sh session smoke pipes this into
        // `stcfa serve --stdio` at several thread counts).
        let policy_name = match policy {
            DatatypePolicy::Congruence1 => "c1",
            DatatypePolicy::Congruence2 => "c2",
            DatatypePolicy::Exact => "exact",
            DatatypePolicy::Forget => "forget",
        };
        let module_objs = |mods: &[(String, String)]| {
            Json::Arr(
                mods.iter()
                    .map(|(name, source)| {
                        Json::obj(vec![
                            ("name", Json::str(name.clone())),
                            ("source", Json::str(source.clone())),
                        ])
                    })
                    .collect(),
            )
        };
        let mut id = 0u64;
        let mut emit = |op: &str, extra: Vec<(&str, Json)>| {
            let mut pairs = vec![
                ("v", Json::num(2)),
                ("id", Json::num(id)),
                ("op", Json::str(op)),
            ];
            if op != "shutdown" {
                pairs.push(("session", Json::str("cli")));
            }
            pairs.extend(extra);
            println!(
                "{}",
                Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),).to_line()
            );
            id += 1;
        };
        emit(
            "session/open",
            vec![
                ("policy", Json::str(policy_name)),
                ("modules", module_objs(&modules)),
            ],
        );
        emit("session/query", vec![("kind", Json::str("label-set"))]);
        if update_last {
            // Re-upsert the last module with a trailing newline: a
            // content change that leaves the analysis identical, so the
            // update path (unpin old, pin new) is exercised end to end.
            let (name, source) = modules.last().expect("nonempty").clone();
            let edited = vec![(name, format!("{source}\n"))];
            emit("session/update", vec![("modules", module_objs(&edited))]);
            emit("session/query", vec![("kind", Json::str("label-set"))]);
        }
        emit("session/lint", vec![]);
        emit("session/close", vec![]);
        // Shutdown is v1; keep the whole transcript v2 for simplicity.
        emit("shutdown", vec![]);
        return Ok(());
    }

    let mut workspace = Workspace::new(AnalysisOptions {
        policy,
        max_nodes: None,
    });
    for (name, source) in &modules {
        if workspace.module(name).is_some() {
            return Err(CliError::Usage(format!("duplicate module name `{name}`")));
        }
        workspace.upsert(name, source);
    }
    let report = workspace.link().map_err(|e| e.to_string())?;
    println!(
        "session: {} modules, digest {:016x}",
        report.modules.len(),
        report.session_digest
    );
    for m in &report.modules {
        let imports = if m.imports.is_empty() {
            "-".to_owned()
        } else {
            m.imports.join(", ")
        };
        println!(
            "  {}: {} exprs, {} exports, imports: {imports}",
            m.name,
            m.exprs,
            m.exports.len()
        );
    }
    println!(
        "graph:   {} nodes, {} edges over {} exprs",
        report.nodes, report.edges, report.exprs
    );
    let snapshot = workspace.freeze().expect("just linked");
    if let Some(value) = report.default_value() {
        let engine = snapshot.engine(&workspace).expect("workspace unchanged");
        let labels = engine.labels_of(value);
        let names: Vec<String> = labels
            .iter()
            .map(|&l| lam_name(snapshot.program(), l))
            .collect();
        println!(
            "value:   {} ({{{}}}) in module {}",
            labels.len(),
            names.join(", "),
            report.module_of_expr(value).unwrap_or("?")
        );
    }
    if do_lint {
        let diags = lint(
            snapshot.program(),
            snapshot.analysis(),
            snapshot.engine(&workspace).expect("workspace unchanged"),
            &LintOptions::default(),
        );
        for d in &diags {
            let module = report.module_of_expr(d.expr).unwrap_or("?");
            match d.span {
                Some(s) => println!(
                    "{module}:{}:{}: {} [{}] {}",
                    s.start.line,
                    s.start.col,
                    d.severity.as_str(),
                    d.code.as_str(),
                    d.message
                ),
                None => println!(
                    "{module}: {} [{}] {}",
                    d.severity.as_str(),
                    d.code.as_str(),
                    d.message
                ),
            }
        }
        println!("lint:    {} diagnostic(s)", diags.len());
    }
    Ok(())
}

/// `stcfa serve [--stdio | --addr HOST:PORT] [--threads n]
/// [--cache-capacity bytes] [--cache-dir path] [--deadline-ms n]`: run the
/// analysis daemon. Defaults to the stdio transport when no `--addr` is
/// given.
fn run_serve(args: &[String]) -> Result<(), CliError> {
    use stcfa::server::{fleet_summary_line, Server, ServerOptions};

    let mut addr = None;
    let mut stdio = false;
    let mut summary = false;
    let mut threaded = false;
    let mut options = ServerOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stdio" => stdio = true,
            "--summary" => summary = true,
            "--shards" => options.shards = flag_value(&mut it, "--shards")?,
            "--max-inflight" => options.max_inflight = flag_value(&mut it, "--max-inflight")?,
            "--conn-inflight" => options.conn_inflight = flag_value(&mut it, "--conn-inflight")?,
            "--transport" => {
                threaded = match it.next().map(String::as_str) {
                    Some("fleet") => false,
                    Some("threaded") => true,
                    other => {
                        return Err(CliError::BadValue(format!(
                            "--transport expects fleet|threaded, got {other:?}"
                        )))
                    }
                };
            }
            "--addr" => {
                addr = Some(
                    it.next()
                        .ok_or_else(|| {
                            CliError::BadValue(format!("--addr needs a value\n{}", usage()))
                        })?
                        .to_owned(),
                );
            }
            "--threads" => options.threads = flag_value(&mut it, "--threads")?,
            "--cache-capacity" => {
                let raw = it.next().ok_or_else(|| {
                    CliError::BadValue(format!("--cache-capacity needs a value\n{}", usage()))
                })?;
                options.cache_capacity = parse_capacity(raw)?;
            }
            "--deadline-ms" => {
                options.default_deadline_ms = Some(flag_value(&mut it, "--deadline-ms")?)
            }
            "--precision-budget" => {
                options.precision_budget = flag_value(&mut it, "--precision-budget")?
            }
            "--cache-dir" => {
                let raw = it.next().ok_or_else(|| {
                    CliError::BadValue(format!("--cache-dir needs a value\n{}", usage()))
                })?;
                std::fs::create_dir_all(raw).map_err(|e| {
                    CliError::Runtime(format!("--cache-dir {raw}: cannot create: {e}"))
                })?;
                options.cache_dir = Some(std::path::PathBuf::from(raw));
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unexpected argument `{other}`\n{}",
                    usage()
                )))
            }
        }
    }
    if stdio && addr.is_some() {
        return Err(CliError::Usage(
            "--stdio and --addr are mutually exclusive".to_owned(),
        ));
    }
    if options.threads == 0 {
        return Err(CliError::BadValue(
            "--threads must be at least 1".to_owned(),
        ));
    }
    if options.max_inflight == 0 {
        return Err(CliError::BadValue(
            "--max-inflight must be at least 1".to_owned(),
        ));
    }
    if options.conn_inflight == 0 {
        return Err(CliError::BadValue(
            "--conn-inflight must be at least 1".to_owned(),
        ));
    }
    let server = Server::new(options);
    let on_bound = |bound: std::net::SocketAddr| {
        // The smoke test (and humans using port 0) read the bound
        // address off stderr.
        eprintln!("stcfa-server listening on {bound}");
    };
    let result = match addr {
        None => server.serve_stdio(),
        Some(addr) if threaded => server.serve_tcp_threaded(&addr, on_bound),
        Some(addr) => server.serve_tcp(&addr, on_bound),
    };
    if summary {
        if let Some(fleet) = server.fleet_stats() {
            eprintln!("{}", fleet_summary_line(&fleet));
        }
    }
    result.map_err(|e| CliError::Runtime(format!("serve: {e}")))
}

/// `stcfa soak --addr HOST:PORT [...]`: drive the shared many-connection
/// pipelined load generator against a running daemon and print one JSON
/// report line (CI's soak smoke parses it).
fn run_soak(args: &[String]) -> Result<(), CliError> {
    use stcfa::server::soak::{run_soak, SoakConfig};

    let mut config = SoakConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                config.addr = it
                    .next()
                    .ok_or_else(|| {
                        CliError::BadValue(format!("--addr needs a value\n{}", usage()))
                    })?
                    .to_owned();
            }
            "--connections" => config.connections = flag_value(&mut it, "--connections")?,
            "--bursts" => config.bursts = flag_value(&mut it, "--bursts")?,
            "--burst" => config.burst = flag_value(&mut it, "--burst")?,
            "--source-file" => {
                let path = it.next().ok_or_else(|| {
                    CliError::BadValue(format!("--source-file needs a value\n{}", usage()))
                })?;
                config.source = std::fs::read_to_string(path)
                    .map_err(|e| CliError::Runtime(format!("--source-file {path}: {e}")))?;
            }
            "--no-warm" => config.warm = false,
            other => {
                return Err(CliError::Usage(format!(
                    "unexpected argument `{other}`\n{}",
                    usage()
                )))
            }
        }
    }
    if config.addr.is_empty() {
        return Err(CliError::Usage("soak needs --addr HOST:PORT".to_owned()));
    }
    if config.connections == 0 || config.bursts == 0 || config.burst == 0 {
        return Err(CliError::BadValue(
            "--connections/--bursts/--burst must be at least 1".to_owned(),
        ));
    }
    let report = run_soak(&config);
    println!("{}", report.to_json_line());
    if report.failed_connections > 0 || report.reordered > 0 {
        return Err(CliError::Runtime(format!(
            "soak failed: {} hung/dead connections, {} reordered responses",
            report.failed_connections, report.reordered
        )));
    }
    Ok(())
}

/// `stcfa client --addr HOST:PORT [--request <json>]`: forward one request
/// (or every stdin line) to a daemon and print the response lines.
fn run_client(args: &[String]) -> Result<(), CliError> {
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::net::TcpStream;

    let mut addr = None;
    let mut request = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                addr = Some(
                    it.next()
                        .ok_or_else(|| {
                            CliError::BadValue(format!("--addr needs a value\n{}", usage()))
                        })?
                        .to_owned(),
                );
            }
            "--request" => {
                request = Some(
                    it.next()
                        .ok_or_else(|| {
                            CliError::BadValue(format!("--request needs a value\n{}", usage()))
                        })?
                        .to_owned(),
                );
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unexpected argument `{other}`\n{}",
                    usage()
                )))
            }
        }
    }
    let addr = addr.ok_or_else(|| CliError::Usage("client needs --addr HOST:PORT".to_owned()))?;
    let stream =
        TcpStream::connect(&addr).map_err(|e| CliError::Runtime(format!("connect {addr}: {e}")))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| CliError::Runtime(e.to_string()))?,
    );
    let mut writer = stream;
    let mut roundtrip = |line: &str| -> Result<(), CliError> {
        writeln!(writer, "{line}").map_err(|e| CliError::Runtime(format!("send: {e}")))?;
        let mut response = String::new();
        let n = reader
            .read_line(&mut response)
            .map_err(|e| CliError::Runtime(format!("recv: {e}")))?;
        if n == 0 {
            return Err(CliError::Runtime("daemon closed the connection".to_owned()));
        }
        print!("{response}");
        Ok(())
    };
    match request {
        Some(line) => roundtrip(&line),
        None => {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line = line.map_err(|e| CliError::Runtime(e.to_string()))?;
                if line.trim().is_empty() {
                    continue;
                }
                roundtrip(&line)?;
            }
            Ok(())
        }
    }
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return Ok(());
    }
    if args.iter().any(|a| a == "--version") {
        println!("stcfa {}", env!("CARGO_PKG_VERSION"));
        return Ok(());
    }
    if args.iter().any(|a| a == "--repl") {
        return Ok(repl()?);
    }
    match args.first().map(String::as_str) {
        Some("lint") => return run_lint(&args[1..]),
        Some("opt") => return run_opt(&args[1..]),
        Some("rule") => return run_rule(&args[1..]),
        Some("serve") => return run_serve(&args[1..]),
        Some("client") => return run_client(&args[1..]),
        Some("soak") => return run_soak(&args[1..]),
        Some("session") => return run_session(&args[1..]),
        _ => {}
    }
    let options = parse_args(&args)?;

    let source = read_source(&options.path)?;
    let program = Program::parse(&source).map_err(|e| e.to_string())?;

    let analysis_options = AnalysisOptions {
        policy: options.policy,
        max_nodes: options.max_nodes,
    };
    // Commands other than pure label queries run on the subtransitive graph.
    let needs_graph = options.commands.iter().any(|c| {
        matches!(
            c,
            Command::Summary
                | Command::Effects
                | Command::KLimited(_)
                | Command::CalledOnce
                | Command::Inline
                | Command::Witness
                | Command::Dot
        )
    });
    let graph = if needs_graph {
        Some(Analysis::run_with(&program, analysis_options).map_err(|e| e.to_string())?)
    } else {
        None
    };

    let needs_engine = options
        .commands
        .iter()
        .any(|c| matches!(c, Command::Labels | Command::CallSites | Command::Summary));
    // `--precision` routes Sub-engine label queries through the tier
    // scheduler; the detector index is built once alongside the freeze.
    let mut scheduler = None;
    let engine = if !needs_engine {
        None
    } else {
        Some(match options.engine {
            EngineKind::Sub => {
                let a =
                    Analysis::run_with(&program, analysis_options).map_err(|e| e.to_string())?;
                let q = QueryEngine::freeze(&a);
                if options.precision {
                    let suspicion = stcfa::precision::SuspicionIndex::build(&a, &q);
                    scheduler = Some(stcfa::precision::PrecisionScheduler::new(
                        suspicion,
                        options.policy,
                        options.precision_budget,
                    ));
                }
                Engine::Sub(q)
            }
            EngineKind::Poly => Engine::Poly(
                PolyAnalysis::run_with(
                    &program,
                    stcfa::core::PolyOptions {
                        base: analysis_options,
                        ..Default::default()
                    },
                )
                .map_err(|e| e.to_string())?,
            ),
            EngineKind::Hybrid => Engine::Hybrid(HybridCfa::run(&program, analysis_options)),
            EngineKind::Cfa0 => Engine::Cfa0(Cfa0::analyze(&program)),
            EngineKind::Sba => Engine::Sba(Sba::analyze(&program)),
            EngineKind::Unify => Engine::Unify(UnifyCfa::analyze(&program)),
        })
    };

    for command in &options.commands {
        match command {
            Command::Summary => {
                let a = graph.as_ref().expect("graph built");
                let s = a.stats();
                println!(
                    "program: {} syntax nodes, {} abstractions, {} application sites",
                    program.size(),
                    program.label_count(),
                    program.app_sites().len()
                );
                println!(
                    "graph:   {} nodes ({} build + {} close), {} edges ({} build + {} close)",
                    s.nodes(),
                    s.build_nodes,
                    s.close_nodes,
                    s.edges(),
                    s.build_edges,
                    s.close_edges
                );
                let engine = engine.as_ref().expect("summary needs the engine");
                println!("engine:  {}", engine.name());
                if let Engine::Sub(q) = engine {
                    let qs = q.query_stats();
                    println!(
                        "queries: {} sccs over {} nodes; {} answered \
                         ({} cache hits, {} misses, {} sweep(s))",
                        q.comp_count(),
                        q.node_count(),
                        qs.queries,
                        qs.summary_hits + qs.demand_hits,
                        qs.demand_misses,
                        qs.sweeps
                    );
                }
            }
            Command::Labels => {
                let engine = engine.as_ref().expect("labels needs the engine");
                let (labels, grade) = match (&scheduler, engine) {
                    (Some(sched), Engine::Sub(q)) => {
                        let (labels, info) = sched.labels_of(&program, q, program.root());
                        (labels, format!("  [{}]", grade_str(info)))
                    }
                    _ => (engine.labels_of(&program, program.root()), String::new()),
                };
                if labels.is_empty() {
                    println!("L(root) = {{}} (the program's value is not a function){grade}");
                } else {
                    let names: Vec<String> =
                        labels.iter().map(|&l| lam_name(&program, l)).collect();
                    println!("L(root) = {{{}}}{grade}", names.join(", "));
                }
            }
            Command::CallSites => {
                let engine = engine.as_ref().expect("call-sites needs the engine");
                println!("call targets per application site ({}):", engine.name());
                for app in program.app_sites() {
                    let ExprKind::App { func, .. } = program.kind(app) else {
                        unreachable!()
                    };
                    let (labels, grade) = match (&scheduler, engine) {
                        (Some(sched), Engine::Sub(q)) => {
                            let (labels, info) = sched.labels_of(&program, q, *func);
                            (labels, format!("  [{}]", grade_str(info)))
                        }
                        _ => (engine.labels_of(&program, *func), String::new()),
                    };
                    let names: Vec<String> =
                        labels.iter().map(|&l| lam_name(&program, l)).collect();
                    println!("  site@{}: {{{}}}{grade}", app.index(), names.join(", "));
                }
            }
            Command::Effects => {
                let a = graph.as_ref().expect("graph built");
                let eff = effects(&program, a);
                println!(
                    "effects: {} of {} occurrences may have side effects",
                    eff.count(),
                    program.size()
                );
                println!(
                    "root {} effectful",
                    if eff.is_effectful(program.root()) {
                        "IS"
                    } else {
                        "is NOT"
                    }
                );
            }
            Command::KLimited(k) => {
                let a = graph.as_ref().expect("graph built");
                let kl = KLimited::run(a, *k);
                println!("{k}-limited call targets:");
                for app in program.app_sites() {
                    let set = kl.call_targets(&program, a, app).expect("app site");
                    match set.as_small() {
                        Some(ls) => {
                            let names: Vec<String> =
                                ls.iter().map(|&l| lam_name(&program, l)).collect();
                            println!("  site@{}: {{{}}}", app.index(), names.join(", "));
                        }
                        None => println!("  site@{}: many", app.index()),
                    }
                }
            }
            Command::CalledOnce => {
                let a = graph.as_ref().expect("graph built");
                let co = CalledOnce::run(&program, a);
                for l in program.all_labels() {
                    let verdict = match co.of(l) {
                        CallSites::None => "never called".to_owned(),
                        CallSites::One(site) => format!("called once (site@{})", site.index()),
                        CallSites::Many => "called from several sites".to_owned(),
                    };
                    println!("  {}: {verdict}", lam_name(&program, l));
                }
            }
            Command::Inline => {
                let mut current = program.clone();
                let mut rounds = 0usize;
                loop {
                    let a = Analysis::run_with(&current, analysis_options)
                        .map_err(|e| e.to_string())?;
                    let cands = find_candidates(&current, &a);
                    let Some(c) = cands.first() else { break };
                    current = inline_once(&current, &a, c.site).map_err(|e| e.to_string())?;
                    rounds += 1;
                    if rounds > 1000 {
                        return Err("inliner did not converge".into());
                    }
                }
                eprintln!("inlined {rounds} call sites");
                println!("{}", current.to_source());
            }
            Command::Types => {
                let typed = TypedProgram::infer(&program).map_err(|e| e.to_string())?;
                let m = TypeMetrics::compute(&program, &typed);
                println!(
                    "types: k_avg = {:.2}, k_max = {}, max order = {}, max arity = {} \
                     (bounded-type class P_{})",
                    m.avg_size, m.max_size, m.max_order, m.max_arity, m.max_size
                );
                // List the top-level binding chain with inferred types.
                let mut cursor = program.root();
                while let ExprKind::Let { binder, body, .. }
                | ExprKind::LetRec { binder, body, .. } = program.kind(cursor)
                {
                    let name = program.var_name(*binder);
                    if !name.starts_with('$') {
                        println!("  {name} : {}", typed.binder_ty(*binder).display(&program));
                    }
                    cursor = *body;
                }
            }
            Command::Boundedness => {
                let b = stcfa::boundedness::measure(&program, 4).map_err(|e| e.to_string())?;
                println!(
                    "boundedness: direct k_max = {} (k_avg {:.2}); after {} let-expansion \
                     round(s): k_max = {} (k_avg {:.2})",
                    b.direct.max_size,
                    b.direct.avg_size,
                    b.rounds,
                    b.mcallester.max_size,
                    b.mcallester.avg_size
                );
                if b.mcallester.max_size > b.direct.max_size {
                    println!(
                        "note: nested polymorphic instantiations deepen the induced \
                         monotypes (paper §5 / McAllester's measure)"
                    );
                }
            }
            Command::Eval => {
                let out = eval(
                    &program,
                    EvalOptions {
                        fuel: options.fuel,
                        inputs: vec![],
                        max_depth: None,
                    },
                )
                .map_err(|e| e.to_string())?;
                for n in &out.outputs {
                    println!("{n}");
                }
                match out.value {
                    Value::Int(n) => println!("=> {n}"),
                    Value::Bool(b) => println!("=> {b}"),
                    Value::Unit => println!("=> ()"),
                    Value::Closure(_) => println!("=> <function>"),
                    Value::Record(_) => println!("=> <record>"),
                    Value::Con { .. } => println!("=> <constructor>"),
                }
            }
            Command::Live => {
                let live = stcfa::cfa0::LiveCfa0::analyze(&program);
                let alive = live.live_exprs().len();
                println!(
                    "liveness: {alive} of {} occurrences reachable ({} dead)",
                    program.size(),
                    program.size() - alive
                );
                let dead_bodies = program
                    .exprs()
                    .filter(|&e| {
                        matches!(program.kind(e), ExprKind::Lam { body, .. } if !live.is_live(*body))
                    })
                    .count();
                println!("functions whose body is never executed: {dead_bodies}");
            }
            Command::Witness => {
                let a = graph.as_ref().expect("graph built");
                let labels = a.labels_of(program.root());
                if labels.is_empty() {
                    println!("L(root) is empty: no witness paths");
                }
                for l in labels {
                    let path = a
                        .witness_path(program.root(), l)
                        .expect("label is in L(root)");
                    println!(
                        "witness for {} ∈ L(root), {} steps:",
                        lam_name(&program, l),
                        path.len() - 1
                    );
                    for (i, &n) in path.iter().enumerate() {
                        let arrow = if i == 0 { "  " } else { "→ " };
                        println!("  {arrow}{}", dot::describe(a, &program, n));
                    }
                }
            }
            Command::Dot => {
                let a = graph.as_ref().expect("graph built");
                print!("{}", dot::render(a, &program));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Runtime(message)) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
        Err(CliError::Usage(message)) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
        Err(CliError::BadValue(message)) => {
            eprintln!("{message}");
            ExitCode::from(3)
        }
    }
}
