//! Facade crate for the subtransitive control-flow-analysis workspace.
//!
//! This crate re-exports every workspace crate under a stable set of module
//! names so that examples, integration tests and downstream users can depend
//! on a single package:
//!
//! - [`lambda`] — the input language: AST, parser, evaluator.
//! - [`types`] — Hindley–Milner inference and type-boundedness metrics.
//! - [`graph`] — the directed-graph substrate (reachability, SCC, closure).
//! - [`cfa0`] — the standard cubic-time CFA baseline and the DTC system.
//! - [`sba`] — monovariant set-based analysis (the paper's benchmark baseline).
//! - [`unify`] — equality-based (almost-linear, less accurate) CFA.
//! - [`core`] — **the paper's contribution**: the linear-time subtransitive
//!   control-flow graph and its queries.
//! - [`apps`] — linear-time CFA-consuming applications (effects, k-limited,
//!   called-once, inlining).
//! - [`opt`] — the flow-directed optimizer backend: lowering passes
//!   (dead-application elision, called-once inlining, useless-parameter
//!   pruning, known-call specialization) driven by the frozen engine,
//!   with the evaluator as differential oracle (`stcfa opt`).
//! - [`rules`] — the Datalog-flavoured rule layer: declarative programs
//!   over zero-copy views of the frozen engine, evaluated semi-naively
//!   at the same `O(E·L/64)` arithmetic (`stcfa rule`,
//!   `stcfa lint --explain`).
//! - [`precision`] — the adaptive precision scheduler: degradation
//!   detector, demand cones, and tiered escalation (subtransitive →
//!   polyvariant → cone-restricted cubic) with per-answer grades
//!   (`stcfa --precision`, protocol-v2 `"precision"`).
//! - [`server`] — the long-running analysis daemon with its
//!   content-addressed snapshot cache (`stcfa serve`).
//! - [`session`] — multi-file analysis sessions: named modules, the
//!   import/link graph, and the incremental linker (`stcfa session`).
//! - [`persist`] — the on-disk snapshot format behind the daemon's
//!   `--cache-dir` tier (warm restarts without rebuilding).
//! - [`workloads`] — benchmark and test program generators.
//!
//! # Quickstart
//!
//! ```
//! use stcfa::lambda::Program;
//! use stcfa::core::Analysis;
//!
//! let program = Program::parse("(fn x => x x) (fn y => y)").unwrap();
//! let analysis = Analysis::run(&program).unwrap();
//! // The whole program evaluates to the abstraction labelled by `fn y => y`.
//! let root = program.root();
//! let labels = analysis.labels_of(root);
//! assert_eq!(labels.len(), 1);
//! ```

pub mod boundedness;

pub use stcfa_apps as apps;
pub use stcfa_cfa0 as cfa0;
pub use stcfa_core as core;
pub use stcfa_graph as graph;
pub use stcfa_lambda as lambda;
pub use stcfa_lint as lint;
pub use stcfa_opt as opt;
pub use stcfa_persist as persist;
pub use stcfa_precision as precision;
pub use stcfa_rules as rules;
pub use stcfa_sba as sba;
pub use stcfa_server as server;
pub use stcfa_session as session;
pub use stcfa_types as types;
pub use stcfa_unify as unify;
pub use stcfa_workloads as workloads;
