//! Bounded-type classification for polymorphic programs (paper, Section 5).
//!
//! For monotyped programs, `P_k` membership is just "every occurrence's
//! type tree has size ≤ k". For ML-polymorphic programs the paper adopts
//! McAllester's definition: the program is k-bounded if the *monotypes of
//! its let-expansion* are bounded by `k` — and notes it is **not**
//! equivalent to Henglein's small-polytypes definition (footnote: a
//! program family whose polytypes stay small but whose let-expanded
//! monotypes grow).
//!
//! This module measures both views:
//!
//! - the *direct* metrics — monotypes of the original program's
//!   occurrences, where each use of a polymorphic binder contributes its
//!   instantiation (one level of the expansion);
//! - the *McAllester* metrics — the same measurement after explicitly
//!   let-expanding the program [`stcfa_core::expand`] a given number of
//!   rounds, which exposes the monotypes of nested instantiations.

use crate::core::expand::{expandable_binders, let_expand};
use crate::lambda::Program;
use crate::types::{TypeError, TypeMetrics, TypedProgram};

/// The two boundedness measurements.
#[derive(Clone, Copy, Debug)]
pub struct Boundedness {
    /// Metrics over the original program's occurrence monotypes.
    pub direct: TypeMetrics,
    /// Metrics over the let-expanded program's occurrence monotypes
    /// (McAllester's measure, paper Section 5).
    pub mcallester: TypeMetrics,
    /// How many expansion rounds were applied before the expansion reached
    /// a fixed point (or the round limit).
    pub rounds: usize,
}

impl Boundedness {
    /// Whether the program is in `P_k` in McAllester's sense for the
    /// measured expansion depth.
    pub fn is_k_bounded(&self, k: usize) -> bool {
        self.mcallester.max_size <= k
    }
}

/// Measures both boundedness views. `max_rounds` bounds the explicit
/// expansion (each round expands every multiply-used `let`-bound function
/// once; nested polymorphism needs several rounds to surface).
pub fn measure(program: &Program, max_rounds: usize) -> Result<Boundedness, TypeError> {
    let typed = TypedProgram::infer(program)?;
    let direct = TypeMetrics::compute(program, &typed);

    let mut current = program.clone();
    let mut rounds = 0usize;
    for _ in 0..max_rounds {
        let targets = expandable_binders(&current, 2);
        if targets.is_empty() {
            break;
        }
        let before = current.size();
        current = let_expand(&current, &targets).program;
        rounds += 1;
        if current.size() == before {
            break;
        }
    }
    let typed_exp = TypedProgram::infer(&current)?;
    let mcallester = TypeMetrics::compute(&current, &typed_exp);
    Ok(Boundedness {
        direct,
        mcallester,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section5_id_tower_induces_growing_monotypes() {
        // The paper's Section 5 example: "fun id x = x; val y = ((id id) id) 1"
        // induces monotypes int→int, (int→int)→(int→int), and
        // ((int→int)→(int→int))→((int→int)→(int→int)) for id.
        let p = Program::parse("fun id x = x; val y = ((id id) id) 1; y").unwrap();
        let b = measure(&p, 4).unwrap();
        // Sizes 3, 7, 15 appear among occurrence monotypes even directly.
        assert!(b.direct.max_size >= 15, "direct max {}", b.direct.max_size);
        assert!(b.mcallester.max_size >= 15);
        assert!(b.is_k_bounded(15));
        assert!(!b.is_k_bounded(14));
    }

    #[test]
    fn monomorphic_programs_are_unchanged_by_expansion() {
        let p =
            Program::parse("fun fact n = if n = 0 then 1 else n * fact (n - 1); fact 5").unwrap();
        let b = measure(&p, 4).unwrap();
        assert_eq!(b.direct.max_size, b.mcallester.max_size);
    }

    #[test]
    fn the_cubic_family_is_mcallester_bounded() {
        let p = crate::workloads::cubic::program(6);
        let small = measure(&p, 2).unwrap();
        let p2 = crate::workloads::cubic::program(12);
        let large = measure(&p2, 2).unwrap();
        assert_eq!(
            small.mcallester.max_size, large.mcallester.max_size,
            "the family's bound is independent of n"
        );
    }

    #[test]
    fn expansion_can_reveal_larger_monotypes() {
        // A polymorphic function whose body uses another polymorphic
        // function: the inner instantiations surface during expansion.
        let p = Program::parse(
            "fun id x = x;\n\
             fun pair x = (id x, id 1);\n\
             (pair true, pair (fn w => w))",
        )
        .unwrap();
        let b = measure(&p, 3).unwrap();
        assert!(b.mcallester.max_size >= b.direct.max_size);
        assert!(b.rounds >= 1);
    }
}
