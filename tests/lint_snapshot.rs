//! Snapshot of the lint report over the checked-in corpus: a pinned
//! digest of the machine-readable JSON output for every `corpus/*.ml`
//! file. Any rule change — new findings, reworded messages, span shifts —
//! must show up here as a reviewed digest change, never silently.
//! (`scripts/ci.sh` re-computes the same digest through the CLI.)

use stcfa::core::{Analysis, QueryEngine};
use stcfa::lambda::Program;
use stcfa::lint::{lint, render_json, LintOptions};

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn corpus_files() -> Vec<std::path::PathBuf> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "ml"))
        .collect();
    files.sort();
    files
}

fn report_for(file: &std::path::Path) -> String {
    let src = std::fs::read_to_string(file).expect("readable");
    let p = Program::parse(&src).unwrap_or_else(|e| panic!("{}: {e}", file.display()));
    let a = Analysis::run(&p).unwrap_or_else(|e| panic!("{}: {e}", file.display()));
    let engine = QueryEngine::freeze(&a);
    render_json(&lint(&p, &a, &engine, &LintOptions { threads: 1 }))
}

fn corpus_digest() -> u64 {
    let mut bytes = Vec::new();
    for file in corpus_files() {
        let name = file
            .file_name()
            .expect("file name")
            .to_string_lossy()
            .into_owned();
        bytes.extend_from_slice(name.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(report_for(&file).as_bytes());
    }
    fnv1a(&bytes)
}

#[test]
fn corpus_lint_report_is_pinned() {
    let got = corpus_digest();
    let want: u64 = 0xaf1d_294b_46e8_5d4f;
    assert_eq!(
        got, want,
        "corpus lint report shifted: digest {got:#018x}, pinned {want:#018x}. \
         If the rule change is intentional, re-pin via `cargo test --test \
         lint_snapshot -- --ignored --nocapture` and review the new report."
    );
}

/// Print-on-demand helper for re-pinning: `cargo test --test lint_snapshot
/// -- --ignored --nocapture` prints the per-file reports and the combined
/// digest.
#[test]
#[ignore = "utility for regenerating the pinned digest above"]
fn print_current_reports() {
    for file in corpus_files() {
        println!("=== {}", file.display());
        print!("{}", report_for(&file));
    }
    println!("combined digest: {:#018x}", corpus_digest());
}
