//! Differential property tests: on randomly generated well-typed programs,
//! every analysis in the workspace must relate to the standard cubic CFA
//! exactly as the paper claims.
//!
//! - subtransitive reachability ≡ standard CFA (Propositions 1–2);
//! - set-based analysis ≡ standard CFA (it generalizes it, and coincides
//!   on this language);
//! - DTC ≡ standard CFA on the lambda fragment;
//! - equality-based CFA over-approximates standard CFA;
//! - polyvariant subtransitive refines monovariant but never unsoundly.

use stcfa::cfa0::{Cfa0, Dtc};
use stcfa::core::{Analysis, PolyAnalysis};
use stcfa::sba::Sba;
use stcfa::unify::UnifyCfa;
use stcfa::workloads::synth::{generate, SynthConfig};
use stcfa_devkit::prelude::*;

fn program_for(seed: u64, full_language: bool) -> stcfa::lambda::Program {
    generate(&SynthConfig {
        seed,
        target_size: 160,
        max_type_depth: 2,
        effect_prob: 0.05,
        max_tuple_width: if full_language { 3 } else { 0 },
        // The generated datatype is non-recursive, so the Exact policy
        // terminates and full differential equality applies.
        datatypes: full_language,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn subtransitive_equals_standard_cfa(seed in any::<u64>()) {
        let p = program_for(seed, true);
        // Exact datatype policy: the generated datatype is non-recursive,
        // so the exact de-constructor nodes terminate and the closure must
        // coincide with standard CFA everywhere.
        let a = Analysis::run_with(
            &p,
            stcfa::core::AnalysisOptions {
                policy: stcfa::core::DatatypePolicy::Exact,
                max_nodes: None,
            },
        )
        .expect("generated programs are bounded-type");
        // The close phase must have reached its fixpoint: every primed
        // closure rule saturated.
        a.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("seed {seed}: {e}"))
        })?;
        let cfa = Cfa0::analyze(&p);
        for e in p.exprs() {
            prop_assert_eq!(a.labels_of(e), cfa.labels(&p, e), "at {:?} (seed {})", e, seed);
        }
        for v in p.vars() {
            prop_assert_eq!(a.labels_of_binder(v), cfa.var_labels(&p, v));
        }
    }

    #[test]
    fn sba_equals_standard_cfa(seed in any::<u64>()) {
        let p = program_for(seed, true);
        let sba = Sba::analyze(&p);
        let cfa = Cfa0::analyze(&p);
        for e in p.exprs() {
            prop_assert_eq!(sba.labels(&p, e), cfa.labels(&p, e), "at {:?} (seed {})", e, seed);
        }
    }

    #[test]
    fn dtc_equals_standard_cfa_on_lambda_fragment(seed in any::<u64>()) {
        let p = program_for(seed, false);
        let dtc = Dtc::analyze(&p).expect("no records generated");
        let cfa = Cfa0::analyze(&p);
        for e in p.exprs() {
            prop_assert_eq!(dtc.labels(e), cfa.labels(&p, e), "at {:?} (seed {})", e, seed);
        }
    }

    #[test]
    fn unification_over_approximates(seed in any::<u64>()) {
        let p = program_for(seed, true);
        let uni = UnifyCfa::analyze(&p);
        let cfa = Cfa0::analyze(&p);
        for e in p.exprs() {
            let coarse = uni.labels(e);
            for l in cfa.labels(&p, e) {
                prop_assert!(
                    coarse.contains(&l),
                    "equality-based lost {:?} at {:?} (seed {})", l, e, seed
                );
            }
        }
    }

    #[test]
    fn polyvariance_refines_soundly(seed in any::<u64>()) {
        let p = program_for(seed, true);
        let mono = Analysis::run(&p).expect("bounded");
        let poly = PolyAnalysis::run(&p).expect("bounded");
        for e in p.exprs() {
            let m = mono.labels_of(e);
            for l in poly.labels_of(e) {
                prop_assert!(
                    m.contains(&l),
                    "poly invented {:?} at {:?} (seed {})", l, e, seed
                );
            }
        }
    }

    #[test]
    fn hybrid_always_answers(seed in any::<u64>()) {
        let p = program_for(seed, true);
        let h = stcfa::core::hybrid::HybridCfa::run(
            &p,
            stcfa::core::AnalysisOptions {
                policy: stcfa::core::DatatypePolicy::Exact,
                max_nodes: None,
            },
        );
        let cfa = Cfa0::analyze(&p);
        for e in p.exprs() {
            prop_assert_eq!(h.labels_of(&p, e), cfa.labels(&p, e));
        }
    }

    /// Under the default ≈₁ congruence, datatype programs must stay sound
    /// (never below standard CFA).
    #[test]
    fn congruence1_is_sound_on_random_datatype_programs(seed in any::<u64>()) {
        let p = program_for(seed, true);
        let a = Analysis::run(&p).expect("bounded");
        let cfa = Cfa0::analyze(&p);
        for e in p.exprs() {
            let got = a.labels_of(e);
            for l in cfa.labels(&p, e) {
                prop_assert!(got.contains(&l), "≈₁ lost {:?} at {:?} (seed {})", l, e, seed);
            }
        }
    }
}
