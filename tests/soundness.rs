//! Dynamic soundness: whatever actually happens when a program runs must
//! have been predicted by every static analysis.
//!
//! The evaluator records, for every application that fires, the label of
//! the applied closure at the operator occurrence — the definition of CFA
//! soundness specialized to call-by-value executions (which are a subset
//! of the arbitrary-order β-reductions the paper quantifies over).
//!
//! Each property lives in a named `check_*` function taking the generator
//! seed, so the randomized suite and the pinned regression cases below run
//! the exact same bodies.

use stcfa::apps::effects;
use stcfa::cfa0::Cfa0;
use stcfa::core::{Analysis, PolyAnalysis};
use stcfa::lambda::eval::{eval, EvalOptions};
use stcfa::unify::UnifyCfa;
use stcfa::workloads::synth::{generate, SynthConfig};
use stcfa_devkit::prelude::*;

fn program_for(seed: u64) -> stcfa::lambda::Program {
    generate(&SynthConfig {
        seed,
        target_size: 140,
        max_type_depth: 2,
        effect_prob: 0.15,
        max_tuple_width: 3,
        datatypes: true,
    })
}

fn check_every_dynamic_call_is_predicted(seed: u64) -> TestCaseResult {
    let p = program_for(seed);
    let out = eval(
        &p,
        EvalOptions {
            fuel: 2_000_000,
            inputs: vec![],
            max_depth: None,
        },
    )
    .expect("generated programs terminate");

    let cfa = Cfa0::analyze(&p);
    let sub = Analysis::run(&p).expect("bounded");
    let poly = PolyAnalysis::run(&p).expect("bounded");
    let uni = UnifyCfa::analyze(&p);

    for (func_occ, label) in &out.trace.calls {
        prop_assert!(
            cfa.labels(&p, *func_occ).contains(label),
            "cubic CFA missed dynamic call of {:?} at {:?} (seed {})",
            label,
            func_occ,
            seed
        );
        prop_assert!(
            sub.labels_of(*func_occ).contains(label),
            "subtransitive missed dynamic call of {:?} at {:?} (seed {})",
            label,
            func_occ,
            seed
        );
        prop_assert!(
            poly.labels_of(*func_occ).contains(label),
            "polyvariant missed dynamic call of {:?} at {:?} (seed {})",
            label,
            func_occ,
            seed
        );
        prop_assert!(
            uni.labels(*func_occ).contains(label),
            "unification missed dynamic call of {:?} at {:?} (seed {})",
            label,
            func_occ,
            seed
        );
    }

    // The final value, if a closure, must be predicted at the root.
    if let Some(l) = out.value.label() {
        prop_assert!(sub.labels_of(p.root()).contains(&l));
        prop_assert!(poly.labels_of(p.root()).contains(&l));
    }
    Ok(())
}

fn check_every_dynamic_effect_is_predicted(seed: u64) -> TestCaseResult {
    let p = program_for(seed);
    let out = eval(
        &p,
        EvalOptions {
            fuel: 2_000_000,
            inputs: vec![],
            max_depth: None,
        },
    )
    .expect("terminates");
    let sub = Analysis::run(&p).expect("bounded");
    let eff = effects(&p, &sub);
    for at in &out.trace.effects {
        prop_assert!(
            eff.is_effectful(*at),
            "static effects analysis missed runtime effect at {:?} (seed {})",
            at,
            seed
        );
    }
    // Purity claims must also hold up: a program whose root is not
    // flagged may not print.
    if !eff.is_effectful(p.root()) {
        prop_assert!(
            out.outputs.is_empty(),
            "unflagged program printed (seed {seed})"
        );
    }
    Ok(())
}

fn check_klimited_matches_truncation(seed: u64) -> TestCaseResult {
    let p = program_for(seed);
    let sub = Analysis::run(&p).expect("bounded");
    for k in 1..=3usize {
        let kl = stcfa::apps::KLimited::run(&sub, k);
        for e in p.exprs() {
            let full = sub.labels_of(e);
            let got = kl.of_expr(&sub, e);
            if full.len() <= k {
                prop_assert_eq!(got.as_small(), Some(full.as_slice()));
            } else {
                prop_assert!(got.is_many());
            }
        }
    }
    Ok(())
}

fn check_called_once_matches_reference(seed: u64) -> TestCaseResult {
    let p = program_for(seed);
    let sub = Analysis::run(&p).expect("bounded");
    let fast = stcfa::apps::CalledOnce::run(&p, &sub);
    let slow = stcfa::apps::CalledOnce::via_queries(&p, &sub);
    for l in p.all_labels() {
        prop_assert_eq!(fast.of(l), slow.of(l), "label {:?} (seed {})", l, seed);
    }
    Ok(())
}

/// The reachability-aware analysis must mark every occurrence the
/// evaluator actually touched as live, predict every fired call, and
/// never exceed the standard analysis's sets.
fn check_liveness_is_sound_and_precise(seed: u64) -> TestCaseResult {
    let p = program_for(seed);
    let out = eval(
        &p,
        EvalOptions {
            fuel: 2_000_000,
            inputs: vec![],
            max_depth: None,
        },
    )
    .expect("terminates");
    let live = stcfa::cfa0::LiveCfa0::analyze(&p);
    let full = Cfa0::analyze(&p);
    for e in &out.trace.evaluated {
        prop_assert!(
            live.is_live(*e),
            "evaluated occurrence {:?} not marked live (seed {})",
            e,
            seed
        );
    }
    for (func_occ, label) in &out.trace.calls {
        prop_assert!(
            live.labels(&p, *func_occ).contains(label),
            "live analysis missed dynamic call of {:?} (seed {})",
            label,
            seed
        );
    }
    for e in p.exprs() {
        let l = live.labels(&p, e);
        let f = full.labels(&p, e);
        for lab in &l {
            prop_assert!(f.contains(lab), "live invented {:?} (seed {})", lab, seed);
        }
    }
    Ok(())
}

fn check_effects_colouring_matches_reference(seed: u64) -> TestCaseResult {
    let p = program_for(seed);
    // Exact datatype policy so the graph's precision matches the cubic
    // reference's — only then is per-occurrence *equality* the right
    // property. (Under ≈₁ the colouring soundly over-approximates when
    // effectful closures are stored in datatypes; that direction is
    // covered by `every_dynamic_effect_is_predicted`.)
    let sub = Analysis::run_with(
        &p,
        stcfa::core::AnalysisOptions {
            policy: stcfa::core::DatatypePolicy::Exact,
            max_nodes: None,
        },
    )
    .expect("bounded");
    let fast = effects(&p, &sub);
    let cfa = Cfa0::analyze(&p);
    let slow = stcfa::apps::effects_via_cfa0(&p, &cfa);
    for e in p.exprs() {
        prop_assert_eq!(
            fast.is_effectful(e),
            slow.is_effectful(e),
            "at {:?} (seed {})",
            e,
            seed
        );
    }
    Ok(())
}

/// Under the default ≈₁ congruence the colouring may only err on the
/// safe side relative to the exact reference.
fn check_effects_colouring_is_sound_under_congruence(seed: u64) -> TestCaseResult {
    let p = program_for(seed);
    let sub = Analysis::run(&p).expect("bounded");
    let fast = effects(&p, &sub);
    let cfa = Cfa0::analyze(&p);
    let slow = stcfa::apps::effects_via_cfa0(&p, &cfa);
    for e in p.exprs() {
        if slow.is_effectful(e) {
            prop_assert!(
                fast.is_effectful(e),
                "colouring under ≈₁ missed an effect at {:?} (seed {})",
                e,
                seed
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_dynamic_call_is_predicted(seed in any::<u64>()) {
        check_every_dynamic_call_is_predicted(seed)?;
    }

    #[test]
    fn every_dynamic_effect_is_predicted(seed in any::<u64>()) {
        check_every_dynamic_effect_is_predicted(seed)?;
    }

    #[test]
    fn klimited_matches_truncation(seed in any::<u64>()) {
        check_klimited_matches_truncation(seed)?;
    }

    #[test]
    fn called_once_matches_reference(seed in any::<u64>()) {
        check_called_once_matches_reference(seed)?;
    }

    #[test]
    fn liveness_is_sound_and_precise(seed in any::<u64>()) {
        check_liveness_is_sound_and_precise(seed)?;
    }

    #[test]
    fn effects_colouring_matches_reference(seed in any::<u64>()) {
        check_effects_colouring_matches_reference(seed)?;
    }

    #[test]
    fn effects_colouring_is_sound_under_congruence(seed in any::<u64>()) {
        check_effects_colouring_is_sound_under_congruence(seed)?;
    }
}

/// Historical proptest shrink result (from the deleted
/// `tests/soundness.proptest-regressions`, entry `2ea654d1…`): generator
/// seed `719479625630613312` once broke this suite. Pinned as an explicit
/// always-run case so the failure keeps being exercised forever, across
/// test-harness migrations.
#[test]
fn regression_seed_719479625630613312() {
    const SEED: u64 = 719479625630613312;
    check_every_dynamic_call_is_predicted(SEED).unwrap();
    check_every_dynamic_effect_is_predicted(SEED).unwrap();
    check_klimited_matches_truncation(SEED).unwrap();
    check_called_once_matches_reference(SEED).unwrap();
    check_liveness_is_sound_and_precise(SEED).unwrap();
    check_effects_colouring_matches_reference(SEED).unwrap();
    check_effects_colouring_is_sound_under_congruence(SEED).unwrap();
}
