//! Corpus-wide differential suite for the flow-directed optimizer.
//!
//! Three properties, checked on every corpus program under **every**
//! pass combination and on a pool of generated well-typed programs:
//!
//! - **agreement** — the optimized program and the original evaluate to
//!   structurally equal results with identical outputs (or the original
//!   exhausts its fuel/depth budget, which licenses anything);
//! - **monotone findings** — re-analyzing the optimized program yields
//!   no new warning- or error-severity `STCFA001`–`STCFA008` findings
//!   per code: the optimizer must consume problems, never manufacture
//!   them. Info-severity advisories (`STCFA003` called-once, `STCFA008`
//!   dominated-redundant) are exempt by design: eliding a dead call site
//!   legitimately *creates* inlining opportunities at the surviving
//!   sites (`dead_code.ml` demonstrates this — removing `(spin 0) 3`
//!   leaves `spin` called from exactly one place);
//! - **shrinkage** — no rewrite ever grows the program, and at least one
//!   corpus program gets strictly smaller under the default pipeline.
//!
//! Thread sensitivity rides on `STCFA_QUERY_THREADS` (ci runs the suite
//! at 1, 2, and 8): evidence batching must not change any decision.

use stcfa::core::{Analysis, QueryEngine};
use stcfa::lambda::eval::EvalOptions;
use stcfa::lambda::Program;
use stcfa::lint::{lint, LintOptions, RuleCode};
use stcfa::opt::{optimize, oracle, OptOptions, Pass, PassSet};
use stcfa::workloads::synth::{generate, SynthConfig};
use stcfa_devkit::prelude::*;

fn threads() -> usize {
    std::env::var("STCFA_QUERY_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn corpus() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("corpus directory exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "ml") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.push((name, std::fs::read_to_string(&path).unwrap()));
        }
    }
    assert!(out.len() >= 5, "corpus should not shrink silently");
    out.sort();
    out
}

fn eval_options() -> EvalOptions {
    EvalOptions {
        fuel: 5_000_000,
        inputs: vec![],
        max_depth: Some(100_000),
    }
}

fn opt_options(passes: PassSet) -> OptOptions {
    OptOptions {
        passes,
        threads: threads(),
        ..OptOptions::default()
    }
}

/// Per-code finding counts from a fresh analysis of `p`.
fn finding_counts(p: &Program) -> [usize; 8] {
    let a = Analysis::run(p).expect("analyzes");
    let e = QueryEngine::freeze(&a);
    let diags = lint(p, &a, &e, &LintOptions { threads: threads() });
    let mut out = [0usize; 8];
    for d in diags {
        let i = RuleCode::all()
            .iter()
            .position(|c| *c == d.code)
            .expect("known code");
        out[i] += 1;
    }
    out
}

fn assert_monotone(name: &str, before: &[usize; 8], after: &[usize; 8]) {
    for (i, code) in RuleCode::all().iter().enumerate() {
        if code.severity() == stcfa::lint::Severity::Info {
            continue; // advisories may be created by dead-code removal
        }
        assert!(
            after[i] <= before[i],
            "{name}: optimization created new {code} findings ({} -> {})",
            before[i],
            after[i]
        );
    }
}

/// All 16 subsets of the four passes.
fn all_pass_sets() -> Vec<PassSet> {
    let all = Pass::all();
    (0u32..16)
        .map(|mask| {
            all.iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .fold(PassSet::empty(), |s, (_, &p)| s.with(p))
        })
        .collect()
}

#[test]
fn corpus_agrees_under_every_pass_combination() {
    let eval_opts = eval_options();
    for (name, src) in corpus() {
        let p = Program::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let before = finding_counts(&p);
        for passes in all_pass_sets() {
            let out = optimize(&p, &opt_options(passes))
                .unwrap_or_else(|e| panic!("{name} ({passes:?}): {e}"));
            oracle::check(&p, &out.program, &eval_opts)
                .unwrap_or_else(|e| panic!("{name} ({passes:?}): oracle disagreement: {e}"));
            assert!(
                out.program.size() <= p.size(),
                "{name} ({passes:?}): optimization grew the program"
            );
            let after = finding_counts(&out.program);
            assert_monotone(&name, &before, &after);
        }
    }
}

#[test]
fn default_pipeline_shrinks_dead_code() {
    let mut any_shrank = false;
    for (name, src) in corpus() {
        let p = Program::parse(&src).unwrap();
        let out = optimize(&p, &opt_options(PassSet::all())).unwrap();
        if out.program.size() < p.size() {
            any_shrank = true;
        }
        if name == "dead_code.ml" {
            assert!(
                out.program.size() < p.size(),
                "dead_code.ml must shrink under the default pipeline"
            );
        }
    }
    assert!(any_shrank, "no corpus program shrank under default passes");
}

#[test]
fn optimizing_twice_is_idempotent() {
    for (name, src) in corpus() {
        let p = Program::parse(&src).unwrap();
        let once = optimize(&p, &opt_options(PassSet::all())).unwrap();
        let twice = optimize(&once.program, &opt_options(PassSet::all())).unwrap();
        assert_eq!(
            twice.report.performed_total(),
            0,
            "{name}: second run still rewrites"
        );
        assert_eq!(twice.program.size(), once.program.size());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn synth_programs_agree_after_optimization(seed in any::<u64>()) {
        let p = generate(&SynthConfig {
            seed,
            target_size: 200,
            max_type_depth: 2,
            effect_prob: 0.1,
            max_tuple_width: 3,
            datatypes: true,
        });
        let before = finding_counts(&p);
        let out = optimize(&p, &opt_options(PassSet::all())).expect("optimizes");
        let verdict = oracle::check(&p, &out.program, &eval_options());
        prop_assert!(verdict.is_ok(), "seed {}: oracle disagreement: {:?}", seed, verdict);
        prop_assert!(out.program.size() <= p.size(), "seed {}: program grew", seed);
        let after = finding_counts(&out.program);
        for (i, code) in RuleCode::all().iter().enumerate() {
            if code.severity() == stcfa::lint::Severity::Info {
                continue;
            }
            prop_assert!(
                after[i] <= before[i],
                "seed {}: optimization created new {} findings ({} -> {})",
                seed, code, before[i], after[i]
            );
        }
    }
}
