//! Differential session tests: linking a program as a multi-module
//! session must be **node-for-node** equal to whole-program analysis of
//! the concatenation — same arena size, same subtransitive node count,
//! same label set at every expression and binder. The tests quantify
//! over seeded synthetic module sets, arbitrary top-level splits of the
//! corpus programs, and query-engine worker counts 1/2/8.

use stcfa::core::{AnalysisOptions, Answer, Query};
use stcfa::session::{split, Workspace};
use stcfa::workloads::modules::{concatenated, module_sources, ModulesConfig};
use stcfa_devkit::prelude::*;
use stcfa_devkit::prng::Rng;

fn options() -> AnalysisOptions {
    AnalysisOptions::default()
}

fn linked(modules: &[(String, String)]) -> Workspace {
    let mut ws = Workspace::new(options());
    for (name, source) in modules {
        ws.upsert(name, source);
    }
    if let Err(e) = ws.link() {
        panic!("link failed in `{}`: {e}", e.module());
    }
    ws
}

/// The split workspace and the whole-program workspace must agree on
/// every node: arena size, analysis node count, and the label set of
/// every expression and every binder.
fn assert_node_for_node(split_ws: &Workspace, whole_ws: &Workspace, context: &str) {
    let (split_snap, whole_snap) = (
        split_ws.freeze().expect("split workspace is linked"),
        whole_ws.freeze().expect("whole workspace is linked"),
    );
    assert_eq!(
        split_snap.program().size(),
        whole_snap.program().size(),
        "{context}: arena size diverged"
    );
    assert_eq!(
        split_snap.analysis().node_count(),
        whole_snap.analysis().node_count(),
        "{context}: subtransitive node count diverged"
    );
    let (se, we) = (
        split_snap.engine(split_ws).unwrap(),
        whole_snap.engine(whole_ws).unwrap(),
    );
    for e in split_snap.program().exprs() {
        assert_eq!(
            se.labels_of(e),
            we.labels_of(e),
            "{context}: labels diverged at {e:?}"
        );
    }
    for v in split_snap.program().vars() {
        assert_eq!(
            se.labels_of_binder(v),
            we.labels_of_binder(v),
            "{context}: binder labels diverged at {v:?}"
        );
    }
    // Both sides must also agree with a from-scratch monolithic parse on
    // the program's observable value (arena ids differ — the session
    // arena carries link scaffolding — so compare the label-set size at
    // the default value against the root of a fresh `Program::parse`).
    let whole_src: String = whole_ws.modules().iter().map(|m| m.source()).collect();
    let mono = stcfa::lambda::Program::parse(&whole_src).expect("whole program parses");
    let mono_a = stcfa::core::Analysis::run_with(&mono, options()).expect("bounded");
    if let Some(value) = split_snap.report().default_value() {
        assert_eq!(
            se.labels_of(value).len(),
            mono_a.labels_of(mono.root()).len(),
            "{context}: session value disagrees with monolithic parse"
        );
    }
}

fn sources_for(seed: u64) -> Vec<(String, String)> {
    module_sources(&ModulesConfig {
        seed,
        modules: 2 + (seed % 5) as usize,
        decls_per_module: 3 + (seed / 5 % 6) as usize,
        cross_module_prob: 0.6,
        datatypes: true,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline differential: a generated multi-module program,
    /// linked module by module, is node-for-node the whole-program
    /// analysis of its concatenation.
    #[test]
    fn session_link_equals_whole_program_analysis(seed in any::<u64>()) {
        let sources = sources_for(seed);
        let whole = concatenated(&sources);
        let split_ws = linked(&sources);
        let whole_ws = linked(&[("whole".to_string(), whole)]);
        assert_node_for_node(&split_ws, &whole_ws, &format!("seed {seed}"));
    }

    /// Frozen-engine batches over the session-linked program answer
    /// byte-identically at 1, 2 and 8 workers.
    #[test]
    fn session_engine_batches_are_thread_count_independent(seed in any::<u64>()) {
        let sources = sources_for(seed);
        let ws = linked(&sources);
        let snap = ws.freeze().unwrap();
        let engine = snap.engine(&ws).unwrap();
        let mut queries: Vec<Query> =
            snap.program().exprs().map(Query::LabelsOf).collect();
        queries.extend(snap.program().vars().map(Query::LabelsOfBinder));
        let reference: Vec<Answer> = engine.batch(&queries, 1);
        for threads in [2usize, 8] {
            prop_assert_eq!(
                &engine.batch(&queries, threads),
                &reference,
                "batch diverged at {} workers (seed {})",
                threads,
                seed
            );
        }
    }
}

/// Every corpus program, split at a random subset of its top-level
/// boundaries, must link to the same analysis as the unsplit program —
/// for several random boundary subsets per file.
#[test]
fn corpus_splits_at_arbitrary_boundaries_match_whole_program() {
    let mut checked = 0usize;
    for entry in std::fs::read_dir("corpus").expect("corpus/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("ml") {
            continue;
        }
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&path).unwrap();
        let boundaries =
            split::top_level_boundaries(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let whole_ws = linked(&[(name.clone(), source.clone())]);
        for round in 0..4u64 {
            let mut rng = Rng::seed_from_u64(round.wrapping_mul(0x9e3779b9) ^ checked as u64);
            let cuts: Vec<usize> = boundaries
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(0.5))
                .collect();
            let fragments = split::split_at(&source, &cuts);
            let modules: Vec<(String, String)> = fragments
                .into_iter()
                .enumerate()
                .map(|(i, f)| (format!("{name}.{i}"), f))
                .collect();
            let split_ws = linked(&modules);
            assert_node_for_node(
                &split_ws,
                &whole_ws,
                &format!("{name} round {round} ({} cuts)", cuts.len()),
            );
        }
        checked += 1;
    }
    assert!(checked >= 5, "corpus/ should hold the paper programs");
}

/// The hot-reload contract: re-linking after editing one module reuses
/// every unchanged module's graph verbatim — same `generation`, flagged
/// `reused` — across a whole edit loop, not just one edit.
#[test]
fn edit_loop_reuses_unchanged_module_generations() {
    let sources = sources_for(11);
    assert!(sources.len() >= 3, "want a real prefix to preserve");
    let mut ws = linked(&sources);
    let baseline = ws.report().unwrap().clone();
    let last = sources.len() - 1;
    let (last_name, last_source) = (&sources[last].0, &sources[last].1);
    for round in 1..=5usize {
        // Prepend a declaration so the trailing value expression stays
        // last and the module still parses.
        let edited = format!("fun extra{round} x = x;\n{last_source}");
        assert!(ws.upsert(last_name, &edited));
        let report = ws.link().unwrap();
        assert_eq!(report.reused, last, "round {round}");
        assert_eq!(report.relinked, 1, "round {round}");
        for i in 0..last {
            assert!(report.modules[i].reused, "round {round}, module {i}");
            assert_eq!(
                report.modules[i].generation, baseline.modules[i].generation,
                "round {round}: unchanged module {i} must keep its generation"
            );
        }
        assert!(!report.modules[last].reused, "round {round}");
    }
    // Editing the first module invalidates every checkpoint after it.
    let edited = format!("{}\nfun tail0 x = x;\n", sources[0].1);
    assert!(ws.upsert(&sources[0].0, &edited));
    let report = ws.link().unwrap();
    assert_eq!(report.reused, 0);
    assert_eq!(report.relinked, sources.len());
}
