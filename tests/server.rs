//! End-to-end tests of `stcfa serve` / `stcfa client`: the daemon is
//! exercised as a child process over its real transports.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

fn stcfa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stcfa"))
}

/// A `stcfa serve --stdio` child with line-oriented request/response
/// helpers. Dropping it without `shutdown` kills the child.
struct Daemon {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
}

impl Daemon {
    fn spawn(threads: usize) -> Daemon {
        Daemon::spawn_with(threads, &[])
    }

    /// Like [`Daemon::spawn`] with extra `serve` flags (`--cache-dir …`).
    fn spawn_with(threads: usize, extra: &[&str]) -> Daemon {
        let mut child = stcfa()
            .args(["serve", "--stdio", "--threads", &threads.to_string()])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        let stdin = child.stdin.take();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Daemon {
            child,
            stdin,
            stdout,
        }
    }

    /// One sequential round-trip: send the line, read the one response.
    fn roundtrip(&mut self, request: &str) -> String {
        let stdin = self.stdin.as_mut().unwrap();
        writeln!(stdin, "{request}").unwrap();
        stdin.flush().unwrap();
        let mut line = String::new();
        let n = self.stdout.read_line(&mut line).unwrap();
        assert!(n > 0, "daemon closed its stdout mid-conversation");
        line.trim_end().to_owned()
    }

    /// Sends `shutdown`, expects the confirmation, and waits for a clean
    /// exit.
    fn shutdown(self) {
        self.shutdown_stderr();
    }

    /// [`Daemon::shutdown`], returning everything the daemon wrote to
    /// stderr (the `cache-corrupt` log lines).
    fn shutdown_stderr(mut self) -> String {
        let bye = self.roundtrip(r#"{"op":"shutdown"}"#);
        assert!(bye.contains(r#""stopping":true"#), "{bye}");
        drop(self.stdin.take());
        let mut err = String::new();
        self.child
            .stderr
            .take()
            .unwrap()
            .read_to_string(&mut err)
            .unwrap();
        let status = self.child.wait().unwrap();
        assert!(status.success(), "daemon exited {status}");
        err
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

const SRC: &str = "(fn x => x) (fn y => y)";

fn analyze(src: &str) -> String {
    format!(r#"{{"op":"analyze","source":"{src}"}}"#)
}

/// Pulls `"field":<value up to the next comma/brace>` out of a response
/// line — enough structure inspection for these tests without a parser.
fn field<'a>(line: &'a str, name: &str) -> &'a str {
    let pat = format!(r#""{name}":"#);
    let start = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no {name} in {line}"))
        + pat.len();
    let rest = &line[start..];
    let end = rest
        .char_indices()
        .scan(0i32, |depth, (i, c)| {
            match c {
                '{' | '[' => *depth += 1,
                '}' | ']' if *depth == 0 => return Some(Some(i)),
                '}' | ']' => *depth -= 1,
                ',' if *depth == 0 => return Some(Some(i)),
                _ => {}
            }
            Some(None)
        })
        .flatten()
        .next()
        .unwrap_or(rest.len());
    &rest[..end]
}

#[test]
fn full_round_trip_over_stdio() {
    let mut d = Daemon::spawn(2);
    let a = d.roundtrip(&analyze(SRC));
    assert_eq!(field(&a, "ok"), "true", "{a}");
    assert_eq!(field(&a, "cached"), "false", "{a}");
    let digest = field(&a, "snapshot").trim_matches('"').to_owned();
    assert_eq!(digest.len(), 16, "{a}");

    let q = d.roundtrip(&format!(
        r#"{{"op":"query","kind":"label-set","snapshot":"{digest}"}}"#
    ));
    assert_eq!(field(&q, "count"), "1", "{q}");
    assert!(q.contains("λy#1"), "{q}");

    let ct = d.roundtrip(&format!(
        r#"{{"op":"query","kind":"call-targets","snapshot":"{digest}","site":4}}"#
    ));
    assert_eq!(field(&ct, "ok"), "true", "{ct}");

    let lint = d.roundtrip(&format!(r#"{{"op":"lint","snapshot":"{digest}"}}"#));
    assert_eq!(field(&lint, "ok"), "true", "{lint}");

    let stats = d.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(field(&stats, "ok"), "true", "{stats}");
    assert_eq!(field(&stats, "entries"), "1", "{stats}");
    d.shutdown();
}

#[test]
fn warm_cache_never_rebuilds() {
    let mut d = Daemon::spawn(2);
    let first = d.roundtrip(&analyze(SRC));
    assert_eq!(field(&first, "cached"), "false", "{first}");
    // The same source again — and a query that names it inline — must both
    // be servable without a rebuild.
    let second = d.roundtrip(&analyze(SRC));
    assert_eq!(field(&second, "cached"), "true", "{second}");
    let q = d.roundtrip(&format!(
        r#"{{"op":"query","kind":"label-set","source":"{SRC}"}}"#
    ));
    assert_eq!(field(&q, "ok"), "true", "{q}");
    let stats = d.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(field(&stats, "misses"), "1", "one build total: {stats}");
    assert_eq!(field(&stats, "hits"), "2", "{stats}");
    d.shutdown();
}

#[test]
fn responses_are_byte_identical_across_thread_counts() {
    // The same conversation, replayed sequentially against daemons with
    // different worker counts, must produce byte-identical transcripts
    // (`stats` is excluded: its timing counters are wall-clock).
    let conversation = [
        analyze(SRC),
        analyze("fun id x = x; id (fn u => u)"),
        analyze(SRC), // warm: cached:true, deterministic in sequential replay
        format!(r#"{{"id":7,"op":"query","kind":"label-set","source":"{SRC}"}}"#),
        format!(r#"{{"id":8,"op":"query","kind":"occurrences","source":"{SRC}","label":1}}"#),
        format!(
            r#"{{"id":9,"op":"query","kind":"reachability","source":"{SRC}","expr":0,"label":1}}"#
        ),
        format!(r#"{{"id":10,"op":"lint","source":"{SRC}"}}"#),
        r#"{"id":11,"op":"frobnicate"}"#.to_owned(),
        r#"not json at all"#.to_owned(),
    ];
    let mut transcripts = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut d = Daemon::spawn(threads);
        let transcript: Vec<String> = conversation.iter().map(|req| d.roundtrip(req)).collect();
        d.shutdown();
        transcripts.push((threads, transcript));
    }
    let (_, reference) = &transcripts[0];
    for (threads, transcript) in &transcripts[1..] {
        assert_eq!(
            transcript, reference,
            "transcript diverged at --threads {threads}"
        );
    }
}

#[test]
fn deadline_exceeded_is_structured_and_daemon_survives() {
    let mut d = Daemon::spawn(1);
    let late = d.roundtrip(&format!(
        r#"{{"op":"analyze","source":"{SRC}","deadline_ms":0}}"#
    ));
    assert_eq!(field(&late, "ok"), "false", "{late}");
    assert_eq!(field(&late, "kind"), r#""timeout""#, "{late}");
    assert!(late.contains("deadline of 0 ms exceeded"), "{late}");
    // The daemon keeps serving: same request without the deadline is fine.
    let ok = d.roundtrip(&analyze(SRC));
    assert_eq!(field(&ok, "ok"), "true", "{ok}");
    d.shutdown();
}

#[test]
fn request_errors_never_kill_the_daemon() {
    let mut d = Daemon::spawn(2);
    for (request, kind) in [
        ("{ not json", r#""proto""#),
        (r#"{"op":"analyze","source":"fn x =>"}"#, r#""parse""#),
        (
            r#"{"op":"analyze","source":"(fn x => x x) (fn x => x x)"}"#,
            r#""analysis""#,
        ),
        (
            r#"{"op":"query","kind":"label-set","snapshot":"0123456789abcdef"}"#,
            r#""unknown-snapshot""#,
        ),
        (r#"{"v":99,"op":"stats"}"#, r#""proto""#),
    ] {
        let r = d.roundtrip(request);
        assert_eq!(field(&r, "ok"), "false", "{r}");
        assert_eq!(field(&r, "kind"), kind, "{r}");
    }
    let ok = d.roundtrip(&analyze(SRC));
    assert_eq!(field(&ok, "ok"), "true", "{ok}");
    d.shutdown();
}

#[test]
fn invalidated_snapshot_is_stale_until_reanalyzed() {
    let mut d = Daemon::spawn(2);
    let a = d.roundtrip(&analyze(SRC));
    let digest = field(&a, "snapshot").trim_matches('"').to_owned();
    let e = d.roundtrip(&format!(r#"{{"op":"evict","snapshot":"{digest}"}}"#));
    assert_eq!(field(&e, "evicted"), "true", "{e}");
    let stale = d.roundtrip(&format!(
        r#"{{"op":"query","kind":"label-set","snapshot":"{digest}"}}"#
    ));
    assert_eq!(field(&stale, "kind"), r#""stale-snapshot""#, "{stale}");
    // Re-analyzing the same content re-validates the same digest.
    let again = d.roundtrip(&analyze(SRC));
    assert_eq!(
        field(&again, "snapshot").trim_matches('"'),
        digest,
        "{again}"
    );
    assert_eq!(
        field(&again, "cached"),
        "false",
        "rebuilt after invalidation: {again}"
    );
    let fresh = d.roundtrip(&format!(
        r#"{{"op":"query","kind":"label-set","snapshot":"{digest}"}}"#
    ));
    assert_eq!(field(&fresh, "ok"), "true", "{fresh}");
    d.shutdown();
}

#[test]
fn tcp_transport_and_client_helper() {
    let mut server = stcfa()
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // The daemon announces the bound address on stderr.
    let mut stderr = BufReader::new(server.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).unwrap();
    let addr = line.trim().rsplit(' ').next().unwrap().to_owned();
    assert!(addr.contains(':'), "no address in {line:?}");

    let client = |request: &str| -> String {
        let out = stcfa()
            .args(["client", "--addr", &addr, "--request", request])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap().trim_end().to_owned()
    };
    let a = client(&analyze(SRC));
    assert_eq!(field(&a, "ok"), "true", "{a}");
    let digest = field(&a, "snapshot").trim_matches('"').to_owned();
    // A second connection hits the same daemon-wide cache.
    let b = client(&analyze(SRC));
    assert_eq!(field(&b, "cached"), "true", "{b}");
    let q = client(&format!(
        r#"{{"op":"query","kind":"label-set","snapshot":"{digest}"}}"#
    ));
    assert_eq!(field(&q, "ok"), "true", "{q}");
    let bye = client(r#"{"op":"shutdown"}"#);
    assert!(bye.contains(r#""stopping":true"#), "{bye}");
    let status = server.wait().unwrap();
    assert!(status.success(), "daemon exited {status}");
    let mut rest = String::new();
    stderr.read_to_string(&mut rest).unwrap();
}

#[test]
fn session_flow_over_stdio() {
    let mut d = Daemon::spawn(2);
    let open = d.roundtrip(
        r#"{"v":2,"id":1,"op":"session/open","session":"s1","modules":[{"name":"util","source":"fun id x = x;"},{"name":"main","source":"id (fn u => u)"}]}"#,
    );
    assert_eq!(field(&open, "ok"), "true", "{open}");
    assert_eq!(field(&open, "v"), "2", "{open}");
    assert_eq!(field(&open, "relinked"), "2", "{open}");
    let digest = field(&open, "digest").trim_matches('"').to_owned();
    assert_eq!(digest.len(), 16, "{open}");

    let q = d.roundtrip(r#"{"v":2,"id":2,"op":"session/query","session":"s1","kind":"label-set"}"#);
    assert_eq!(field(&q, "count"), "1", "{q}");

    // The open session pins its linked snapshot: `evict` must refuse
    // with the structured kind, and the session must keep serving.
    let pinned = d.roundtrip(&format!(
        r#"{{"v":2,"id":3,"op":"evict","snapshot":"{digest}"}}"#
    ));
    assert_eq!(field(&pinned, "ok"), "false", "{pinned}");
    assert_eq!(field(&pinned, "kind"), r#""pinned-snapshot""#, "{pinned}");

    // The stats report covers the session/pinning fields (the cache
    // byte budget, tombstone count, and open-session pin count).
    let stats = d.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(field(&stats, "protocol"), "2", "{stats}");
    assert_eq!(field(&stats, "sessions"), "1", "{stats}");
    assert_eq!(field(&stats, "pinned"), "1", "{stats}");
    assert_eq!(field(&stats, "tombstones"), "0", "{stats}");
    assert!(
        field(&stats, "capacity_bytes").parse::<u64>().unwrap() > 0,
        "{stats}"
    );

    // Hot reload: updating one module reuses the other verbatim — same
    // per-module generation — and re-pins under the new digest.
    let update = d.roundtrip(
        r#"{"v":2,"id":4,"op":"session/update","session":"s1","modules":[{"name":"main","source":"id (fn v => v)"}]}"#,
    );
    assert_eq!(field(&update, "ok"), "true", "{update}");
    assert_eq!(field(&update, "reused"), "1", "{update}");
    assert_eq!(field(&update, "relinked"), "1", "{update}");
    let new_digest = field(&update, "digest").trim_matches('"').to_owned();
    assert_ne!(new_digest, digest, "{update}");
    let (open_mods, update_mods) = (field(&open, "modules"), field(&update, "modules"));
    assert_eq!(
        field(update_mods, "generation"),
        field(open_mods, "generation"),
        "unchanged `util` must keep its generation: {update}"
    );
    assert_eq!(field(update_mods, "reused"), "true", "{update}");

    let q2 =
        d.roundtrip(r#"{"v":2,"id":5,"op":"session/query","session":"s1","kind":"label-set"}"#);
    assert_eq!(field(&q2, "count"), "1", "{q2}");

    // The superseded snapshot is unpinned — evicting it now succeeds
    // and leaves a tombstone.
    let gone = d.roundtrip(&format!(r#"{{"op":"evict","snapshot":"{digest}"}}"#));
    assert_eq!(field(&gone, "evicted"), "true", "{gone}");
    let stats = d.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(field(&stats, "tombstones"), "1", "{stats}");
    assert_eq!(field(&stats, "pinned"), "1", "{stats}");

    // Closing unpins; the linked snapshot then evicts like any other.
    let close = d.roundtrip(r#"{"v":2,"op":"session/close","session":"s1"}"#);
    assert_eq!(field(&close, "closed"), "true", "{close}");
    let evict = d.roundtrip(&format!(r#"{{"op":"evict","snapshot":"{new_digest}"}}"#));
    assert_eq!(field(&evict, "evicted"), "true", "{evict}");
    let stats = d.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(field(&stats, "sessions"), "0", "{stats}");
    assert_eq!(field(&stats, "pinned"), "0", "{stats}");
    d.shutdown();
}

#[test]
fn session_transcripts_are_byte_identical_across_thread_counts() {
    // The whole v2 conversation is piped in one write and stdin closed —
    // the pipelined path, where worker scheduling could reorder effects —
    // and the transcript must still be byte-identical at every worker
    // count (session ops are sequenced by the server's order gate).
    let mut input = String::new();
    for (i, req) in [
        r#""op":"session/open","session":"w","modules":[{"name":"a","source":"fun f x = x;"},{"name":"b","source":"val p = f (fn u => u);"},{"name":"c","source":"p"}]"#.to_owned(),
        r#""op":"session/query","session":"w","kind":"label-set""#.to_owned(),
        format!(r#""op":"analyze","source":"{SRC}""#),
        r#""op":"session/update","session":"w","modules":[{"name":"c","source":"f p"}]"#.to_owned(),
        r#""op":"session/query","session":"w","kind":"label-set""#.to_owned(),
        r#""op":"session/lint","session":"w""#.to_owned(),
        r#""op":"session/query","session":"nosuch","kind":"label-set""#.to_owned(),
        r#""op":"session/close","session":"w""#.to_owned(),
    ]
    .iter()
    .enumerate()
    {
        input.push_str(&format!(r#"{{"v":2,"id":{i},{req}}}"#));
        input.push('\n');
    }
    let mut transcripts = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut child = stcfa()
            .args(["serve", "--stdio", "--threads", &threads.to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        child
            .stdin
            .take()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
        let mut output = String::new();
        child
            .stdout
            .take()
            .unwrap()
            .read_to_string(&mut output)
            .unwrap();
        assert!(child.wait().unwrap().success());
        assert_eq!(output.lines().count(), 8, "--threads {threads}: {output}");
        assert!(
            output.contains(r#""kind":"unknown-session""#),
            "--threads {threads}: {output}"
        );
        transcripts.push((threads, output));
    }
    let (_, reference) = &transcripts[0];
    for (threads, transcript) in &transcripts[1..] {
        assert_eq!(
            transcript, reference,
            "session transcript diverged at --threads {threads}"
        );
    }
}

/// A scratch cache directory, cleared at the start of the test that owns
/// it (not at the end: failures leave the evidence on disk).
fn cache_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stcfa-server-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The read-side conversation replayed against cold and warm daemons: all
/// four query kinds plus a lint, with fixed ids so the transcripts are
/// comparable byte for byte.
fn query_conversation() -> Vec<String> {
    vec![
        format!(r#"{{"id":1,"op":"query","kind":"label-set","source":"{SRC}"}}"#),
        format!(r#"{{"id":2,"op":"query","kind":"occurrences","source":"{SRC}","label":1}}"#),
        format!(
            r#"{{"id":3,"op":"query","kind":"reachability","source":"{SRC}","expr":0,"label":1}}"#
        ),
        format!(r#"{{"id":4,"op":"query","kind":"call-targets","source":"{SRC}","site":4}}"#),
        format!(r#"{{"id":5,"op":"lint","source":"{SRC}"}}"#),
    ]
}

#[test]
fn restarted_daemon_warms_from_disk_with_identical_answers() {
    let dir = cache_dir("restart");
    let flags = ["--cache-dir", dir.to_str().unwrap()];

    // Cold daemon: builds once, persists, answers the conversation.
    let mut cold = Daemon::spawn_with(2, &flags);
    let a = cold.roundtrip(&analyze(SRC));
    assert_eq!(field(&a, "cached"), "false", "{a}");
    let digest = field(&a, "snapshot").trim_matches('"').to_owned();
    let cold_lines: Vec<String> = query_conversation()
        .iter()
        .map(|req| cold.roundtrip(req))
        .collect();
    let stats = cold.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(field(&stats, "misses"), "1", "{stats}");
    assert_eq!(field(&stats, "disk"), "true", "{stats}");
    assert_eq!(field(&stats, "disk_writes"), "1", "{stats}");
    assert_eq!(field(&stats, "disk_hits"), "0", "{stats}");
    cold.shutdown();
    assert!(
        dir.join(format!("{digest}.stcfa")).is_file(),
        "snapshot not persisted under {digest}"
    );

    // Restarted daemon: the same analyze is answered from disk — no
    // build — and the whole conversation is byte-identical.
    let mut warm = Daemon::spawn_with(2, &flags);
    let b = warm.roundtrip(&analyze(SRC));
    assert_eq!(field(&b, "cached"), "true", "warm restart rebuilt: {b}");
    assert_eq!(field(&b, "snapshot").trim_matches('"'), digest, "{b}");
    let warm_lines: Vec<String> = query_conversation()
        .iter()
        .map(|req| warm.roundtrip(req))
        .collect();
    assert_eq!(warm_lines, cold_lines, "warm answers diverged from cold");
    let stats = warm.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(field(&stats, "misses"), "0", "warm daemon built: {stats}");
    assert_eq!(field(&stats, "disk_hits"), "1", "{stats}");
    assert_eq!(field(&stats, "disk_corrupt"), "0", "{stats}");
    warm.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopened_session_warms_from_disk_without_relinking_the_engine() {
    let dir = cache_dir("session-restart");
    let flags = ["--cache-dir", dir.to_str().unwrap()];
    let open = r#"{"v":2,"id":1,"op":"session/open","session":"s","modules":[{"name":"util","source":"fun id x = x;"},{"name":"main","source":"id (fn u => u)"}]}"#;
    let queries = [
        r#"{"v":2,"id":2,"op":"session/query","session":"s","kind":"label-set"}"#,
        r#"{"v":2,"id":3,"op":"session/query","session":"s","kind":"label-set","precision":true}"#,
        r#"{"v":2,"id":4,"op":"session/lint","session":"s"}"#,
    ];

    // First daemon generation: links, persists the linked snapshot, and
    // answers the conversation.
    let mut cold = Daemon::spawn_with(2, &flags);
    let a = cold.roundtrip(open);
    assert_eq!(field(&a, "ok"), "true", "{a}");
    assert_eq!(field(&a, "cached"), "false", "{a}");
    let digest = field(&a, "digest").trim_matches('"').to_owned();
    let cold_lines: Vec<String> = queries.iter().map(|req| cold.roundtrip(req)).collect();
    let stats = cold.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(field(&stats, "misses"), "1", "{stats}");
    assert_eq!(field(&stats, "disk_writes"), "1", "{stats}");
    cold.shutdown();
    assert!(
        dir.join(format!("{digest}.stcfa")).is_file(),
        "linked snapshot not persisted under {digest}"
    );

    // Restarted daemon: `session/open` on the same workspace digest must
    // warm-load the engine from disk — zero rebuilds — and the whole
    // conversation (precision grades included) is byte-identical.
    let mut warm = Daemon::spawn_with(2, &flags);
    let b = warm.roundtrip(open);
    assert_eq!(field(&b, "cached"), "true", "warm reopen rebuilt: {b}");
    assert_eq!(field(&b, "digest").trim_matches('"'), digest, "{b}");
    let warm_lines: Vec<String> = queries.iter().map(|req| warm.roundtrip(req)).collect();
    assert_eq!(warm_lines, cold_lines, "warm answers diverged from cold");
    let stats = warm.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(field(&stats, "misses"), "0", "warm daemon rebuilt: {stats}");
    assert_eq!(field(&stats, "disk_hits"), "1", "{stats}");
    assert_eq!(field(&stats, "disk_corrupt"), "0", "{stats}");

    // The warm session stays live: an update relinks only the edited
    // module, proving the reopened workspace is fully functional.
    let update = warm.roundtrip(
        r#"{"v":2,"id":9,"op":"session/update","session":"s","modules":[{"name":"main","source":"id (fn v => v)"}]}"#,
    );
    assert_eq!(field(&update, "ok"), "true", "{update}");
    assert_eq!(field(&update, "reused"), "1", "{update}");
    assert_eq!(field(&update, "relinked"), "1", "{update}");
    warm.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_files_rebuild_cleanly_end_to_end() {
    let dir = cache_dir("corrupt");
    let flags = ["--cache-dir", dir.to_str().unwrap()];
    const OTHER: &str = "fun id x = x; id (fn u => u)";

    // Seed the tier with two digests and record the reference answer.
    let mut seed = Daemon::spawn_with(2, &flags);
    let a = seed.roundtrip(&analyze(SRC));
    let digest = field(&a, "snapshot").trim_matches('"').to_owned();
    let b = seed.roundtrip(&analyze(OTHER));
    let other_digest = field(&b, "snapshot").trim_matches('"').to_owned();
    let reference: Vec<String> = query_conversation()
        .iter()
        .map(|req| seed.roundtrip(req))
        .collect();
    seed.shutdown();
    let path = dir.join(format!("{digest}.stcfa"));
    let pristine = std::fs::read(&path).unwrap();

    type Corrupt = fn(&std::path::Path, &[u8], &std::path::Path);
    let corruptions: [(&str, Corrupt); 5] = [
        ("truncation", |p, bytes, _| {
            std::fs::write(p, &bytes[..bytes.len() / 2]).unwrap()
        }),
        ("bit-flip", |p, bytes, _| {
            let mut evil = bytes.to_vec();
            let mid = evil.len() / 2;
            evil[mid] ^= 0x10;
            std::fs::write(p, evil).unwrap();
        }),
        ("version-skew", |p, bytes, _| {
            let mut evil = bytes.to_vec();
            evil[8..12].copy_from_slice(&99u32.to_le_bytes());
            std::fs::write(p, evil).unwrap();
        }),
        ("zero-length", |p, _, _| std::fs::write(p, b"").unwrap()),
        // A self-consistent file copied over the wrong address.
        ("digest-mismatch", |p, _, other| {
            std::fs::copy(other, p).unwrap();
        }),
    ];

    for (name, corrupt) in corruptions {
        corrupt(&path, &pristine, &dir.join(format!("{other_digest}.stcfa")));
        let mut d = Daemon::spawn_with(2, &flags);
        // The corrupt file is detected, deleted, and rebuilt from source —
        // a structured fallback, not an error, not a wrong answer.
        let r = d.roundtrip(&analyze(SRC));
        assert_eq!(field(&r, "ok"), "true", "{name}: {r}");
        assert_eq!(
            field(&r, "cached"),
            "false",
            "{name} served corrupt data: {r}"
        );
        let answers: Vec<String> = query_conversation()
            .iter()
            .map(|req| d.roundtrip(req))
            .collect();
        assert_eq!(answers, reference, "{name}: answers diverged after rebuild");
        let stats = d.roundtrip(r#"{"op":"stats"}"#);
        assert_eq!(field(&stats, "disk_corrupt"), "1", "{name}: {stats}");
        assert_eq!(field(&stats, "misses"), "1", "{name}: {stats}");
        // The daemon keeps serving, and the rebuild re-persisted a good
        // copy (write-behind replacement).
        let again = d.roundtrip(&analyze(SRC));
        assert_eq!(field(&again, "cached"), "true", "{name}: {again}");
        let err = d.shutdown_stderr();
        assert!(
            err.contains(&format!("cache-corrupt digest={digest}")),
            "{name}: no structured log in {err:?}"
        );
        assert!(err.contains("action=rebuild"), "{name}: {err:?}");
        let healed = std::fs::read(&path).unwrap();
        assert_eq!(healed, pristine, "{name}: rebuild did not re-persist");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_pipeline_preserves_request_order() {
    // Not sequential round-trips: pipe a whole batch at once and close
    // stdin. Responses must come back in request order and all be served.
    let mut input = String::new();
    for i in 0..32 {
        input.push_str(&format!(
            r#"{{"id":{i},"op":"query","kind":"label-set","source":"{SRC}"}}"#
        ));
        input.push('\n');
    }
    for threads in [1usize, 8] {
        let mut child = stcfa()
            .args(["serve", "--stdio", "--threads", &threads.to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        child
            .stdin
            .take()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
        let mut output = String::new();
        child
            .stdout
            .take()
            .unwrap()
            .read_to_string(&mut output)
            .unwrap();
        assert!(child.wait().unwrap().success());
        let lines: Vec<&str> = output.lines().collect();
        assert_eq!(lines.len(), 32, "--threads {threads}: {output}");
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(
                field(line, "id"),
                i.to_string(),
                "--threads {threads}: {line}"
            );
            assert_eq!(field(line, "ok"), "true", "--threads {threads}: {line}");
        }
    }
}

// --- the TCP fleet -------------------------------------------------------
//
// Everything below drives the nonblocking event-loop transport as a child
// process over real sockets: transcript invariance across shard/worker
// geometry, connection-level fault injection (mid-burst disconnect,
// half-written line, slow reader, overload shedding), the persist tier
// under concurrent connections, and the idle-CPU guarantee.

use std::net::TcpStream;
use std::process::ChildStderr;
use std::time::Duration;

/// A `stcfa serve --addr 127.0.0.1:0` child; the bound address is read
/// off stderr. Dropping it without `shutdown` kills the child.
struct TcpDaemon {
    child: Child,
    stderr: BufReader<ChildStderr>,
    addr: String,
}

impl TcpDaemon {
    fn spawn(extra: &[&str]) -> TcpDaemon {
        let mut child = stcfa()
            .args(["serve", "--addr", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        let mut stderr = BufReader::new(child.stderr.take().unwrap());
        let mut line = String::new();
        stderr.read_line(&mut line).unwrap();
        let addr = line.trim().rsplit(' ').next().unwrap().to_owned();
        assert!(addr.contains(':'), "no bound address in {line:?}");
        TcpDaemon {
            child,
            stderr,
            addr,
        }
    }

    /// A fresh client connection with a hang-proof read timeout.
    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        stream
    }

    /// One request, one response, over a throwaway connection.
    fn roundtrip(&self, request: &str) -> String {
        let stream = self.connect();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writeln!(writer, "{request}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap();
        assert!(n > 0, "daemon closed the connection on {request}");
        line.trim_end().to_owned()
    }

    /// Sends `shutdown` and waits for a clean daemon exit.
    fn shutdown(mut self) {
        let bye = self.roundtrip(r#"{"op":"shutdown"}"#);
        assert!(bye.contains(r#""stopping":true"#), "{bye}");
        let status = self.child.wait().unwrap();
        assert!(status.success(), "daemon exited {status}");
        let mut rest = String::new();
        self.stderr.read_to_string(&mut rest).unwrap();
    }
}

impl Drop for TcpDaemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Pipelines `input` (N newline-terminated requests) down one
/// connection, then reads exactly N response lines — pausing
/// `read_delay` between lines to emulate a slow client reader.
fn pipelined_transcript(d: &TcpDaemon, input: &str, read_delay: Duration) -> Vec<String> {
    let stream = d.connect();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(input.as_bytes()).unwrap();
    writer.flush().unwrap();
    let expected = input.lines().count();
    let mut out = Vec::with_capacity(expected);
    let mut line = String::new();
    for i in 0..expected {
        if !read_delay.is_zero() {
            std::thread::sleep(read_delay);
        }
        line.clear();
        let n = reader.read_line(&mut line).unwrap();
        assert!(n > 0, "connection closed after {i} of {expected} responses");
        out.push(line.trim_end().to_owned());
    }
    out
}

/// The 32-request ordered batch from the stdio pipeline test, reused
/// over TCP.
fn ordered_batch() -> String {
    let mut input = String::new();
    for i in 0..32 {
        input.push_str(&format!(
            r#"{{"id":{i},"op":"query","kind":"label-set","source":"{SRC}"}}"#
        ));
        input.push('\n');
    }
    input
}

/// The session e2e conversation from the stdio invariance test, reused
/// over TCP.
fn session_batch() -> String {
    let mut input = String::new();
    for (i, req) in [
        r#""op":"session/open","session":"w","modules":[{"name":"a","source":"fun f x = x;"},{"name":"b","source":"val p = f (fn u => u);"},{"name":"c","source":"p"}]"#.to_owned(),
        r#""op":"session/query","session":"w","kind":"label-set""#.to_owned(),
        format!(r#""op":"analyze","source":"{SRC}""#),
        r#""op":"session/update","session":"w","modules":[{"name":"c","source":"f p"}]"#.to_owned(),
        r#""op":"session/query","session":"w","kind":"label-set""#.to_owned(),
        r#""op":"session/lint","session":"w""#.to_owned(),
        r#""op":"session/query","session":"nosuch","kind":"label-set""#.to_owned(),
        r#""op":"session/close","session":"w""#.to_owned(),
    ]
    .iter()
    .enumerate()
    {
        input.push_str(&format!(r#"{{"v":2,"id":{i},{req}}}"#));
        input.push('\n');
    }
    input
}

#[test]
fn fleet_transcripts_are_byte_identical_across_shards_and_threads() {
    // The ordered 32-query batch and the session e2e conversation, each
    // pipelined down one connection, at every shard × worker geometry.
    // The transcripts must be byte-identical everywhere: dispatch
    // geometry is a performance knob, never an observable.
    let batch = ordered_batch();
    let sessions = session_batch();
    let mut batch_ref: Option<Vec<String>> = None;
    let mut session_ref: Option<Vec<String>> = None;
    for shards in [1usize, 2, 8] {
        for threads in [1usize, 2, 8] {
            let d = TcpDaemon::spawn(&[
                "--shards",
                &shards.to_string(),
                "--threads",
                &threads.to_string(),
            ]);
            let got = pipelined_transcript(&d, &batch, Duration::ZERO);
            for (i, line) in got.iter().enumerate() {
                assert_eq!(
                    field(line, "id"),
                    i.to_string(),
                    "s{shards} t{threads}: {line}"
                );
            }
            match &batch_ref {
                None => batch_ref = Some(got),
                Some(reference) => assert_eq!(
                    &got, reference,
                    "batch transcript diverged at --shards {shards} --threads {threads}"
                ),
            }
            let got = pipelined_transcript(&d, &sessions, Duration::ZERO);
            assert!(
                got.iter()
                    .any(|l| l.contains(r#""kind":"unknown-session""#)),
                "s{shards} t{threads}: {got:?}"
            );
            match &session_ref {
                None => session_ref = Some(got),
                Some(reference) => assert_eq!(
                    &got, reference,
                    "session transcript diverged at --shards {shards} --threads {threads}"
                ),
            }
            d.shutdown();
        }
    }

    // A deliberately slow client reader (slow enough to trip the write
    // path into backpressure pacing) must see the exact same bytes.
    for (shards, threads) in [(1usize, 1usize), (8, 8)] {
        let d = TcpDaemon::spawn(&[
            "--shards",
            &shards.to_string(),
            "--threads",
            &threads.to_string(),
        ]);
        let got = pipelined_transcript(&d, &batch, Duration::from_millis(10));
        assert_eq!(
            Some(&got),
            batch_ref.as_ref(),
            "slow reader changed the transcript at --shards {shards} --threads {threads}"
        );
        let got = pipelined_transcript(&d, &sessions, Duration::from_millis(10));
        assert_eq!(
            Some(&got),
            session_ref.as_ref(),
            "slow session reader diverged at --shards {shards} --threads {threads}"
        );
        d.shutdown();
    }
}

/// Polls the `stats` op until `pred` holds (the event loop reaps
/// asynchronously) — bounded, never a spin-forever.
fn wait_for_stats(d: &TcpDaemon, what: &str, pred: impl Fn(&str) -> bool) -> String {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = d.roundtrip(r#"{"op":"stats"}"#);
        if pred(&stats) {
            return stats;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {what}: {stats}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn mid_burst_disconnect_frees_the_slot_and_daemon_keeps_serving() {
    let d = TcpDaemon::spawn(&["--threads", "2"]);
    for round in 0..3 {
        let stream = d.connect();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // A 16-request burst; read two responses; vanish mid-burst.
        writer.write_all(ordered_batch().as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        for _ in 0..2 {
            line.clear();
            assert!(reader.read_line(&mut line).unwrap() > 0, "round {round}");
        }
        drop(reader);
        drop(writer);
        // The slot must come back: only the stats probe's own
        // connection remains. (The probe is a throwaway connection per
        // call, so `connections` counts exactly it.)
        wait_for_stats(&d, "disconnect reap", |stats| {
            field(field(stats, "fleet"), "connections") == "1"
        });
    }
    // And the daemon is still fully functional.
    let ok = d.roundtrip(&analyze(SRC));
    assert_eq!(field(&ok, "ok"), "true", "{ok}");
    let stats = d.roundtrip(r#"{"op":"stats"}"#);
    let fleet = field(&stats, "fleet");
    assert!(
        field(fleet, "connections_total").parse::<u64>().unwrap() >= 4,
        "{stats}"
    );
    d.shutdown();
}

#[test]
fn half_written_lines_never_hang_and_complete_incrementally() {
    let d = TcpDaemon::spawn(&["--threads", "1"]);

    // A line completed across two writes with a pause in between must
    // be framed incrementally and answered once whole.
    let stream = d.connect();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let request = analyze(SRC);
    let (head, tail) = request.split_at(request.len() / 2);
    writer.write_all(head.as_bytes()).unwrap();
    writer.flush().unwrap();
    std::thread::sleep(Duration::from_millis(100));
    writer.write_all(tail.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    assert!(reader.read_line(&mut line).unwrap() > 0);
    assert_eq!(field(&line, "ok"), "true", "{line}");

    // A half-written line followed by a disconnect gets no response, no
    // leaked slot, and must not take the daemon down.
    let stream = d.connect();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(br#"{"op":"analyze","sour"#).unwrap();
    writer.flush().unwrap();
    drop(writer);
    drop(stream);
    wait_for_stats(&d, "half-line reap", |stats| {
        // Both probe-and-first connections drain to exactly the probe.
        field(field(stats, "fleet"), "connections") <= "2"
    });
    let ok = d.roundtrip(&analyze(SRC));
    assert_eq!(field(&ok, "ok"), "true", "{ok}");
    d.shutdown();
}

#[test]
fn overload_sheds_requests_in_transcript_order_and_recovers() {
    // One worker, admission cap 1: a pipelined burst of *distinct*
    // expensive builds must shed most requests with the structured
    // `overloaded` error — in transcript position, ids still in order —
    // and serve normally once the pipeline drains.
    let d = TcpDaemon::spawn(&["--threads", "1", "--max-inflight", "1"]);
    let mut input = String::new();
    for i in 0..24 {
        // Distinct sources so no request coalesces with another.
        let mut source = String::from("(fn x => x)");
        for k in 0..=i {
            source = format!("(fn v{k} => v{k}) ({source})");
        }
        input.push_str(&format!(
            r#"{{"id":{i},"op":"analyze","source":"{source}"}}"#
        ));
        input.push('\n');
    }
    let transcript = pipelined_transcript(&d, &input, Duration::ZERO);
    let mut shed = 0;
    let mut served = 0;
    for (i, line) in transcript.iter().enumerate() {
        assert_eq!(field(line, "id"), i.to_string(), "{line}");
        if line.contains(r#""kind":"overloaded""#) {
            assert_eq!(field(line, "ok"), "false", "{line}");
            assert!(line.contains("retry"), "{line}");
            shed += 1;
        } else {
            assert_eq!(field(line, "ok"), "true", "{line}");
            served += 1;
        }
    }
    assert!(served >= 1, "the first request must always be admitted");
    assert!(
        shed >= 1,
        "a 24-deep pipelined burst against --max-inflight 1 shed nothing"
    );
    // Shedding is observable and the daemon recovers completely.
    let stats = d.roundtrip(r#"{"op":"stats"}"#);
    let fleet = field(&stats, "fleet");
    assert_eq!(
        field(fleet, "overloaded_total").parse::<u64>().unwrap(),
        shed,
        "{stats}"
    );
    let ok = d.roundtrip(&analyze(SRC));
    assert_eq!(
        field(&ok, "ok"),
        "true",
        "post-overload request failed: {ok}"
    );
    d.shutdown();
}

#[test]
fn slow_reader_backpressure_delivers_everything_in_order() {
    // conn-inflight 4 forces the daemon to stop reading the burst until
    // answers drain; a client that only reads slowly must still get all
    // 32 responses, in order, with nothing shed.
    let d = TcpDaemon::spawn(&["--threads", "2", "--conn-inflight", "4"]);
    let transcript = pipelined_transcript(&d, &ordered_batch(), Duration::from_millis(5));
    assert_eq!(transcript.len(), 32);
    for (i, line) in transcript.iter().enumerate() {
        assert_eq!(field(line, "id"), i.to_string(), "{line}");
        assert_eq!(field(line, "ok"), "true", "{line}");
        assert!(
            !line.contains("overloaded"),
            "backpressure must shed nothing: {line}"
        );
    }
    let stats = d.roundtrip(r#"{"op":"stats"}"#);
    let fleet = field(&stats, "fleet");
    assert_eq!(field(fleet, "overloaded_total"), "0", "{stats}");
    d.shutdown();
}

#[test]
fn fleet_stats_expose_shards_connections_and_affinity_hits() {
    let d = TcpDaemon::spawn(&["--shards", "4", "--threads", "2"]);
    let stream = d.connect();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut send = |req: &str| -> String {
        writeln!(writer, "{req}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0);
        line.trim_end().to_owned()
    };
    let a = send(&analyze(SRC));
    let digest = field(&a, "snapshot").trim_matches('"').to_owned();
    for _ in 0..10 {
        let q = send(&format!(
            r#"{{"op":"query","kind":"label-set","snapshot":"{digest}"}}"#
        ));
        assert_eq!(field(&q, "ok"), "true", "{q}");
    }
    let stats = send(r#"{"op":"stats"}"#);
    let fleet = field(&stats, "fleet");
    assert_eq!(field(fleet, "shards"), "4", "{stats}");
    assert_eq!(field(fleet, "workers"), "2", "{stats}");
    assert_eq!(field(fleet, "connections"), "1", "{stats}");
    assert_eq!(
        field(fleet, "shard_hits"),
        "10",
        "every digest-addressed query must ride the analyze's shard: {stats}"
    );
    assert!(
        field(fleet, "dispatched").parse::<u64>().unwrap() >= 12,
        "{stats}"
    );
    assert_eq!(field(fleet, "overloaded_total"), "0", "{stats}");
    d.shutdown();
}

#[test]
fn persist_tier_serves_concurrent_connections_with_zero_misses() {
    let dir = cache_dir("fleet-persist");
    let flags = ["--cache-dir", dir.to_str().unwrap(), "--threads", "2"];

    // First daemon builds once and persists.
    let seed = TcpDaemon::spawn(&flags);
    let a = seed.roundtrip(&analyze(SRC));
    assert_eq!(field(&a, "cached"), "false", "{a}");
    let digest = field(&a, "snapshot").trim_matches('"').to_owned();
    seed.shutdown();
    assert!(dir.join(format!("{digest}.stcfa")).is_file());

    // Restarted daemon: 8 concurrent connections race the same analyze
    // + query. The single disk load must satisfy all of them — zero
    // misses (builds), exactly one disk hit.
    let warm = TcpDaemon::spawn(&flags);
    std::thread::scope(|scope| {
        let warm = &warm;
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let stream = warm.connect();
                    let mut writer = stream.try_clone().unwrap();
                    let mut reader = BufReader::new(stream);
                    writeln!(writer, "{}", analyze(SRC)).unwrap();
                    writeln!(
                        writer,
                        r#"{{"op":"query","kind":"label-set","source":"{SRC}"}}"#
                    )
                    .unwrap();
                    writer.flush().unwrap();
                    let mut line = String::new();
                    assert!(reader.read_line(&mut line).unwrap() > 0);
                    assert_eq!(
                        field(&line, "cached"),
                        "true",
                        "disk-warm analyze rebuilt: {line}"
                    );
                    line.clear();
                    assert!(reader.read_line(&mut line).unwrap() > 0);
                    assert_eq!(field(&line, "ok"), "true", "{line}");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    let stats = warm.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(field(&stats, "misses"), "0", "warm fleet built: {stats}");
    assert_eq!(field(&stats, "disk_hits"), "1", "{stats}");
    assert_eq!(field(&stats, "disk_corrupt"), "0", "{stats}");
    warm.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reads a process's cumulative CPU (utime + stime) in clock ticks from
/// /proc — the idle-cost probe.
#[cfg(target_os = "linux")]
fn cpu_ticks(pid: u32) -> u64 {
    let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).unwrap();
    // Field 2 (comm) may contain spaces; parse from after the ')'.
    let rest = stat.rsplit(')').next().unwrap();
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // utime and stime are fields 14 and 15 of the full line; after
    // stripping "pid (comm)" they are at offsets 11 and 12.
    fields[11].parse::<u64>().unwrap() + fields[12].parse::<u64>().unwrap()
}

#[cfg(target_os = "linux")]
#[test]
fn idle_fleet_burns_no_cpu() {
    // The old transport woke every 20 ms to poll accept(2). The fleet
    // parks: an idle daemon — even with an idle connection open — must
    // accumulate (almost) no CPU time.
    let d = TcpDaemon::spawn(&["--threads", "2"]);
    let pid = d.child.id();
    let _idle_conn = d.connect();
    // Settle (lazy init, the connection's admission), then measure.
    std::thread::sleep(Duration::from_millis(300));
    let before = cpu_ticks(pid);
    std::thread::sleep(Duration::from_millis(2000));
    let after = cpu_ticks(pid);
    let ticks = after - before;
    // 2 s idle at 100 Hz ticks: a spinning loop would burn ~200 ticks,
    // a 20 ms poll a handful. Budget 10 ticks (≤ 5% of one core) so the
    // assertion stays robust under CI noise while still catching any
    // return of a poll loop.
    assert!(
        ticks <= 10,
        "idle daemon burned {ticks} ticks over 2 s (not flat)"
    );
    d.shutdown();
}
