//! End-to-end tests of the `stcfa` command-line tool.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn stcfa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stcfa"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("stcfa_cli_test_{name}.ml"));
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn summary_and_labels() {
    let f = write_temp("summary", "(fn x => x x) (fn y => y)");
    let out = stcfa()
        .arg(&f)
        .args(["--summary", "--labels"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("2 abstractions"), "{stdout}");
    assert!(stdout.contains("L(root) = {λy#1}"), "{stdout}");
}

#[test]
fn call_sites_under_each_engine() {
    let f = write_temp(
        "engines",
        "fun id x = x; val a = id (fn u => u); val b = id (fn v => v); a",
    );
    for engine in ["sub", "poly", "hybrid", "cfa0", "sba", "unify"] {
        let out = stcfa()
            .arg(&f)
            .args(["--call-sites", "--analysis", engine])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "engine {engine}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains("site@"), "engine {engine}: {stdout}");
    }
}

#[test]
fn effects_eval_and_types() {
    let f = write_temp("effects", "val u = print 42; 7");
    let out = stcfa()
        .arg(&f)
        .args(["--effects", "--types", "--eval"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("root IS effectful"), "{stdout}");
    assert!(stdout.contains("k_avg"), "{stdout}");
    assert!(stdout.contains("42"), "{stdout}"); // printed by eval
    assert!(stdout.contains("=> 7"), "{stdout}");
}

#[test]
fn inline_pipeline_from_stdin() {
    let mut child = stcfa()
        .args(["-", "--inline"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"let val f = fn x => x + 1 in f 41 end")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("inlined 1 call sites"), "{stderr}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("41"), "{stdout}");
}

#[test]
fn dot_output_is_wellformed() {
    let f = write_temp("dot", "(fn x => x) (fn y => y)");
    let out = stcfa().arg(&f).arg("--dot").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("digraph subtransitive {"));
    assert!(stdout.trim_end().ends_with('}'));
}

#[test]
fn k_limited_reports_many() {
    let f = write_temp(
        "klim",
        "fun id x = x;\n\
         val a = id (fn p => p); val b = id (fn q => q); val c = id (fn r => r);\n\
         a 0",
    );
    let out = stcfa().arg(&f).args(["--k-limited", "2"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("many"), "{stdout}");
}

#[test]
fn called_once_report() {
    let f = write_temp("conce", "(fn x => x + 1) 2");
    let out = stcfa().arg(&f).arg("--called-once").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("called once"), "{stdout}");
}

#[test]
fn parse_errors_are_reported_with_position() {
    let f = write_temp("bad", "fn x =>");
    let out = stcfa().arg(&f).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn unknown_flag_fails_with_usage() {
    let out = stcfa().args(["foo.ml", "--frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn witness_paths() {
    let f = write_temp("witness", "(fn x => x x) (fn y => y)");
    let out = stcfa().arg(&f).arg("--witness").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("witness for λy#1 ∈ L(root)"), "{stdout}");
    assert!(stdout.contains("dom(dom(λx#0))"), "{stdout}");
}

#[test]
fn live_report() {
    let f = write_temp("live", "let val dead = fn x => (fn y => y) 1 in 2 end");
    let out = stcfa().arg(&f).arg("--live").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("4 dead"), "{stdout}");
    assert!(stdout.contains("never executed: 2"), "{stdout}");
}

#[test]
fn repl_mode_analyzes_incrementally() {
    let mut child = stcfa()
        .arg("--repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"fun id x = x;\nval a = id (fn u => u);\na\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("id : 1 possible function(s)"), "{stdout}");
    assert!(
        stdout.contains("value : 1 possible function(s)"),
        "{stdout}"
    );
    // Errors don't kill the session.
    let mut child2 = stcfa()
        .arg("--repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child2
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"nonsense !!\nval ok = 1;\n")
        .unwrap();
    let out2 = child2.wait_with_output().unwrap();
    assert!(out2.status.success());
    let stderr2 = String::from_utf8(out2.stderr).unwrap();
    assert!(stderr2.contains("error"), "{stderr2}");
    let stdout2 = String::from_utf8(out2.stdout).unwrap();
    assert!(stdout2.contains("ok : 0 possible function(s)"), "{stdout2}");
}

#[test]
fn untyped_program_reports_budget_error() {
    let f = write_temp("omega", "(fn x => x x) (fn x => x x)");
    let out = stcfa().arg(&f).arg("--summary").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("node budget"), "{stderr}");
    // But the hybrid engine answers.
    let out2 = stcfa()
        .arg(&f)
        .args(["--labels", "--analysis", "hybrid"])
        .output()
        .unwrap();
    assert!(
        out2.status.success(),
        "{}",
        String::from_utf8_lossy(&out2.stderr)
    );
}

#[test]
fn lint_text_reports_positions_and_codes() {
    let f = write_temp(
        "lint_text",
        "fun ghost x = x;\nfun konst a b = a;\nkonst 1 2",
    );
    let out = stcfa().args(["lint"]).arg(&f).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("warning[STCFA002]"), "{stdout}");
    assert!(stdout.contains("warning[STCFA004]"), "{stdout}");
    // Every line carries file:line:col.
    for line in stdout.lines() {
        assert!(line.contains(".ml:"), "{line}");
    }
}

#[test]
fn lint_json_is_machine_readable_and_thread_stable() {
    let f = write_temp(
        "lint_json",
        "fun ghost x = x;\nlet val r = (1, 2) in let val f = #1 r in f 9 end end",
    );
    let mut reports = Vec::new();
    for threads in ["1", "2", "8"] {
        let out = stcfa()
            .args(["lint"])
            .arg(&f)
            .args(["--format", "json", "--threads", threads])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        reports.push(String::from_utf8(out.stdout).unwrap());
    }
    assert_eq!(reports[0], reports[1], "1 vs 2 threads");
    assert_eq!(reports[0], reports[2], "1 vs 8 threads");
    let json = &reports[0];
    assert!(json.starts_with('['), "{json}");
    assert!(json.contains("\"code\":\"STCFA001\""), "{json}");
    assert!(json.contains("\"code\":\"STCFA002\""), "{json}");
    assert!(json.contains("\"span\":{\"line\":"), "{json}");
}

#[test]
fn lint_reads_stdin() {
    let mut child = stcfa()
        .args(["lint", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"(1, 2) 3")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error[STCFA006]"), "{stdout}");
}

#[test]
fn lint_explain_prints_rule_definitions() {
    let out = stcfa()
        .args(["lint", "--explain", "STCFA004"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("STCFA004"), "{stdout}");
    assert!(stdout.contains(":-"), "declarative clauses: {stdout}");
    assert!(stdout.contains(".edb occurrence"), "{stdout}");
    // Matching is case-insensitive.
    let out = stcfa()
        .args(["lint", "--explain", "stcfa007"])
        .output()
        .unwrap();
    assert!(out.status.success());
    // Unknown codes exit 3 (bad flag value).
    let out = stcfa()
        .args(["lint", "--explain", "STCFA999"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown rule code"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn lint_reports_the_rule_backed_codes() {
    let f = write_temp(
        "lint_rules",
        "fun pick b = if b then (fn x => print x) else (fn y => y);\n\
         fun f x = x; fun g y = f y; val a = f 1; val c = (pick true) 5; g 2",
    );
    let out = stcfa().args(["lint"]).arg(&f).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("warning[STCFA007]"), "{stdout}");
    assert!(stdout.contains("info[STCFA008]"), "{stdout}");
}

#[test]
fn rule_dominators_and_taint_answer_json() {
    let f = write_temp("rule_dom", "fun f x = x; fun g y = f y; val a = f 1; g 2");
    let out = stcfa()
        .args(["rule"])
        .arg(&f)
        .args(["--name", "dominators"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("{\"rule\":\"dominators\""), "{stdout}");
    assert!(stdout.contains("\"entry\":"), "{stdout}");

    let f = write_temp(
        "rule_taint",
        "fun apply f = fn y => f y; apply (fn n => print n) 7",
    );
    let out = stcfa()
        .args(["rule"])
        .arg(&f)
        .args(["--name", "taint"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("{\"rule\":\"taint\""), "{stdout}");
    assert!(stdout.contains("\"tainted\":["), "{stdout}");

    // Demand mode answers one occurrence; empty sources taint nothing.
    let out = stcfa()
        .args(["rule"])
        .arg(&f)
        .args(["--name", "taint", "--expr", "0", "--sources", ""])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"tainted\":false"), "{stdout}");

    // Unknown rule names exit 3.
    let out = stcfa()
        .args(["rule"])
        .arg(&f)
        .args(["--name", "nosuch"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
}
