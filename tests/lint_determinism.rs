//! Lint determinism properties: the diagnostics (and both rendered
//! reports) must be byte-identical at any query-thread count, and the
//! finding set must be stable under alpha-renaming of the input program
//! (binders are identities, so renaming must not move, add, or drop any
//! diagnostic).

use stcfa::core::{Analysis, QueryEngine};
use stcfa::lambda::Program;
use stcfa::lint::{lint, render_json, render_text, Diagnostic, LintOptions};
use stcfa::workloads::synth::{generate, SynthConfig};
use stcfa_devkit::prelude::*;

fn program_for(seed: u64) -> Program {
    generate(&SynthConfig {
        seed,
        target_size: 140,
        max_type_depth: 2,
        effect_prob: 0.15,
        max_tuple_width: 3,
        datatypes: true,
    })
}

fn lint_with(p: &Program, threads: usize) -> Vec<Diagnostic> {
    let a = Analysis::run(p).expect("synth programs analyze");
    let engine = QueryEngine::freeze(&a);
    lint(p, &a, &engine, &LintOptions { threads })
}

/// The alpha-stable fingerprint of one diagnostic: everything except the
/// message text (messages embed binder names, which renaming changes).
fn fingerprint(d: &Diagnostic) -> (&'static str, &'static str, usize) {
    (d.code.as_str(), d.severity.as_str(), d.expr.index())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn diagnostics_identical_across_thread_counts(seed in any::<u64>()) {
        let p = program_for(seed);
        let base = lint_with(&p, 1);
        let base_text = render_text(&base);
        let base_json = render_json(&base);
        for threads in [2usize, 8] {
            let d = lint_with(&p, threads);
            prop_assert_eq!(&d, &base, "diagnostics moved at {} threads (seed {})",
                threads, seed);
            prop_assert_eq!(&render_text(&d), &base_text);
            prop_assert_eq!(&render_json(&d), &base_json);
        }
    }

    #[test]
    fn diagnostics_stable_under_alpha_renaming(seed in any::<u64>()) {
        let p = program_for(seed);
        // Keep desugaring machinery (`$…`) and intentional-unused (`_…`)
        // prefixes so the rename is semantics- and exemption-preserving.
        let q = p.rename_binders(|name, i| {
            if name.starts_with('$') {
                name.to_owned()
            } else {
                format!("{name}_r{i}")
            }
        });
        let dp = lint_with(&p, 1);
        let dq = lint_with(&q, 1);
        let fp: Vec<_> = dp.iter().map(fingerprint).collect();
        let fq: Vec<_> = dq.iter().map(fingerprint).collect();
        prop_assert_eq!(fp, fq, "alpha-renaming changed the findings (seed {})", seed);
    }
}

/// The same guarantees on a parsed (span-carrying) program, where the
/// renderers also embed line:col positions.
#[test]
fn parsed_program_reports_are_thread_stable() {
    let src = "fun ghost x = x;\n\
               fun konst a b = a;\n\
               fun apply f v = f v;\n\
               let val box = (1, 2) in\n\
               let val dead = #1 box in\n\
               (apply (fn u => u + 1) (konst 1 2)) + dead 9 end end";
    let p = Program::parse(src).expect("parses");
    let base = lint_with(&p, 1);
    assert!(!base.is_empty(), "fixture should produce diagnostics");
    assert!(
        base.iter().all(|d| d.span.is_some()),
        "parsed programs carry spans"
    );
    let base_text = render_text(&base);
    let base_json = render_json(&base);
    for threads in [2usize, 8] {
        let d = lint_with(&p, threads);
        assert_eq!(render_text(&d), base_text, "{threads} threads");
        assert_eq!(render_json(&d), base_json, "{threads} threads");
    }
}
