//! Differential gates for the adaptive precision scheduler
//! (`crates/precision`, docs/PRECISION.md).
//!
//! Over the corpus and proptest-synthesized programs, every graded
//! answer must relate to its neighbours exactly as the tier semantics
//! claim:
//!
//! - **monotone**: the scheduled answer is a subset of (or equal to)
//!   the Tier-0 subtransitive answer — escalation only ever shrinks;
//! - **sound**: the full cubic CFA answer is a subset of the scheduled
//!   answer — escalation never drops a real flow;
//! - **exact means exact**: a `PrecisionClass::Exact` grade (including
//!   every suspicion-0 certificate) coincides with full `Cfa0`;
//! - **refined means refined**: a `Refined` grade is strictly smaller
//!   than Tier 0 and still contains the cubic answer;
//! - **deterministic**: two independently built scheduler+engine pairs
//!   produce byte-identical graded transcripts. `scripts/ci.sh` runs
//!   this suite (and diffs CLI `--precision` output) at
//!   `STCFA_QUERY_THREADS=1/2/8` for cross-thread-count identity.

use stcfa::cfa0::Cfa0;
use stcfa::core::{Analysis, AnalysisOptions, DatatypePolicy, QueryEngine};
use stcfa::lambda::{ExprId, ExprKind, Label, Program};
use stcfa::precision::{PrecisionClass, PrecisionScheduler, SuspicionIndex, Tier};
use stcfa::workloads::synth::{generate, SynthConfig};
use stcfa_devkit::prelude::*;

fn corpus() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "ml"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(&p).expect("readable"),
            )
        })
        .collect()
}

fn subset(sub: &[Label], sup: &[Label]) -> bool {
    sub.iter().all(|l| sup.contains(l))
}

/// The query sites the scheduler is exercised at: the program root plus
/// the operator of every application (the `--call-sites` surface).
fn sites(p: &Program) -> Vec<ExprId> {
    let mut out = vec![p.root()];
    for app in p.app_sites() {
        if let ExprKind::App { func, .. } = p.kind(app) {
            out.push(*func);
        }
    }
    out
}

/// Runs the scheduler over every site of `p` and checks the tier
/// semantics against Tier 0 and the full cubic oracle. Returns a
/// transcript line per site for the determinism check.
fn check_grades(name: &str, p: &Program, policy: DatatypePolicy) -> String {
    let a = Analysis::run_with(
        p,
        AnalysisOptions {
            policy,
            max_nodes: None,
        },
    )
    .unwrap_or_else(|e| panic!("{name}: {e}"));
    let engine = QueryEngine::freeze(&a);
    let sched = PrecisionScheduler::new(
        SuspicionIndex::build(&a, &engine),
        policy,
        PrecisionScheduler::DEFAULT_BUDGET,
    );
    let cfa = Cfa0::analyze(p);
    let mut transcript = String::new();
    for e in sites(p) {
        let t0 = engine.labels_of(e);
        let (ans, info) = sched.labels_of(p, &engine, e);
        assert!(
            subset(&ans, &t0),
            "{name} @ {e:?}: scheduled answer is not a subset of Tier 0 \
             ({ans:?} vs {t0:?})"
        );
        let oracle = cfa.labels(p, e);
        if policy != DatatypePolicy::Forget {
            // Under merging policies the congruences only ever ADD flow,
            // so Tier 0 over-approximates the cubic oracle.
            assert!(
                subset(&oracle, &t0),
                "{name} @ {e:?}: Tier 0 is not an upper bound of cubic \
                 ({t0:?} vs {oracle:?})"
            );
            if info.suspicion == 0 {
                assert_eq!(
                    t0, oracle,
                    "{name} @ {e:?}: suspicion-0 certificate is wrong"
                );
            }
            if info.tier == Tier::Cone {
                // The cone ran: the answer was intersected with (hence
                // confirmed against) the cubic oracle at this site.
                assert!(
                    subset(&ans, &oracle),
                    "{name} @ {e:?}: cone-confirmed answer exceeds cubic \
                     ({ans:?} vs {oracle:?})"
                );
            }
            match info.class {
                PrecisionClass::Exact => assert_eq!(
                    ans, oracle,
                    "{name} @ {e:?}: graded exact but differs from cubic"
                ),
                PrecisionClass::Refined => assert!(
                    ans.len() < t0.len(),
                    "{name} @ {e:?}: graded refined but did not shrink"
                ),
                PrecisionClass::Approx => {}
            }
        } else {
            assert_eq!(
                info.tier,
                Tier::Sub,
                "{name} @ {e:?}: Forget must never escalate"
            );
            assert_eq!(ans, t0, "{name} @ {e:?}: Forget must answer at Tier 0");
        }
        use std::fmt::Write as _;
        let _ = writeln!(
            transcript,
            "{name}@{}: {:?} [{} t{} s{}]",
            e.index(),
            ans.iter().map(|l| l.index()).collect::<Vec<_>>(),
            info.class.as_str(),
            info.tier.level(),
            info.suspicion
        );
    }
    transcript
}

#[test]
fn corpus_grades_are_sound_and_deterministic() {
    let mut refined_somewhere = false;
    for (name, src) in corpus() {
        let p = Program::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let first = check_grades(&name, &p, DatatypePolicy::Congruence1);
        let second = check_grades(&name, &p, DatatypePolicy::Congruence1);
        assert_eq!(
            first, second,
            "{name}: graded transcript is not deterministic"
        );
        refined_somewhere |= first.contains("[refined");
    }
    // The acceptance bar: at the default budget, at least one corpus
    // query site demonstrably refines.
    assert!(
        refined_somewhere,
        "no corpus query site refined at the default budget"
    );
}

#[test]
fn corpus_grades_hold_under_every_policy() {
    for (name, src) in corpus() {
        let p = Program::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        for policy in [
            DatatypePolicy::Congruence2,
            DatatypePolicy::Exact,
            DatatypePolicy::Forget,
        ] {
            check_grades(&name, &p, policy);
        }
    }
}

#[test]
fn zero_budget_never_runs_the_cubic_tier() {
    for (name, src) in corpus() {
        let p = Program::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let a = Analysis::run(&p).unwrap_or_else(|e| panic!("{name}: {e}"));
        let engine = QueryEngine::freeze(&a);
        let sched = PrecisionScheduler::new(
            SuspicionIndex::build(&a, &engine),
            DatatypePolicy::Congruence1,
            0,
        );
        for e in sites(&p) {
            let (ans, info) = sched.labels_of(&p, &engine, e);
            assert_ne!(
                info.tier,
                Tier::Cone,
                "{name} @ {e:?}: cone tier ran with a zero budget"
            );
            assert!(
                subset(&ans, &engine.labels_of(e)),
                "{name} @ {e:?}: budget-starved answer exceeds Tier 0"
            );
        }
        assert_eq!(sched.stats().cone_runs, 0, "{name}: budget was not honored");
    }
}

/// The scheduler must answer every tier on the caller's thread: on a
/// single-CPU host (this project's reference box) spawning workers per
/// escalation would oversubscribe the core and destroy the latency the
/// tiering exists to protect. `/proc/self/status` is authoritative on
/// Linux; elsewhere the check degrades to running the workload.
#[test]
fn scheduler_spawns_no_threads() {
    fn thread_count() -> Option<usize> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
    }
    let before = thread_count();
    for (name, src) in corpus() {
        let p = Program::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        check_grades(&name, &p, DatatypePolicy::Congruence1);
    }
    let after = thread_count();
    assert_eq!(
        before, after,
        "escalation must not change the process thread count"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn synthesized_grades_are_sound_and_deterministic(seed in any::<u64>()) {
        let p = generate(&SynthConfig {
            seed,
            target_size: 160,
            max_type_depth: 2,
            effect_prob: 0.05,
            max_tuple_width: 3,
            datatypes: true,
        });
        let name = format!("seed {seed}");
        let first = check_grades(&name, &p, DatatypePolicy::Congruence1);
        let second = check_grades(&name, &p, DatatypePolicy::Congruence1);
        prop_assert_eq!(first, second, "seed {}: transcript not deterministic", seed);
    }
}
