//! Cross-crate structural properties on randomly generated programs:
//! the parser/printer round trip, well-typedness of generated programs,
//! and "well-typed programs don't go wrong" (no dynamic type errors).

use stcfa::lambda::eval::{eval, EvalError, EvalOptions};
use stcfa::lambda::Program;
use stcfa::types::TypedProgram;
use stcfa::workloads::synth::{generate, SynthConfig};
use stcfa_devkit::prelude::*;

fn program_for(seed: u64) -> Program {
    generate(&SynthConfig {
        seed,
        target_size: 150,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `parse ∘ pretty` is the identity up to id renumbering, and `pretty`
    /// is a normal form (printing the re-parse gives the same text).
    #[test]
    fn pretty_parse_round_trip(seed in any::<u64>()) {
        let p = program_for(seed);
        let printed = p.to_source();
        let q = Program::parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed (seed {seed}): {e}\n{printed}"));
        prop_assert_eq!(p.size(), q.size(), "size changed (seed {})", seed);
        prop_assert_eq!(p.label_count(), q.label_count());
        prop_assert_eq!(p.var_count(), q.var_count());
        let printed2 = q.to_source();
        prop_assert_eq!(printed, printed2, "pretty not a normal form (seed {})", seed);
    }

    /// The generator only produces simply-typed programs.
    #[test]
    fn generated_programs_are_well_typed(seed in any::<u64>()) {
        let p = program_for(seed);
        TypedProgram::infer(&p)
            .unwrap_or_else(|e| panic!("ill-typed generation (seed {seed}): {e}"));
    }

    /// Milner's slogan on our pipeline: a program accepted by the type
    /// checker never hits a dynamic type error, match failure, or
    /// projection error in the evaluator.
    #[test]
    fn well_typed_programs_do_not_go_wrong(seed in any::<u64>()) {
        let p = program_for(seed);
        TypedProgram::infer(&p).expect("generated programs are well-typed");
        match eval(&p, EvalOptions { fuel: 2_000_000, inputs: vec![], max_depth: None }) {
            Ok(_)
            | Err(EvalError::OutOfFuel)
            | Err(EvalError::DepthExceeded(_))
            | Err(EvalError::DivByZero(_)) => {}
            Err(e @ (EvalError::TypeError { .. } | EvalError::MatchFailure(_))) => {
                panic!("well-typed program went wrong (seed {seed}): {e}")
            }
        }
    }

    /// Round-tripped programs analyze identically (the analyses only see
    /// structure, not identifiers).
    #[test]
    fn round_trip_preserves_analysis(seed in any::<u64>()) {
        let p = program_for(seed);
        let q = Program::parse(&p.to_source()).unwrap();
        let ap = stcfa::core::Analysis::run(&p).unwrap();
        let aq = stcfa::core::Analysis::run(&q).unwrap();
        // Sizes and label counts match, so label indices correspond.
        for (e1, e2) in p.exprs().zip(q.exprs()) {
            prop_assert_eq!(
                ap.labels_of(e1),
                aq.labels_of(e2),
                "analysis changed across round trip (seed {})", seed
            );
        }
    }
}
