//! Differential durability: a snapshot that goes through the persistent
//! tier (encode → disk → decode, or build → demote → warm restart via the
//! server cache) must answer every query *byte-identically* to the engine
//! it was built from — across the whole corpus, under every datatype
//! policy, at 1, 2, and 8 batch workers (the counts ci.sh exercises via
//! `STCFA_QUERY_THREADS`).

use stcfa::core::{Analysis, AnalysisOptions, DatatypePolicy, Query, QueryEngine};
use stcfa::lambda::Program;
use stcfa::persist::{decode, encode, SnapshotImage};
use stcfa::server::{SnapshotKey, SnapshotStore};
use stcfa_devkit::hash::Fnv1a;

fn corpus() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("corpus directory exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "ml") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.push((name, std::fs::read_to_string(&path).unwrap()));
        }
    }
    assert!(out.len() >= 5, "corpus should not shrink silently");
    out.sort();
    out
}

/// Every query kind the batch API carries, over the whole program.
fn all_queries(p: &Program) -> Vec<Query> {
    let mut queries: Vec<Query> = p.exprs().map(Query::LabelsOf).collect();
    queries.extend(p.vars().map(Query::LabelsOfBinder));
    queries.extend(p.all_labels().map(Query::ExprsWithLabel));
    queries.extend(
        p.exprs()
            .step_by(3)
            .flat_map(|e| p.all_labels().map(move |l| Query::Member(e, l))),
    );
    queries
}

/// Cold and warm engines must agree on the full batch at every worker
/// count, and on the point queries that bypass the batch API.
fn assert_identical(name: &str, p: &Program, cold: &QueryEngine, warm: &QueryEngine) {
    let queries = all_queries(p);
    let reference = cold.batch(&queries, 1);
    for threads in [1usize, 2, 8] {
        assert_eq!(
            warm.batch(&queries, threads),
            reference,
            "{name}: warm batch diverged at {threads} workers"
        );
    }
    for app in p.app_sites() {
        assert_eq!(
            warm.call_targets(p, app),
            cold.call_targets(p, app),
            "{name}: call targets diverged"
        );
    }
    assert_eq!(
        warm.all_label_sets(),
        cold.all_label_sets(),
        "{name}: all-sets listing diverged"
    );
}

fn policies() -> [(DatatypePolicy, u64); 4] {
    [
        (DatatypePolicy::Congruence1, 0),
        (DatatypePolicy::Congruence2, 1),
        (DatatypePolicy::Exact, 2),
        (DatatypePolicy::Forget, 3),
    ]
}

/// Direct format round trip: encode the frozen engine, decode it, and
/// compare answers — every corpus file, every policy, both with and
/// without persisted summary rows.
#[test]
fn decoded_corpus_snapshots_answer_identically() {
    for (name, src) in corpus() {
        let p = Program::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        for (policy, disc) in policies() {
            let a = Analysis::run_with(
                &p,
                AnalysisOptions {
                    policy,
                    max_nodes: None,
                },
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            for prepare in [false, true] {
                let cold = QueryEngine::freeze(&a);
                if prepare {
                    cold.prepare();
                }
                let bytes = encode(&SnapshotImage {
                    digest: Fnv1a::digest_parts(src.as_bytes(), &[disc, 0]),
                    policy: disc,
                    engine_disc: 0,
                    source: &src,
                    engine: &cold,
                    suspicion: None,
                    linked: false,
                });
                let warm = decode(&bytes)
                    .unwrap_or_else(|e| panic!("{name} (policy {disc}): decode failed: {e}"));
                assert_eq!(warm.source, src, "{name}: source did not round-trip");
                assert_identical(&name, &p, &cold, &warm.engine);
            }
        }
    }
}

/// The server's warm-restart path: build through a disk-backed store,
/// drop the store (the daemon "exits"), then open a fresh store over the
/// same directory — every corpus digest must load from disk (no rebuild)
/// and answer identically to the cold build.
#[test]
fn warm_restarted_store_answers_identically_across_corpus() {
    let dir =
        std::env::temp_dir().join(format!("stcfa-persist-test-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let corpus = corpus();
    let build = |src: &str| {
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).unwrap();
        let engine = QueryEngine::freeze(&a);
        engine.prepare();
        (p, a, engine)
    };

    // Cold pass: every build is a miss, every snapshot is persisted.
    let cold_store = SnapshotStore::with_disk(usize::MAX, Some(dir.clone()));
    let mut colds = Vec::new();
    for (name, src) in &corpus {
        let key = SnapshotKey::derive(src, 0, 0);
        let (snapshot, cached) = cold_store
            .get_or_build(key, src, {
                let src = src.clone();
                move || {
                    let (p, a, engine) = build(&src);
                    Ok(stcfa::server::Snapshot::built(
                        p,
                        a,
                        engine,
                        src,
                        0,
                        DatatypePolicy::default(),
                        0,
                        0,
                    ))
                }
            })
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!cached, "{name}: first build must be a miss");
        colds.push((key, snapshot));
    }
    let cold_stats = cold_store.stats();
    assert_eq!(cold_stats.misses, corpus.len() as u64);
    assert_eq!(cold_stats.disk_writes, corpus.len() as u64);
    assert_eq!(cold_stats.disk_hits, 0);
    drop(cold_store);

    // Warm pass: a restarted daemon's store over the same directory
    // answers every digest from disk, without building.
    let warm_store = SnapshotStore::with_disk(usize::MAX, Some(dir.clone()));
    for ((name, src), (key, cold)) in corpus.iter().zip(&colds) {
        let (warm, cached) = warm_store
            .get_or_build(*key, src, || panic!("{name}: warm store rebuilt"))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(cached, "{name}: warm load must report cached");
        assert_identical(name, &warm.program, &cold.engine, &warm.engine);
    }
    let warm_stats = warm_store.stats();
    assert_eq!(warm_stats.misses, 0, "warm store must not build");
    assert_eq!(warm_stats.disk_hits, corpus.len() as u64);
    assert_eq!(warm_stats.disk_corrupt, 0);

    let _ = std::fs::remove_dir_all(&dir);
}
