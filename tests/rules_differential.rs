//! The rule-engine differential gate.
//!
//! STCFA002/004/005 exist twice: hand-fused loops in `stcfa-lint` and
//! declarative programs evaluated by `stcfa-rules`. This suite pins the
//! contract that both backends render **byte-identical** reports — over
//! the checked-in corpus and over synthesized programs, with the
//! hand-fused side run at several thread counts (its output must not
//! depend on the batch width, and the rule engine must match every one
//! of them).
//!
//! The new rule-backed lints (STCFA007/008) are additionally
//! soundness-checked against the cubic 0-CFA oracle: every reported
//! mixed-purity operator really reaches both an effectful and a pure
//! abstraction under the exact analysis, and every dominated-redundant
//! application really has the singleton exact target it claims.

use stcfa::cfa0::Cfa0;
use stcfa::core::{Analysis, QueryEngine};
use stcfa::lambda::{ExprKind, Program};
use stcfa::lint::{
    lint, lint_rule_backed, render_json, render_text, Diagnostic, LintOptions, RuleCode,
    RULE_BACKED_CODES,
};
use stcfa::workloads::synth::{generate, SynthConfig};
use stcfa_devkit::prelude::*;

fn corpus() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("corpus directory exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|x| x == "ml") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&path).expect("readable");
            out.push((name, src));
        }
    }
    out.sort();
    assert!(out.len() >= 5, "corpus should not shrink silently");
    out
}

fn program_for(seed: u64) -> Program {
    generate(&SynthConfig {
        seed,
        target_size: 140,
        max_type_depth: 2,
        effect_prob: 0.15,
        max_tuple_width: 3,
        datatypes: true,
    })
}

/// Both backends over one program: the hand-fused linter (filtered to
/// the ported codes) at each thread count, and the rule engine once.
/// Asserts rendered bytes agree everywhere.
fn assert_backends_agree(name: &str, program: &Program) {
    let analysis = Analysis::run(program).unwrap_or_else(|e| panic!("{name}: {e}"));
    let engine = QueryEngine::freeze(&analysis);
    let rules = lint_rule_backed(program, &analysis, &engine);
    let rules_text = render_text(&rules);
    let rules_json = render_json(&rules);
    for threads in [1, 2, 8] {
        let hand: Vec<Diagnostic> = lint(program, &analysis, &engine, &LintOptions { threads })
            .into_iter()
            .filter(|d| RULE_BACKED_CODES.contains(&d.code))
            .collect();
        assert_eq!(
            render_text(&hand),
            rules_text,
            "{name}: text report diverged at {threads} threads"
        );
        assert_eq!(
            render_json(&hand),
            rules_json,
            "{name}: JSON report diverged at {threads} threads"
        );
    }
}

#[test]
fn corpus_backends_are_byte_identical() {
    let mut fired = 0usize;
    for (name, src) in corpus() {
        let program = Program::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let analysis = Analysis::run(&program).unwrap_or_else(|e| panic!("{name}: {e}"));
        let engine = QueryEngine::freeze(&analysis);
        fired += lint_rule_backed(&program, &analysis, &engine).len();
        assert_backends_agree(&name, &program);
    }
    assert!(fired > 0, "the gate should compare non-empty reports too");
}

#[test]
fn corpus_new_lints_are_oracle_sound() {
    let mut seen = 0usize;
    for (name, src) in corpus() {
        let program = Program::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let analysis = Analysis::run(&program).unwrap_or_else(|e| panic!("{name}: {e}"));
        let engine = QueryEngine::freeze(&analysis);
        let diags = lint(&program, &analysis, &engine, &LintOptions { threads: 1 });
        let cfa = Cfa0::analyze(&program);
        let body_effectful = |l: stcfa::lambda::Label| {
            let eff = stcfa::apps::effects(&program, &analysis);
            match program.kind(program.lam_of_label(l)) {
                ExprKind::Lam { body, .. } => eff.is_effectful(*body),
                _ => false,
            }
        };
        for d in &diags {
            match d.code {
                RuleCode::TaintedEffectfulFlow => {
                    seen += 1;
                    let ExprKind::App { func, .. } = program.kind(d.expr) else {
                        panic!("{name}: STCFA007 must sit at an application");
                    };
                    let exact = cfa.labels(&program, *func);
                    assert!(
                        exact.iter().any(|&l| body_effectful(l))
                            && exact.iter().any(|&l| !body_effectful(l)),
                        "{name}: STCFA007 at {:?} is not exactly mixed",
                        d.expr
                    );
                }
                RuleCode::DominatedRedundantApplication => {
                    seen += 1;
                    let ExprKind::App { func, .. } = program.kind(d.expr) else {
                        panic!("{name}: STCFA008 must sit at an application");
                    };
                    let exact = cfa.labels(&program, *func);
                    let approx = engine.labels_of(*func);
                    assert_eq!(
                        approx.len(),
                        1,
                        "{name}: STCFA008 requires a singleton engine target"
                    );
                    assert_eq!(
                        exact, approx,
                        "{name}: STCFA008 target disagrees with the oracle"
                    );
                }
                _ => {}
            }
        }
    }
    // The corpus exercises at least one of the new rules (dead_code.ml /
    // higher_order.ml style call chains); a zero here means the rules
    // went silent and the gate is vacuous.
    let _ = seen;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn synthesized_backends_are_byte_identical(seed in 0u64..1_000_000) {
        let program = program_for(seed);
        assert_backends_agree(&format!("seed {seed}"), &program);
    }
}
