//! Pretty-printer round-trip gate: `parse(pretty(p))` must reproduce the
//! program up to alpha-renaming, with identical label structure.
//!
//! The optimizer's `--emit` output and the daemon's `"emit":true` field
//! are both `Program::to_source` text, so this property is what makes an
//! emitted program a faithful artifact: re-parsing it yields the same
//! occurrence arena (sizes, label count, per-abstraction subtree shape)
//! and printing again is a fixed point (the printed form is a normal
//! form, which is the working alpha-equivalence witness given the
//! printer's deterministic binder renaming).

use stcfa::lambda::{ExprId, Program};
use stcfa::workloads::synth::{generate, SynthConfig};
use stcfa_devkit::prelude::*;

fn subtree_size(p: &Program, e: ExprId) -> usize {
    let mut n = 1;
    p.for_each_child(e, |c| n += subtree_size(p, c));
    n
}

fn assert_round_trips(name: &str, p: &Program) {
    let printed = p.to_source();
    let q = Program::parse(&printed)
        .unwrap_or_else(|e| panic!("{name}: emitted source fails to re-parse: {e}\n{printed}"));
    let reprinted = q.to_source();
    assert_eq!(
        printed, reprinted,
        "{name}: printed form is not a normal form"
    );
    assert_eq!(
        p.size(),
        q.size(),
        "{name}: round trip changed the arena size"
    );
    assert_eq!(
        p.label_count(),
        q.label_count(),
        "{name}: round trip changed the abstraction count"
    );
    for (l1, l2) in p.all_labels().zip(q.all_labels()) {
        assert_eq!(
            subtree_size(p, p.lam_of_label(l1)),
            subtree_size(&q, q.lam_of_label(l2)),
            "{name}: abstraction {l1:?} changed shape across the round trip"
        );
    }
}

#[test]
fn corpus_round_trips() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("corpus directory exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "ml") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&path).unwrap();
            let p = Program::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_round_trips(&name, &p);
            checked += 1;
        }
    }
    assert!(checked >= 5, "corpus should not shrink silently");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_programs_round_trip(seed in any::<u64>()) {
        let p = generate(&SynthConfig {
            seed,
            target_size: 200,
            max_type_depth: 2,
            effect_prob: 0.1,
            max_tuple_width: 3,
            datatypes: true,
        });
        let printed = p.to_source();
        let q = Program::parse(&printed);
        prop_assert!(q.is_ok(), "seed {}: emitted source fails to re-parse: {:?}", seed, q.err());
        let q = q.unwrap();
        prop_assert_eq!(&printed, &q.to_source(), "seed {}: not a normal form", seed);
        prop_assert_eq!(p.size(), q.size(), "seed {}: arena size changed", seed);
        prop_assert_eq!(p.label_count(), q.label_count(), "seed {}: label count changed", seed);
        for (l1, l2) in p.all_labels().zip(q.all_labels()) {
            prop_assert_eq!(
                subtree_size(&p, p.lam_of_label(l1)),
                subtree_size(&q, q.lam_of_label(l2)),
                "seed {}: abstraction shape changed", seed
            );
        }
    }
}
