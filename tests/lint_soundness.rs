//! Differential soundness of the flow-dead rules: every `STCFA001`
//! (flow-dead application) and `STCFA006` (stuck application) diagnostic
//! must be confirmed by the standard cubic CFA — the oracle the paper
//! proves the subtransitive analysis equivalent to (Propositions 1–2).
//!
//! The interesting direction is policy robustness: under the `Forget`
//! datatype policy the engine *under*-approximates, so an empty label set
//! no longer implies exact-empty — the lint layer's lazy oracle
//! cross-check is what keeps the rule sound there, and this suite is the
//! regression net over that cross-check.

use stcfa::cfa0::Cfa0;
use stcfa::core::{Analysis, AnalysisOptions, DatatypePolicy, QueryEngine};
use stcfa::lambda::{ExprKind, Program};
use stcfa::lint::{lint, LintOptions, RuleCode};
use stcfa::workloads::synth::{generate, SynthConfig};
use stcfa_devkit::prelude::*;

fn program_for(seed: u64) -> Program {
    generate(&SynthConfig {
        seed,
        target_size: 140,
        max_type_depth: 2,
        effect_prob: 0.15,
        max_tuple_width: 3,
        datatypes: true,
    })
}

fn assert_flow_dead_confirmed(p: &Program, policy: DatatypePolicy) -> TestCaseResult {
    // ≈₂ can legitimately exceed the close-phase node budget on synthetic
    // recursive datatypes; there is no finished graph to lint then.
    let Ok(a) = Analysis::run_with(
        p,
        AnalysisOptions {
            policy,
            max_nodes: None,
        },
    ) else {
        return Ok(());
    };
    let engine = QueryEngine::freeze(&a);
    let diags = lint(p, &a, &engine, &LintOptions { threads: 1 });
    let cfa = Cfa0::analyze(p);
    for d in &diags {
        if !matches!(
            d.code,
            RuleCode::FlowDeadApplication | RuleCode::StuckApplication
        ) {
            continue;
        }
        let ExprKind::App { func, .. } = p.kind(d.expr) else {
            return Err(TestCaseError::fail(format!(
                "{} fired at non-application {:?}",
                d.code, d.expr
            )));
        };
        let oracle = cfa.labels(p, *func);
        prop_assert!(
            oracle.is_empty(),
            "{} at {:?} disputed by cubic CFA (policy {:?}): oracle says {:?}",
            d.code,
            d.expr,
            policy,
            oracle
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn flow_dead_diagnostics_confirmed_by_cubic_cfa(seed in any::<u64>()) {
        let p = program_for(seed);
        assert_flow_dead_confirmed(&p, DatatypePolicy::Congruence1)?;
        assert_flow_dead_confirmed(&p, DatatypePolicy::Congruence2)?;
        assert_flow_dead_confirmed(&p, DatatypePolicy::Forget)?;
    }
}

/// The corpus files, under every datatype policy the CLI exposes — the
/// deterministic counterpart of the property above.
#[test]
fn corpus_flow_dead_diagnostics_confirmed() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "ml"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus is populated");
    for file in files {
        let src = std::fs::read_to_string(&file).expect("readable");
        let p = Program::parse(&src).unwrap_or_else(|e| panic!("{}: {e}", file.display()));
        for policy in [
            DatatypePolicy::Congruence1,
            DatatypePolicy::Congruence2,
            DatatypePolicy::Forget,
        ] {
            assert_flow_dead_confirmed(&p, policy)
                .unwrap_or_else(|e| panic!("{}: {e}", file.display()));
        }
    }
}
