//! Every program in `corpus/` must parse, type-check, evaluate, and
//! analyze consistently across the engines — the corpus doubles as CLI
//! demo material and as an integration surface.

use stcfa::cfa0::Cfa0;
use stcfa::core::{Analysis, PolyAnalysis};
use stcfa::lambda::eval::{eval, EvalOptions};
use stcfa::lambda::Program;
use stcfa::types::TypedProgram;
use stcfa::unify::UnifyCfa;

fn corpus() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("corpus directory exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "ml") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.push((name, std::fs::read_to_string(&path).unwrap()));
        }
    }
    assert!(out.len() >= 5, "corpus should not shrink silently");
    out.sort();
    out
}

/// Files that are intentionally not Hindley–Milner-typable (the paper's
/// worked example self-applies `x`) yet still bounded-type in the paper's
/// sense and analyzable.
const UNTYPABLE: &[&str] = &["paper_example.ml"];

#[test]
fn corpus_parses_and_typechecks() {
    for (name, src) in corpus() {
        let p = Program::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let inferred = TypedProgram::infer(&p);
        if UNTYPABLE.contains(&name.as_str()) {
            assert!(inferred.is_err(), "{name} is expected to be HM-untypable");
        } else {
            inferred.unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}

#[test]
fn corpus_evaluates() {
    for (name, src) in corpus() {
        let p = Program::parse(&src).unwrap();
        eval(
            &p,
            EvalOptions {
                fuel: 5_000_000,
                inputs: vec![],
                max_depth: None,
            },
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn corpus_analyses_are_consistent() {
    for (name, src) in corpus() {
        let p = Program::parse(&src).unwrap();
        let sub = Analysis::run(&p).unwrap_or_else(|e| panic!("{name}: {e}"));
        let cfa = Cfa0::analyze(&p);
        let uni = UnifyCfa::analyze(&p);
        let poly = PolyAnalysis::run(&p).unwrap();
        let out = eval(
            &p,
            EvalOptions {
                fuel: 5_000_000,
                inputs: vec![],
                max_depth: None,
            },
        )
        .unwrap();
        for (func_occ, label) in &out.trace.calls {
            // Every engine predicts every dynamic call.
            assert!(
                sub.labels_of(*func_occ).contains(label),
                "{name}: sub missed call"
            );
            assert!(
                cfa.labels(&p, *func_occ).contains(label),
                "{name}: cfa0 missed call"
            );
            assert!(
                uni.labels(*func_occ).contains(label),
                "{name}: unify missed call"
            );
            assert!(
                poly.labels_of(*func_occ).contains(label),
                "{name}: poly missed call"
            );
        }
        for e in p.exprs() {
            // Sub ⊇ cfa0 (≈₁ may over-approximate on datatypes, never under).
            let s = sub.labels_of(e);
            for l in cfa.labels(&p, e) {
                assert!(s.contains(&l), "{name}: sub lost {l:?} at {e:?}");
            }
        }
    }
}

#[test]
fn corpus_files_document_their_purpose() {
    for (name, src) in corpus() {
        assert!(
            src.lines()
                .next()
                .is_some_and(|l| l.trim_start().starts_with("--")),
            "{name} should start with a comment explaining itself"
        );
    }
}
