//! Consistency of the four query algorithms of the paper's Section 2 table
//! against each other and against the ground-truth cubic analysis, on a
//! fixed corpus spanning the whole language.

use stcfa::cfa0::Cfa0;
use stcfa::core::{Analysis, QueryEngine};
use stcfa::lambda::{ExprKind, Program};
use stcfa::workloads::{cubic, join_point, lexgen, life};

fn corpus() -> Vec<Program> {
    let mut out: Vec<Program> = [
        "(fn x => x x) (fn y => y)",
        "fun id x = x; val a = id (fn u => u); val b = id (fn v => v); a b",
        "datatype flist = FNil | FCons of (int -> int) * flist;\n\
         fun head xs = case xs of FCons(f, t) => f | FNil => fn z => z;\n\
         head (FCons(fn a => a + 1, FNil)) 3",
        "#1 ((fn x => x), (fn y => y)) 4",
    ]
    .iter()
    .map(|s| Program::parse(s).unwrap())
    .collect();
    out.push(cubic::program(4));
    out.push(join_point::program(6));
    out.push(life::program());
    out.push(Program::parse(&lexgen::source(16)).unwrap());
    out
}

#[test]
fn membership_query_agrees_with_full_sets() {
    for p in corpus() {
        let a = Analysis::run(&p).unwrap();
        for e in p.exprs().step_by(7) {
            let full = a.labels_of(e);
            for l in p.all_labels() {
                assert_eq!(a.label_reaches(e, l), full.contains(&l), "{e:?} {l:?}");
            }
        }
    }
}

#[test]
fn inverse_query_is_the_transpose_of_labels_of() {
    for p in corpus() {
        let a = Analysis::run(&p).unwrap();
        for l in p.all_labels() {
            let exprs = a.exprs_with_label(l);
            // Transpose check: e ∈ exprs_with_label(l) ⟺ l ∈ labels_of(e).
            for e in p.exprs() {
                assert_eq!(
                    exprs.binary_search(&e).is_ok(),
                    a.labels_of(e).contains(&l),
                    "transpose mismatch at {e:?} / {l:?}"
                );
            }
        }
    }
}

#[test]
fn all_label_sets_matches_per_expression_queries() {
    for p in corpus() {
        let a = Analysis::run(&p).unwrap();
        let all = a.all_label_sets(&p);
        assert_eq!(all.len(), p.size());
        for (e, labels) in all {
            assert_eq!(labels, a.labels_of(e));
        }
    }
}

#[test]
fn call_targets_agree_with_cubic_cfa_everywhere() {
    for p in corpus() {
        let a = Analysis::run(&p).unwrap();
        let q = QueryEngine::freeze(&a);
        let cfa = Cfa0::analyze(&p);
        for app in p.app_sites() {
            assert_eq!(
                a.call_targets(&p, app),
                cfa.call_targets(&p, app),
                "call targets differ at {app:?}"
            );
            assert_eq!(
                q.call_targets(&p, app),
                cfa.call_targets(&p, app),
                "frozen-engine call targets differ at {app:?}"
            );
        }
    }
}

#[test]
fn nontrivial_apps_are_the_papers_query_population() {
    // The paper benchmarks "writing out the control flow information for
    // all non-trivial applications": check the population is right on the
    // cubic benchmark — 4n application sites, of which the `fs f1`-shaped
    // inner calls are trivial (operator is a fun identifier).
    let n = 6;
    let p = cubic::program(n);
    let apps = p.app_sites();
    assert_eq!(apps.len(), 4 * n);
    let nontrivial = p.nontrivial_apps();
    // `b1 (fs f1)` outer call and `(bs b1) f1` outer call are non-trivial?
    // No: `b1 …` has a fun-identifier operator; `(bs b1) f1` has an
    // application operator — one non-trivial site per copy.
    assert_eq!(nontrivial.len(), n);
    for app in nontrivial {
        let ExprKind::App { func, .. } = p.kind(app) else {
            unreachable!()
        };
        assert!(matches!(p.kind(*func), ExprKind::App { .. }));
    }
}
