//! End-to-end checks on the paper's own benchmark programs: the
//! parameterized cubic family (Table 1) and the `life`/`lexgen`
//! substitutes (Table 2), including the scaling *shapes* the paper reports.

use stcfa::cfa0::Cfa0;
use stcfa::core::{Analysis, DatatypePolicy};
use stcfa::sba::Sba;
use stcfa::types::{TypeMetrics, TypedProgram};
use stcfa::workloads::{cubic, lexgen, life};

#[test]
fn cubic_family_subtransitive_graph_grows_linearly() {
    // Nodes and edges per copy must be (asymptotically) constant.
    let sizes = [8usize, 16, 32, 64];
    let mut per_copy = Vec::new();
    let mut prev = None;
    for &n in &sizes {
        let p = cubic::program(n);
        let a = Analysis::run(&p).unwrap();
        if let Some((pn, pnodes, pedges)) = prev {
            let dn = n - pn;
            let dnodes = a.node_count() - pnodes;
            let dedges = a.edge_count() - pedges;
            per_copy.push((dnodes as f64 / dn as f64, dedges as f64 / dn as f64));
        }
        prev = Some((n, a.node_count(), a.edge_count()));
    }
    // The increments per copy must not grow: compare first and last.
    let (first_nodes, first_edges) = per_copy[0];
    let (last_nodes, last_edges) = *per_copy.last().unwrap();
    assert!(
        last_nodes <= first_nodes * 1.5 + 4.0,
        "node growth per copy increased: {per_copy:?}"
    );
    assert!(
        last_edges <= first_edges * 1.5 + 4.0,
        "edge growth per copy increased: {per_copy:?}"
    );
}

#[test]
fn cubic_family_sba_work_grows_superlinearly() {
    let w8 = Sba::analyze(&cubic::program(8)).stats().work_units as f64;
    let w32 = Sba::analyze(&cubic::program(32)).stats().work_units as f64;
    // 4x size; cubic-ish work should grow far faster than 4x.
    assert!(
        w32 / w8 > 8.0,
        "SBA work grew only {}x for 4x size — expected superlinear",
        w32 / w8
    );
}

#[test]
fn cubic_family_label_sets_agree_across_analyses() {
    let p = cubic::program(8);
    let a = Analysis::run(&p).unwrap();
    let cfa = Cfa0::analyze(&p);
    let sba = Sba::analyze(&p);
    for e in p.exprs() {
        let reference = cfa.labels(&p, e);
        assert_eq!(a.labels_of(e), reference);
        assert_eq!(sba.labels(&p, e), reference);
    }
}

#[test]
fn table2_programs_are_bounded_type() {
    // Inference recurses over lexgen's deep let-chain; debug builds need
    // more than the default test-thread stack.
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(|| {
            for (name, p) in [("life", life::program()), ("lexgen", lexgen::program())] {
                let typed = TypedProgram::infer(&p).unwrap_or_else(|e| panic!("{name}: {e}"));
                let m = TypeMetrics::compute(&p, &typed);
                assert!(
                    m.avg_size < 8.0,
                    "{name}: k_avg = {} — the paper reports small constants (2–3)",
                    m.avg_size
                );
            }
        })
        .unwrap()
        .join()
        .unwrap();
}

#[test]
fn table2_build_and_close_node_shape() {
    // The paper: "the number of nodes in the build phase is essentially the
    // same as the number of syntax nodes" and "the number of nodes added in
    // the close phase is typically no more than the number in the build
    // phase".
    for (name, p) in [("life", life::program()), ("lexgen", lexgen::program())] {
        let a = Analysis::run(&p).unwrap();
        let s = a.stats();
        assert!(
            s.build_nodes <= 2 * p.size(),
            "{name}: build nodes {} vs program size {}",
            s.build_nodes,
            p.size()
        );
        assert!(
            s.close_nodes <= 2 * s.build_nodes,
            "{name}: close nodes {} should be of the order of build nodes {}",
            s.close_nodes,
            s.build_nodes
        );
    }
}

#[test]
fn life_analyses_agree_under_congruence2_and_exact_is_sound() {
    let p = life::program();
    let cfa = Cfa0::analyze(&p);
    for policy in [DatatypePolicy::Congruence1, DatatypePolicy::Congruence2] {
        let a = Analysis::run_with(
            &p,
            stcfa::core::AnalysisOptions {
                policy,
                max_nodes: None,
            },
        )
        .unwrap();
        for e in p.exprs() {
            let labels = a.labels_of(e);
            for l in cfa.labels(&p, e) {
                assert!(labels.contains(&l), "{policy:?} lost {l:?} at {e:?}");
            }
        }
    }
}

#[test]
fn lexgen_actions_flow_to_their_indirect_call_site() {
    // The closures stored in `actions` must be visible where `nthAct`'s
    // result is applied — the defining feature of lexgen-style code.
    let p = stcfa::lambda::Program::parse(&lexgen::source(12)).unwrap();
    let a = Analysis::run(&p).unwrap();
    let cfa = Cfa0::analyze(&p);
    // Find an application whose cubic-CFA target set contains ≥ 4 of the
    // action lambdas; the subtransitive answer must be a superset.
    let mut found = false;
    for app in p.app_sites() {
        let stcfa::lambda::ExprKind::App { func, .. } = p.kind(app) else {
            unreachable!()
        };
        let reference = cfa.labels(&p, *func);
        if reference.len() >= 4 {
            found = true;
            let got = a.labels_of(*func);
            for l in reference {
                assert!(got.contains(&l));
            }
        }
    }
    assert!(
        found,
        "expected at least one polymorphic call site in lexgen"
    );
}
