//! Differential properties of the frozen [`QueryEngine`]: on randomly
//! generated well-typed programs it must agree *exactly* with
//!
//! 1. the per-query BFS reference methods on [`Analysis`] (the trusted
//!    slow path the engine replaces),
//! 2. the standard cubic CFA ([`Cfa0`]) under the `Exact` datatype policy
//!    (Propositions 1–2 compose with the engine's summary sweep),
//! 3. a quadratic [`DiGraph::transitive_closure`] oracle over the frozen
//!    graph itself (the SCC-condensed bit-parallel sweep is just packed
//!    reachability),
//!
//! and a batch must come back byte-identical at every worker count.
//! Shrunk failures persist to `tests/devkit-regressions.txt`.

use stcfa::cfa0::Cfa0;
use stcfa::core::{Analysis, PolyAnalysis, Query, QueryEngine};
use stcfa::graph::DiGraph;
use stcfa::lambda::Program;
use stcfa::workloads::cubic;
use stcfa::workloads::synth::{generate, SynthConfig};
use stcfa_devkit::prelude::*;

fn program_for(seed: u64, target_size: usize) -> Program {
    generate(&SynthConfig {
        seed,
        target_size,
        max_type_depth: 2,
        effect_prob: 0.05,
        max_tuple_width: 3,
        // Non-recursive datatype: the Exact policy terminates, so full
        // differential equality against the cubic CFA applies.
        datatypes: true,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Oracle 1: the engine reproduces every BFS reference method bit for
    /// bit — forward, membership, inverse (both modes), and all-sets.
    #[test]
    fn engine_equals_bfs_reference(seed in any::<u64>()) {
        let p = program_for(seed, 160);
        let a = Analysis::run(&p).expect("generated programs are bounded-type");
        let q = QueryEngine::freeze(&a);
        for e in p.exprs() {
            prop_assert_eq!(q.labels_of(e), a.labels_of(e), "at {:?} (seed {})", e, seed);
        }
        for v in p.vars() {
            prop_assert_eq!(q.labels_of_binder(v), a.labels_of_binder(v), "seed {}", seed);
        }
        for l in p.all_labels() {
            prop_assert_eq!(q.exprs_with_label(l), a.exprs_with_label(l), "seed {}", seed);
            prop_assert_eq!(
                q.exprs_with_label_demand(l), a.exprs_with_label(l),
                "demand inverse at {:?} (seed {})", l, seed
            );
            for e in p.exprs().step_by(5) {
                prop_assert_eq!(q.label_reaches(e, l), a.label_reaches(e, l));
            }
        }
        prop_assert_eq!(q.all_label_sets(), a.all_label_sets(&p), "seed {}", seed);
        for app in p.app_sites() {
            prop_assert_eq!(q.call_targets(&p, app), a.call_targets(&p, app));
        }
    }

    /// Oracle 2: under the Exact policy the engine's label sets coincide
    /// with the standard cubic CFA's everywhere.
    #[test]
    fn engine_equals_standard_cfa(seed in any::<u64>()) {
        let p = program_for(seed, 160);
        let a = Analysis::run_with(
            &p,
            stcfa::core::AnalysisOptions {
                policy: stcfa::core::DatatypePolicy::Exact,
                max_nodes: None,
            },
        )
        .expect("generated programs are bounded-type");
        let q = QueryEngine::freeze(&a);
        let cfa = Cfa0::analyze(&p);
        for e in p.exprs() {
            prop_assert_eq!(q.labels_of(e), cfa.labels(&p, e), "at {:?} (seed {})", e, seed);
        }
        for v in p.vars() {
            prop_assert_eq!(q.labels_of_binder(v), cfa.var_labels(&p, v), "seed {}", seed);
        }
    }

    /// Oracle 3: the summary sweep is packed reachability — on the frozen
    /// graph itself, `labels_of` must equal what the quadratic
    /// transitive-closure oracle reads off the same node. Small programs:
    /// the oracle materializes the full closure.
    #[test]
    fn engine_equals_transitive_closure_oracle(seed in any::<u64>()) {
        let p = program_for(seed, 60);
        let a = Analysis::run(&p).expect("bounded");
        let q = QueryEngine::freeze(&a);
        let csr = q.csr();
        let mut g = DiGraph::with_nodes(csr.node_count());
        for (u, v) in csr.edges() {
            g.add_edge(u as usize, v as usize);
        }
        let closure = g.transitive_closure();
        for e in p.exprs() {
            let node = a.node_of_expr(e);
            let mut expected: Vec<_> = (0..csr.node_count())
                .filter(|&m| closure[node.index()].contains(m))
                .filter_map(|m| a.label_of_node(stcfa::core::NodeId::from_index(m)))
                .collect();
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(
                q.labels_of(e), expected,
                "closure oracle mismatch at {:?} (seed {})", e, seed
            );
        }
    }

    /// A batch over a fresh engine per worker count comes back
    /// byte-identical at 1, 2, and 8 workers, in input order.
    #[test]
    fn batch_is_thread_invariant(seed in any::<u64>()) {
        let p = program_for(seed, 120);
        let a = Analysis::run(&p).expect("bounded");
        let mut queries: Vec<Query> = p.exprs().map(Query::LabelsOf).collect();
        queries.extend(p.vars().map(Query::LabelsOfBinder));
        queries.extend(p.all_labels().map(Query::ExprsWithLabel));
        queries.extend(
            p.exprs().step_by(7).flat_map(|e| p.all_labels().map(move |l| Query::Member(e, l))),
        );
        let reference = QueryEngine::freeze(&a).batch(&queries, 1);
        for threads in [2usize, 8] {
            // A fresh engine per count: the sweep itself also runs under
            // the contended path.
            let q = QueryEngine::freeze(&a);
            prop_assert_eq!(
                &q.batch(&queries, threads), &reference,
                "batch diverged at {} workers (seed {})", threads, seed
            );
        }
        // The env-var default path (ci runs the suite at several
        // STCFA_QUERY_THREADS values) must agree too.
        prop_assert_eq!(
            &QueryEngine::freeze(&a).batch_default(&queries), &reference,
            "batch_default diverged (seed {})", seed
        );
    }
}

/// Satellite regression: `PolyAnalysis::exprs_with_label` once rebuilt the
/// occurrence map and re-walked shared predecessors per carrier; the fixed
/// single-pass version must still be the exact transpose of `labels_of` on
/// the paper's Section 10 cubic-benchmark family.
#[test]
fn poly_inverse_is_transpose_on_cubic_family() {
    for n in [2usize, 4, 8] {
        let p = cubic::program(n);
        let poly = PolyAnalysis::run(&p).expect("cubic programs are bounded");
        for l in p.all_labels() {
            let exprs = poly.exprs_with_label(&p, l);
            // Sorted and deduplicated output.
            let mut sorted = exprs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(exprs, sorted, "unsorted inverse at {l:?}, n={n}");
            for e in p.exprs() {
                assert_eq!(
                    exprs.binary_search(&e).is_ok(),
                    poly.labels_of(e).contains(&l),
                    "transpose mismatch at {e:?} / {l:?}, n={n}"
                );
            }
        }
    }
}

/// Pin the inverse query's answer sizes on the cubic family: each of the
/// `2n` abstractions flows to a stable set of occurrences, and the engine
/// agrees with the analysis exactly.
#[test]
fn inverse_query_pinned_on_cubic_family() {
    for n in [2usize, 4, 8] {
        let p = cubic::program(n);
        let a = Analysis::run(&p).unwrap();
        let q = QueryEngine::freeze(&a);
        assert_eq!(p.label_count(), 2 * n + 2, "2 shared + 2 per copy");
        let sizes: Vec<usize> = p
            .all_labels()
            .map(|l| q.exprs_with_label(l).len())
            .collect();
        for (l, &size) in p.all_labels().zip(&sizes) {
            assert_eq!(size, a.exprs_with_label(l).len(), "at {l:?}, n={n}");
            assert!(
                size > 0,
                "every cubic abstraction is used somewhere ({l:?}, n={n})"
            );
        }
        // The copies are symmetric: after the two shared functions
        // (`fs`, `bs`), each copy contributes one `fᵢ` and one `bᵢ` whose
        // answer sizes are identical across copies.
        let per_copy: Vec<&[usize]> = sizes[2..].chunks(2).collect();
        for (i, copy) in per_copy.iter().enumerate() {
            assert_eq!(
                *copy, per_copy[0],
                "copy {i} flow shape diverged at n={n}: {sizes:?}"
            );
        }
    }
}
